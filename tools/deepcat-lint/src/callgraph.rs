//! Workspace symbol table, call graph, and the cross-function rule
//! families built on [`crate::dataflow::FnFacts`]:
//!
//! * `concurrency.lock_order` — a global lock-acquisition-order graph;
//!   any cycle (including a self-loop: re-acquiring a held lock) is an
//!   error, because two threads interleaving the two orders deadlock.
//! * `concurrency.guard_across_emit` — holding a guard across a call
//!   that may (transitively) re-enter telemetry emission can deadlock
//!   against the telemetry pipeline's own locks and stalls every other
//!   emitter; flagged with a witness path.
//! * `panic.reachable` — reverse propagation of *unsuppressed* token
//!   `panic.*` findings (the leaf facts) over the call graph; a plain
//!   `pub` fn in a core crate that can transitively panic is flagged,
//!   with the panic site named.
//! * `determinism.entropy_flow` (cross-fn half) — RNG-suspect helper
//!   results (`let rng = make_rng(); rng.gen()`): consumption is a
//!   finding iff some resolved callee can return an unseeded RNG.
//!
//! Name resolution is deliberately over-approximate (methods resolve by
//! bare name workspace-wide; free fns by name + qualifier match): the
//! rules stay sound for deadlock/panic *reachability* and the escape
//! hatches (`// LOCK-ORDER:`, `// GUARD-EMIT:`, `// PANIC-SAFETY:`,
//! `// ENTROPY-SAFETY:`, `lint.toml`) absorb deliberate exceptions.

use crate::dataflow::{Callee, FnFacts};
use crate::rules::{Finding, CORE_CRATES};
use std::collections::{BTreeMap, BTreeSet};

/// Functions in the telemetry crate that emit by definition — the seed
/// set for the `may_emit` fixpoint (beyond direct emission sites).
const EMIT_SEEDS: &[&str] = &[
    "emit",
    "drain",
    "flush",
    "shutdown",
    "inc",
    "set_gauge",
    "observe",
    "observe_duration",
    "counter",
    "gauge",
    "histogram",
    "span",
    "session_report",
    "metrics_snapshot",
];

/// The lock-order graph, for the text summary and tests.
#[derive(Debug, Default)]
pub struct LockSummary {
    /// Every distinct lock identity acquired anywhere.
    pub locks: BTreeSet<String>,
    /// Acquisition-order edges `held -> acquired`.
    pub edges: Vec<(String, String)>,
    /// Non-trivial strongly connected components (sorted lock sets).
    pub cycles: Vec<Vec<String>>,
}

/// Workspace call graph over per-function dataflow facts.
pub struct CallGraph {
    pub fns: Vec<FnFacts>,
    /// `resolved[i][c]` — fn indices call site `c` of fn `i` may reach.
    resolved: Vec<Vec<Vec<usize>>>,
    may_emit: Vec<bool>,
    /// For `may_emit` fns: next hop toward a direct emission, for
    /// witness paths. `None` means this fn emits directly.
    emit_via: Vec<Option<usize>>,
    /// Locks a call into this fn may acquire (transitive, non-escaped).
    acquires_trans: Vec<BTreeSet<String>>,
    returns_unseeded: Vec<bool>,
}

impl CallGraph {
    pub fn build(fns: Vec<FnFacts>) -> Self {
        let n = fns.len();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
            if f.has_self {
                methods_by_name.entry(&f.name).or_default().push(i);
            } else {
                free_by_name.entry(&f.name).or_default().push(i);
            }
        }

        let resolve = |caller: &FnFacts, callee: &Callee| -> Vec<usize> {
            match callee {
                Callee::Method { name } => methods_by_name
                    .get(name.as_str())
                    .cloned()
                    .unwrap_or_default(),
                Callee::Free { qual: None, name } => free_by_name
                    .get(name.as_str())
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&j| fns[j].krate == caller.krate)
                            .collect()
                    })
                    .unwrap_or_default(),
                Callee::Free {
                    qual: Some(q),
                    name,
                } => by_name
                    .get(name.as_str())
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&j| {
                                let f = &fns[j];
                                if matches!(q.as_str(), "crate" | "self" | "super" | "Self") {
                                    f.krate == caller.krate
                                } else {
                                    f.quals.iter().any(|fq| fq == q)
                                }
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            }
        };

        let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(n);
        for f in &fns {
            resolved.push(f.calls.iter().map(|c| resolve(f, &c.callee)).collect());
        }

        // -- may_emit fixpoint (with witness pointers) ------------------
        let mut may_emit: Vec<bool> = fns
            .iter()
            .map(|f| {
                (f.krate == "telemetry" && EMIT_SEEDS.contains(&f.name.as_str()))
                    || f.calls.iter().any(|c| c.is_emit)
            })
            .collect();
        let mut emit_via: Vec<Option<usize>> = vec![None; n];
        loop {
            let mut changed = false;
            for i in 0..n {
                if may_emit[i] {
                    continue;
                }
                'sites: for targets in &resolved[i] {
                    for &j in targets {
                        if may_emit[j] {
                            may_emit[i] = true;
                            emit_via[i] = Some(j);
                            changed = true;
                            break 'sites;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // -- transitive acquisition sets --------------------------------
        let mut acquires_trans: Vec<BTreeSet<String>> = fns
            .iter()
            .map(|f| {
                f.acquires
                    .iter()
                    .filter(|a| !a.escaped)
                    .map(|a| a.lock.clone())
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                let mut add: Vec<String> = Vec::new();
                for (c, site) in fns[i].calls.iter().enumerate() {
                    if site.lock_escaped {
                        continue;
                    }
                    for &j in resolved[i].get(c).map(Vec::as_slice).unwrap_or(&[]) {
                        for l in &acquires_trans[j] {
                            if !acquires_trans[i].contains(l) {
                                add.push(l.clone());
                            }
                        }
                    }
                }
                for l in add {
                    changed |= acquires_trans[i].insert(l);
                }
            }
            if !changed {
                break;
            }
        }

        // -- returns_unseeded fixpoint ----------------------------------
        let mut returns_unseeded: Vec<bool> = fns
            .iter()
            .map(|f| f.returns_rng && f.constructs_unseeded)
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                if returns_unseeded[i] || !fns[i].returns_rng {
                    continue;
                }
                let launders = resolved[i].iter().any(|targets| {
                    targets
                        .iter()
                        .any(|&j| fns[j].returns_rng && returns_unseeded[j])
                });
                if launders {
                    returns_unseeded[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        CallGraph {
            fns,
            resolved,
            may_emit,
            emit_via,
            acquires_trans,
            returns_unseeded,
        }
    }

    /// Witness path `a -> b -> c` from fn `j` to a direct emitter.
    fn emit_path(&self, mut j: usize) -> String {
        let mut names = Vec::new();
        let mut hops = 0;
        loop {
            names.push(self.fns.get(j).map(|f| f.name.clone()).unwrap_or_default());
            match self.emit_via.get(j).copied().flatten() {
                Some(next) if hops < 8 => {
                    j = next;
                    hops += 1;
                }
                _ => break,
            }
        }
        names.join(" -> ")
    }

    /// The workspace-level findings that need no allowlist context:
    /// `concurrency.lock_order`, `concurrency.guard_across_emit`, and
    /// the cross-fn half of `determinism.entropy_flow`.
    pub fn workspace_findings(&self) -> (Vec<Finding>, LockSummary) {
        let mut out = Vec::new();
        let summary = self.lock_order(&mut out);
        self.guard_across_emit(&mut out);
        self.entropy_pending(&mut out);
        out.sort();
        out.dedup();
        (out, summary)
    }

    // ---- concurrency.lock_order --------------------------------------

    fn lock_order(&self, out: &mut Vec<Finding>) -> LockSummary {
        // Edge (held -> acquired) with the first-seen site, in
        // deterministic (file, line) order.
        let mut edges: BTreeMap<(String, String), (String, u32, u32)> = BTreeMap::new();
        let mut locks: BTreeSet<String> = BTreeSet::new();
        for (i, f) in self.fns.iter().enumerate() {
            if f.is_test {
                // Test bodies hold locks across assertions freely; the
                // ordering invariant is about production interleavings.
                continue;
            }
            // A `// LOCK-ORDER:` escape at an *acquisition* opts that
            // lock out of this fn's edge construction entirely (held
            // sets included), so one comment covers a multi-line chain.
            let opted_out: BTreeSet<&str> = f
                .acquires
                .iter()
                .filter(|a| a.escaped)
                .map(|a| a.lock.as_str())
                .collect();
            for a in &f.acquires {
                if a.escaped {
                    continue;
                }
                locks.insert(a.lock.clone());
                for h in &a.held {
                    if opted_out.contains(h.as_str()) {
                        continue;
                    }
                    edges
                        .entry((h.clone(), a.lock.clone()))
                        .or_insert_with(|| (f.file.clone(), a.line, a.col));
                }
            }
            for (c, site) in f.calls.iter().enumerate() {
                if site.lock_escaped || site.held.is_empty() {
                    continue;
                }
                for &j in self.resolved[i].get(c).map(Vec::as_slice).unwrap_or(&[]) {
                    for m in &self.acquires_trans[j] {
                        for h in &site.held {
                            if opted_out.contains(h.as_str()) {
                                continue;
                            }
                            edges
                                .entry((h.clone(), m.clone()))
                                .or_insert_with(|| (f.file.clone(), site.line, site.col));
                        }
                    }
                }
            }
        }

        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            adj.entry(a.as_str()).or_default().insert(b.as_str());
            adj.entry(b.as_str()).or_default();
        }
        let cycles = sccs_with_cycles(&adj);

        for cycle in &cycles {
            // Representative site: the lexicographically-first edge
            // inside the cycle.
            let in_cycle = |l: &String| cycle.iter().any(|c| c == l);
            let Some(((a, b), (file, line, col))) =
                edges.iter().find(|((a, b), _)| in_cycle(a) && in_cycle(b))
            else {
                continue;
            };
            out.push(Finding {
                path: file.clone(),
                line: *line,
                col: *col,
                rule: "concurrency.lock_order",
                message: format!(
                    "lock-order cycle across the workspace: {{{}}} (edge `{a}` -> `{b}` \
                     closes it); two threads taking these locks in different orders \
                     deadlock — impose a global order or justify with `// LOCK-ORDER:`",
                    cycle.join(" -> "),
                ),
                suggestion: None,
            });
        }

        LockSummary {
            locks,
            edges: edges.keys().cloned().collect(),
            cycles,
        }
    }

    // ---- concurrency.guard_across_emit --------------------------------

    fn guard_across_emit(&self, out: &mut Vec<Finding>) {
        for (i, f) in self.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for (c, site) in f.calls.iter().enumerate() {
                if site.held.is_empty() || site.emit_escaped {
                    continue;
                }
                let held = site.held.join(", ");
                if site.is_emit {
                    out.push(Finding {
                        path: f.file.clone(),
                        line: site.line,
                        col: site.col,
                        rule: "concurrency.guard_across_emit",
                        message: format!(
                            "telemetry emission while holding {{{held}}}; emission can \
                             block on the pipeline's own locks (sink, shard registry) — \
                             drop the guard first or justify with `// GUARD-EMIT:`"
                        ),
                        suggestion: None,
                    });
                    continue;
                }
                let reentrant = self.resolved[i]
                    .get(c)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .copied()
                    .find(|&j| self.may_emit[j]);
                if let Some(j) = reentrant {
                    out.push(Finding {
                        path: f.file.clone(),
                        line: site.line,
                        col: site.col,
                        rule: "concurrency.guard_across_emit",
                        message: format!(
                            "call to `{}` while holding {{{held}}} may re-enter telemetry \
                             emission (via {}); drop the guard first or justify with \
                             `// GUARD-EMIT:`",
                            site.callee.name(),
                            self.emit_path(j),
                        ),
                        suggestion: None,
                    });
                }
            }
        }
    }

    // ---- determinism.entropy_flow (cross-fn half) ---------------------

    fn entropy_pending(&self, out: &mut Vec<Finding>) {
        for (i, f) in self.fns.iter().enumerate() {
            for p in &f.pending_rng {
                // Re-resolve against the caller's context; a helper
                // found unseeded makes every use a finding.
                let unseeded = self
                    .resolve_from(i, &p.callee)
                    .into_iter()
                    .find(|&j| self.returns_unseeded[j]);
                let Some(j) = unseeded else {
                    continue;
                };
                for u in &p.uses {
                    if u.escaped {
                        continue;
                    }
                    out.push(Finding {
                        path: f.file.clone(),
                        line: u.line,
                        col: u.col,
                        rule: "determinism.entropy_flow",
                        message: format!(
                            "RNG obtained from `{}` (which can return a fresh-entropy \
                             RNG, see {}) is consumed here; core-crate randomness must \
                             flow from a seeded StdRng — or justify with \
                             `// ENTROPY-SAFETY:`",
                            p.callee.name(),
                            self.fns
                                .get(j)
                                .map(|g| format!("{}:{}", g.file, g.line))
                                .unwrap_or_default(),
                        ),
                        suggestion: Some("rand::rngs::StdRng::seed_from_u64"),
                    });
                }
            }
        }
    }

    /// Resolve `callee` as if called from fn `i` (same rules as build).
    fn resolve_from(&self, i: usize, callee: &Callee) -> Vec<usize> {
        let Some(caller) = self.fns.get(i) else {
            return Vec::new();
        };
        match callee {
            Callee::Method { name } => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.has_self && f.name == *name)
                .map(|(j, _)| j)
                .collect(),
            Callee::Free { qual: None, name } => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.has_self && f.name == *name && f.krate == caller.krate)
                .map(|(j, _)| j)
                .collect(),
            Callee::Free {
                qual: Some(q),
                name,
            } => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.name == *name
                        && if matches!(q.as_str(), "crate" | "self" | "super" | "Self") {
                            f.krate == caller.krate
                        } else {
                            f.quals.iter().any(|fq| fq == q)
                        }
                })
                .map(|(j, _)| j)
                .collect(),
        }
    }

    // ---- panic.reachable ----------------------------------------------

    /// Propagate unsuppressed token-level `panic.*` `leaves` up the call
    /// graph; flag plain-`pub` core-crate fns that can transitively
    /// panic (excluding the leaf-containing fns themselves — their sites
    /// are already reported).
    pub fn panic_reachable(&self, leaves: &[Finding]) -> Vec<Finding> {
        let n = self.fns.len();
        let mut leaf_site: Vec<Option<(String, u32)>> = vec![None; n];
        for leaf in leaves {
            if !leaf.rule.starts_with("panic.") {
                continue;
            }
            // Innermost enclosing fn: the candidate with the largest
            // start line still containing the site.
            let mut best: Option<usize> = None;
            for (i, f) in self.fns.iter().enumerate() {
                if f.file == leaf.path && f.line <= leaf.line && leaf.line <= f.end_line {
                    let better = best
                        .and_then(|b| self.fns.get(b))
                        .is_none_or(|bf| f.line >= bf.line);
                    if better {
                        best = Some(i);
                    }
                }
            }
            if let Some(i) = best {
                if leaf_site.get(i).is_some_and(Option::is_none) {
                    if let Some(slot) = leaf_site.get_mut(i) {
                        *slot = Some((leaf.path.clone(), leaf.line));
                    }
                }
            }
        }

        let mut may_panic: Vec<bool> = leaf_site
            .iter()
            .enumerate()
            .map(|(i, l)| l.is_some() && !self.fns[i].panic_escape)
            .collect();
        // `via[i]` — (callee fn, call line) that makes fn `i` panicky.
        let mut via: Vec<Option<(usize, u32)>> = vec![None; n];
        loop {
            let mut changed = false;
            for i in 0..n {
                if may_panic[i] || self.fns[i].panic_escape {
                    continue;
                }
                'sites: for (c, site) in self.fns[i].calls.iter().enumerate() {
                    for &j in self.resolved[i].get(c).map(Vec::as_slice).unwrap_or(&[]) {
                        if may_panic[j] {
                            may_panic[i] = true;
                            via[i] = Some((j, site.line));
                            changed = true;
                            break 'sites;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut out = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            let flag = f.is_pub
                && CORE_CRATES.contains(&f.krate.as_str())
                && !f.is_test
                && !f.is_bin
                && may_panic[i]
                && leaf_site[i].is_none();
            if !flag {
                continue;
            }
            // Reconstruct the witness chain down to the leaf.
            let mut chain = vec![f.name.clone()];
            let mut k = i;
            let mut hops = 0;
            while let Some((j, _)) = via.get(k).copied().flatten() {
                chain.push(self.fns.get(j).map(|g| g.name.clone()).unwrap_or_default());
                k = j;
                hops += 1;
                if hops >= 8 {
                    break;
                }
            }
            let site = leaf_site
                .get(k)
                .and_then(|s| s.as_ref())
                .map(|(p, l)| format!("{p}:{l}"))
                .unwrap_or_else(|| "?".to_string());
            out.push(Finding {
                path: f.file.clone(),
                line: f.line,
                col: f.col,
                rule: "panic.reachable",
                message: format!(
                    "public API `{}` can transitively panic: {} (panic site {site}); \
                     return a Result, contain the panic, or justify with \
                     `// PANIC-SAFETY:` on the signature",
                    f.name,
                    chain.join(" -> "),
                ),
                suggestion: None,
            });
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Strongly connected components with ≥2 nodes, plus self-loop
/// singletons — i.e. exactly the node sets lying on a cycle. Iterative
/// Tarjan over a `BTreeMap` adjacency, so output order is deterministic.
/// Each component is returned sorted.
fn sccs_with_cycles(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<Vec<String>> {
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: frame = (node, neighbor iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ni)) = call.last_mut() {
            if *ni == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neighbors: Vec<usize> = nodes
                .get(v)
                .and_then(|name| adj.get(name))
                .map(|s| s.iter().filter_map(|t| index_of.get(t).copied()).collect())
                .unwrap_or_default();
            if let Some(&w) = neighbors.get(*ni) {
                *ni += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // All neighbors done: close the frame.
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }

    let mut out: Vec<Vec<String>> = Vec::new();
    for comp in comps {
        let is_cycle = comp.len() > 1
            || comp.first().is_some_and(|&v| {
                nodes
                    .get(v)
                    .and_then(|name| adj.get(name))
                    .is_some_and(|s| nodes.get(v).is_some_and(|n2| s.contains(n2)))
            });
        if is_cycle {
            let mut names: Vec<String> = comp
                .iter()
                .filter_map(|&v| nodes.get(v).map(|s| s.to_string()))
                .collect();
            names.sort();
            out.push(names);
        }
    }
    out.sort();
    out
}
