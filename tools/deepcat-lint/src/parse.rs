//! Total recursive-descent parser: code tokens → [`crate::ast`].
//!
//! Goals, in order: (1) **never panic or loop forever** on arbitrary
//! input — every loop has a forward-progress guard, recursion is
//! depth-capped, all indexing goes through `get`; (2) recover the
//! structure the dataflow/call-graph passes need (items, `let`
//! bindings, call/method-call chains in evaluation order); (3) degrade
//! everything else into [`ast::Expr::Group`] rather than reject it.
//! Precedence is deliberately ignored: `a + f(b)` parses as
//! `Group([a, Call(f, [b])])`, which preserves evaluation order — all
//! the analyses care about.

use crate::ast::*;
use crate::lexer::{Tok, TokKind};

/// Recursion ceiling for blocks/expressions. Real workspace code nests
/// ~15 deep; fuzzed `((((…))))` towers hit the cap and degrade into a
/// diagnostic plus a skipped region.
const MAX_DEPTH: u32 = 64;
/// Diagnostics beyond this are dropped (the first few tell the story).
const MAX_DIAGS: usize = 32;

/// Parse `code` (comment tokens already stripped). Total: always
/// returns a `SourceFile`, never panics.
pub fn parse_file(code: &[Tok<'_>]) -> SourceFile {
    let mut p = P {
        toks: code,
        pos: 0,
        depth: 0,
        diags: Vec::new(),
    };
    let items = p.parse_items(false, false);
    SourceFile {
        items,
        diags: p.diags,
    }
}

struct P<'a, 't> {
    toks: &'a [Tok<'t>],
    pos: usize,
    depth: u32,
    diags: Vec<Diag>,
}

impl<'a, 't> P<'a, 't> {
    // ---- cursor primitives -------------------------------------------

    fn peek(&self, n: usize) -> Option<&'a Tok<'t>> {
        self.toks.get(self.pos + n)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn bump(&mut self) {
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn punct_at(&self, n: usize, s: &str) -> bool {
        self.peek(n)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn ident_at(&self, n: usize) -> Option<&'t str> {
        self.peek(n)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn line_col(&self) -> (u32, u32) {
        self.peek(0)
            .or_else(|| self.toks.last())
            .map_or((0, 0), |t| (t.line, t.col))
    }

    /// Line of the most recently consumed token.
    fn last_line(&self) -> u32 {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map_or(0, |t| t.line)
    }

    fn diag(&mut self, message: &str) {
        if self.diags.len() < MAX_DIAGS {
            let (line, col) = self.line_col();
            self.diags.push(Diag {
                line,
                col,
                message: message.to_string(),
            });
        }
    }

    /// Is the current token `::` (two adjacent `:` puncts)?
    fn at_path_sep(&self) -> bool {
        self.at_punct(":") && self.punct_at(1, ":")
    }

    // ---- skipping helpers --------------------------------------------

    /// Cursor on an opening delimiter: consume through its match.
    /// Tracks all three bracket kinds together so mismatched input
    /// still terminates.
    fn skip_balanced(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Cursor on `<`: consume a balanced generic-argument list. `>`
    /// preceded by `-` (the `->` arrow) does not close; `;` or EOF
    /// bails out so malformed input cannot swallow the file.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev = "";
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "<" => depth += 1,
                    ">" if prev != "-" => {
                        depth -= 1;
                        if depth <= 0 {
                            self.bump();
                            return;
                        }
                    }
                    "(" | "[" | "{" => {
                        self.skip_balanced();
                        prev = "";
                        continue;
                    }
                    ";" => return,
                    _ => {}
                }
                prev = t.text;
            } else {
                prev = "";
            }
            self.bump();
        }
    }

    /// Cursor on `#`: skip one `#[…]` / `#![…]` attribute. Returns true
    /// if the attribute mentions the ident `test` (`#[test]`,
    /// `#[cfg(test)]` — same heuristic as the token rules).
    fn skip_attr(&mut self) -> bool {
        let open = if self.punct_at(1, "[") {
            1
        } else if self.punct_at(1, "!") && self.punct_at(2, "[") {
            2
        } else {
            self.bump();
            return false;
        };
        self.pos += open; // now on `[`
        let before = self.pos;
        self.skip_balanced();
        self.toks
            .get(before..self.pos)
            .unwrap_or(&[])
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test")
    }

    /// Consume to the end of an item we do not model: a top-level `;`,
    /// or a top-level `{…}` body. Always consumes at least one token.
    fn skip_to_item_end(&mut self) {
        let start = self.pos;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text {
                    ";" => {
                        self.bump();
                        return;
                    }
                    "{" => {
                        self.skip_balanced();
                        return;
                    }
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    "}" | ")" | "]" => {
                        // Stray closer belongs to our caller.
                        if self.pos == start {
                            self.bump();
                        }
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Flattened source text of `toks[a..b]`, space-joined.
    fn flatten(&self, a: usize, b: usize) -> String {
        self.toks
            .get(a..b.min(self.toks.len()))
            .unwrap_or(&[])
            .iter()
            .map(|t| t.text)
            .collect::<Vec<_>>()
            .join(" ")
    }

    // ---- items --------------------------------------------------------

    fn parse_items(&mut self, in_braces: bool, parent_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.at_end() {
            if in_braces && self.at_punct("}") {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item_one(parent_test) {
                items.push(item);
            }
            if self.pos == before {
                self.bump(); // forward progress on anything unmodeled
            }
        }
        items
    }

    fn parse_item_one(&mut self, parent_test: bool) -> Option<Item> {
        let mut is_test = parent_test;
        while self.at_punct("#") {
            is_test |= self.skip_attr();
        }
        let (line, _) = self.line_col();

        // Visibility + modifiers.
        let mut is_pub = false;
        if self.at_ident("pub") {
            self.bump();
            if self.at_punct("(") {
                // pub(crate)/pub(in …) is not public API surface.
                self.skip_balanced();
            } else {
                is_pub = true;
            }
        }
        loop {
            if self.at_ident("const") && self.ident_at(1) == Some("fn") {
                self.bump();
            } else if self.at_ident("async") || self.at_ident("default") {
                self.bump();
            } else if self.at_ident("unsafe") && !self.punct_at(1, "{") {
                self.bump();
            } else if self.at_ident("extern") {
                if self.ident_at(1) == Some("crate") {
                    self.skip_to_item_end();
                    return Some(Item {
                        kind: ItemKind::Other,
                        is_test,
                        line,
                    });
                }
                self.bump();
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                    self.bump();
                }
                if self.at_punct("{") {
                    self.skip_balanced(); // extern "C" { … } foreign block
                    return Some(Item {
                        kind: ItemKind::Other,
                        is_test,
                        line,
                    });
                }
            } else {
                break;
            }
        }

        let head = self.ident_at(0)?;
        match head {
            "fn" => Some(self.parse_fn(is_pub, is_test, line)),
            "impl" => Some(self.parse_impl(is_test, line)),
            "trait" => Some(self.parse_trait(is_test, line)),
            "mod" => Some(self.parse_mod(is_test, line)),
            "macro_rules" => {
                // macro_rules ! name { … }
                self.bump();
                self.eat_punct("!");
                if self.ident_at(0).is_some() {
                    self.bump();
                }
                if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                    self.skip_balanced();
                    self.eat_punct(";");
                }
                Some(Item {
                    kind: ItemKind::Other,
                    is_test,
                    line,
                })
            }
            "use" | "static" | "const" | "type" | "struct" | "enum" | "union" => {
                self.skip_to_item_end();
                Some(Item {
                    kind: ItemKind::Other,
                    is_test,
                    line,
                })
            }
            _ => {
                // Item-position macro invocation (`thread_local! { … }`)
                // or anything else: consume one item's worth of tokens.
                self.skip_to_item_end();
                Some(Item {
                    kind: ItemKind::Other,
                    is_test,
                    line,
                })
            }
        }
    }

    fn parse_fn(&mut self, is_pub: bool, is_test: bool, line: u32) -> Item {
        self.bump(); // `fn`
        let (_, col) = self.line_col();
        let name = match self.ident_at(0) {
            Some(n) => {
                self.bump();
                n.to_string()
            }
            None => {
                self.diag("fn without a name");
                String::new()
            }
        };
        if self.at_punct("<") {
            self.skip_angles();
        }
        let (has_self, params) = if self.at_punct("(") {
            self.parse_params()
        } else {
            self.diag("fn without a parameter list");
            (false, Vec::new())
        };

        // Return type: `-> …` up to `{` / `;` / `where`, angle-aware.
        let mut ret = String::new();
        if self.at_punct("-") && self.punct_at(1, ">") {
            self.bump();
            self.bump();
            let start = self.pos;
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text {
                        "{" | ";" => break,
                        "<" => {
                            self.skip_angles();
                            continue;
                        }
                        "(" | "[" => {
                            self.skip_balanced();
                            continue;
                        }
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && t.text == "where" {
                    break;
                }
                self.bump();
            }
            ret = self.flatten(start, self.pos);
        }
        if self.at_ident("where") {
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text {
                        "{" | ";" => break,
                        "<" => {
                            self.skip_angles();
                            continue;
                        }
                        "(" | "[" => {
                            self.skip_balanced();
                            continue;
                        }
                        _ => {}
                    }
                }
                self.bump();
            }
        }

        let (body, end_line) = if self.at_punct("{") {
            let b = self.parse_block();
            (Some(b), self.last_line())
        } else {
            self.eat_punct(";");
            (None, line)
        };

        Item {
            kind: ItemKind::Fn(Func {
                name,
                is_pub,
                has_self,
                params,
                ret,
                body,
                line,
                col,
                end_line: end_line.max(line),
            }),
            is_test,
            line,
        }
    }

    /// Cursor on `(`. Returns (has_self, params).
    fn parse_params(&mut self) -> (bool, Vec<Param>) {
        self.bump(); // `(`
        let mut has_self = false;
        let mut params = Vec::new();
        while !self.at_end() && !self.at_punct(")") {
            while self.at_punct("#") {
                self.skip_attr();
            }
            let start = self.pos;
            // One parameter: tokens to the next top-level `,` or `)`.
            let mut colon_at: Option<usize> = None;
            let mut angle = 0i32;
            let mut prev = "";
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text {
                        "," if angle <= 0 => break,
                        ")" if angle <= 0 => break,
                        "(" | "[" | "{" => {
                            self.skip_balanced();
                            prev = "";
                            continue;
                        }
                        "<" => angle += 1,
                        ">" if prev != "-" => angle -= 1,
                        ":" if angle <= 0 && colon_at.is_none() && !self.punct_at(1, ":") => {
                            colon_at = Some(self.pos);
                        }
                        _ => {}
                    }
                    prev = t.text;
                } else {
                    prev = "";
                }
                self.bump();
            }
            let end = self.pos;
            let pat_end = colon_at.unwrap_or(end);
            let self_param = self
                .toks
                .get(start..pat_end)
                .unwrap_or(&[])
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "self");
            if self_param && params.is_empty() {
                has_self = true;
            }
            let name = self
                .toks
                .get(start..pat_end)
                .unwrap_or(&[])
                .iter()
                .find(|t| {
                    t.kind == TokKind::Ident && !matches!(t.text, "mut" | "ref" | "_" | "self")
                })
                .map_or_else(|| "_".to_string(), |t| t.text.to_string());
            let ty = match colon_at {
                Some(c) => self.flatten(c + 1, end),
                None => self.flatten(start, end),
            };
            if start < end {
                params.push(Param { name, ty });
            }
            self.eat_punct(",");
            if self.pos == start {
                self.bump();
            }
        }
        self.eat_punct(")");
        (has_self, params)
    }

    fn parse_impl(&mut self, is_test: bool, line: u32) -> Item {
        self.bump(); // `impl`
        if self.at_punct("<") {
            self.skip_angles();
        }
        // Scan to the body brace; the impl'd type is the last plain
        // ident seen (`for` resets nothing: `impl Trait for Type` ends
        // on `Type`; `where` stops name collection).
        let mut name = String::new();
        let mut in_where = false;
        while let Some(t) = self.peek(0) {
            match t.kind {
                TokKind::Punct => match t.text {
                    "{" => break,
                    ";" => {
                        self.bump();
                        return Item {
                            kind: ItemKind::Other,
                            is_test,
                            line,
                        };
                    }
                    "<" => {
                        self.skip_angles();
                        continue;
                    }
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    _ => {}
                },
                TokKind::Ident => {
                    if t.text == "where" {
                        in_where = true;
                    } else if !in_where
                        && !matches!(t.text, "for" | "dyn" | "mut" | "const" | "unsafe")
                    {
                        name = t.text.to_string();
                    }
                }
                _ => {}
            }
            self.bump();
        }
        let items = if self.at_punct("{") {
            self.bump();
            let items = self.parse_items(true, is_test);
            self.eat_punct("}");
            items
        } else {
            Vec::new()
        };
        Item {
            kind: ItemKind::Container {
                kind: ContainerKind::Impl,
                name,
                items,
            },
            is_test,
            line,
        }
    }

    fn parse_trait(&mut self, is_test: bool, line: u32) -> Item {
        self.bump(); // `trait`
        let name = self.ident_at(0).unwrap_or("").to_string();
        if !name.is_empty() {
            self.bump();
        }
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" | ";" => break,
                    "<" => {
                        self.skip_angles();
                        continue;
                    }
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        let items = if self.at_punct("{") {
            self.bump();
            let items = self.parse_items(true, is_test);
            self.eat_punct("}");
            items
        } else {
            self.eat_punct(";");
            Vec::new()
        };
        Item {
            kind: ItemKind::Container {
                kind: ContainerKind::Trait,
                name,
                items,
            },
            is_test,
            line,
        }
    }

    fn parse_mod(&mut self, is_test: bool, line: u32) -> Item {
        self.bump(); // `mod`
        let name = self.ident_at(0).unwrap_or("").to_string();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct("{") {
            self.bump();
            let items = self.parse_items(true, is_test);
            self.eat_punct("}");
            Item {
                kind: ItemKind::Container {
                    kind: ContainerKind::Mod,
                    name,
                    items,
                },
                is_test,
                line,
            }
        } else {
            self.eat_punct(";");
            Item {
                kind: ItemKind::Other,
                is_test,
                line,
            }
        }
    }

    // ---- statements ---------------------------------------------------

    /// Cursor on `{`. Consumes through the matching `}`.
    fn parse_block(&mut self) -> Block {
        if self.depth >= MAX_DEPTH {
            self.diag("nesting too deep; skipping block");
            self.skip_balanced();
            return Block::default();
        }
        self.depth += 1;
        self.bump(); // `{`
        let mut stmts = Vec::new();
        while !self.at_end() && !self.at_punct("}") {
            let before = self.pos;
            if let Some(s) = self.parse_stmt() {
                stmts.push(s);
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct("}");
        self.depth = self.depth.saturating_sub(1);
        Block { stmts }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        while self.at_punct("#") && (self.punct_at(1, "[") || self.punct_at(2, "[")) {
            self.skip_attr();
        }
        if self.eat_punct(";") {
            return None;
        }
        if self.at_ident("let") {
            return Some(self.parse_let());
        }
        // Item statements (nested fn / mod / use / struct …).
        let item_start = matches!(
            self.ident_at(0),
            Some(
                "fn" | "pub"
                    | "impl"
                    | "mod"
                    | "struct"
                    | "enum"
                    | "union"
                    | "use"
                    | "static"
                    | "trait"
                    | "type"
                    | "macro_rules"
            )
        ) || (self.at_ident("const") && self.ident_at(1) != Some("fn"))
            || (self.at_ident("extern") && self.ident_at(1) == Some("crate"));
        if item_start {
            return self.parse_item_one(false).map(Stmt::Item);
        }
        let e = self.parse_expr(true);
        self.eat_punct(";");
        Some(Stmt::Expr(e))
    }

    fn parse_let(&mut self) -> Stmt {
        let (line, _) = self.line_col();
        self.bump(); // `let`
        let names = self.scan_pattern_names(&[":", "=", ";"]);
        if self.at_punct(":") && !self.punct_at(1, ":") {
            self.bump();
            // Type annotation: to `=` / `;`, angle- and bracket-aware.
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text {
                        "=" | ";" => break,
                        "<" => {
                            self.skip_angles();
                            continue;
                        }
                        "(" | "[" | "{" => {
                            self.skip_balanced();
                            continue;
                        }
                        _ => {}
                    }
                }
                self.bump();
            }
        }
        let init = if self.at_punct("=") && !self.punct_at(1, "=") {
            self.bump();
            Some(self.parse_expr(true))
        } else {
            None
        };
        let else_block = if self.at_ident("else") && self.punct_at(1, "{") {
            self.bump();
            Some(self.parse_block())
        } else {
            None
        };
        self.eat_punct(";");
        Stmt::Let {
            names,
            init,
            else_block,
            line,
        }
    }

    /// Consume pattern tokens until one of `stops` (single-byte puncts,
    /// matched at bracket depth 0; `:` only when not `::`) or `else`
    /// (let-else) — collecting plausible binding names: idents that are
    /// not path segments (`Foo::`), not constructors (`Some(`,
    /// `Point {`), and not `mut`/`ref`/`_`.
    fn scan_pattern_names(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut prev_was_sep = false;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                if stops.contains(&t.text) {
                    if t.text == ":" && self.punct_at(1, ":") {
                        self.bump();
                        self.bump();
                        prev_was_sep = true;
                        continue;
                    }
                    if t.text == "=" && self.punct_at(1, "=") {
                        // `==` cannot appear in a pattern; treat as stop.
                        break;
                    }
                    break;
                }
                match t.text {
                    "(" | "[" | "{" => {
                        // Recurse one level into sub-patterns so
                        // `let (a, b) = …` and `Some(x)` still bind.
                        self.bump();
                        continue;
                    }
                    ")" | "]" | "}" => {
                        self.bump();
                        continue;
                    }
                    _ => {}
                }
                prev_was_sep = false;
            } else if t.kind == TokKind::Ident {
                let is_ctor = self.punct_at(1, "(")
                    || self.punct_at(1, "{")
                    || (self.punct_at(1, ":") && self.punct_at(2, ":"));
                if !prev_was_sep
                    && !is_ctor
                    && !matches!(t.text, "mut" | "ref" | "_" | "in" | "if" | "else")
                {
                    names.push(t.text.to_string());
                }
                if matches!(t.text, "in" | "if" | "else") {
                    break;
                }
                prev_was_sep = false;
            }
            self.bump();
        }
        names
    }

    /// Consume pattern tokens until `=>` (match arm) at depth 0, or a
    /// stray `}` that ends the arm list.
    fn skip_arm_pattern(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "}" => {
                        if depth == 0 {
                            return; // malformed; `}` closes the match
                        }
                        depth = depth.saturating_sub(1);
                    }
                    "=" if depth == 0 && self.punct_at(1, ">") => {
                        self.bump();
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Consume a `let`-pattern up to its `=` (for `if let` / `while
    /// let` / `let`-chains), including the `=` itself.
    fn skip_let_pattern(&mut self) {
        self.scan_pattern_names(&["=", ";", "{"]);
        if self.at_punct("=") && !self.punct_at(1, "=") {
            self.bump();
        }
    }

    // ---- expressions --------------------------------------------------

    /// `allow_struct`: whether `Path { … }` may be a struct literal
    /// here (false in `if`/`while`/`for`/`match` heads).
    fn parse_expr(&mut self, allow_struct: bool) -> Expr {
        let (line, _) = self.line_col();
        if self.depth >= MAX_DEPTH {
            self.diag("expression nesting too deep");
            return Expr::Lit { line };
        }
        self.depth += 1;
        let mut operands = vec![self.parse_unary(allow_struct)];
        loop {
            if self.at_ident("as") {
                self.bump();
                self.skip_type_tokens();
                continue;
            }
            if !self.eat_binary_op() {
                break;
            }
            // Open-ended ranges (`a..`) have no right operand.
            if self.rhs_can_start() {
                operands.push(self.parse_unary(allow_struct));
            } else {
                break;
            }
        }
        self.depth = self.depth.saturating_sub(1);
        if operands.len() == 1 {
            if let Some(e) = operands.pop() {
                return e;
            }
        }
        Expr::Group(operands)
    }

    fn rhs_can_start(&self) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => {
                !(t.kind == TokKind::Punct && matches!(t.text, ")" | "]" | "}" | "," | ";" | "="))
            }
        }
    }

    /// Consume one binary operator if present. `=>` and a lone `.` are
    /// not operators (arm arrow / postfix, handled elsewhere).
    fn eat_binary_op(&mut self) -> bool {
        let Some(t) = self.peek(0) else {
            return false;
        };
        if t.kind != TokKind::Punct {
            return false;
        }
        match t.text {
            "+" | "-" | "*" | "/" | "%" | "^" => {
                self.bump();
                self.eat_punct("=");
                true
            }
            "&" | "|" => {
                let two = self.punct_at(1, t.text);
                self.bump();
                if two {
                    self.bump();
                }
                self.eat_punct("=");
                true
            }
            "<" | ">" => {
                let two = self.punct_at(1, t.text);
                self.bump();
                if two {
                    self.bump();
                }
                self.eat_punct("=");
                true
            }
            "=" => {
                if self.punct_at(1, ">") {
                    return false; // `=>`
                }
                self.bump();
                self.eat_punct("=");
                true
            }
            "!" if self.punct_at(1, "=") => {
                self.bump();
                self.bump();
                true
            }
            "." if self.punct_at(1, ".") => {
                self.bump();
                self.bump();
                self.eat_punct("=");
                true
            }
            _ => false,
        }
    }

    /// After `as`: consume the target type (idents, `::`, angles).
    fn skip_type_tokens(&mut self) {
        loop {
            if self.at_path_sep() {
                self.bump();
                self.bump();
            } else if self.at_punct("<") {
                self.skip_angles();
            } else if self
                .peek(0)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text != "as")
            {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> Expr {
        // Transparent prefixes: the analyses care about the operand.
        loop {
            if self.at_punct("-") || self.at_punct("!") || self.at_punct("*") {
                self.bump();
            } else if self.at_punct("&") {
                self.bump();
                if self.at_punct("&") {
                    self.bump();
                }
                if self.at_ident("mut") {
                    self.bump();
                }
            } else {
                break;
            }
        }
        // Closures.
        if self.at_punct("|") || (self.at_ident("move") && self.punct_at(1, "|")) {
            let (line, _) = self.line_col();
            if self.at_ident("move") {
                self.bump();
            }
            self.bump(); // first `|`
            if !self.eat_punct("|") {
                // Non-empty parameter list: skip to the closing `|`.
                let mut depth = 0usize;
                while let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Punct {
                        match t.text {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            "|" if depth == 0 => {
                                self.bump();
                                break;
                            }
                            _ => {}
                        }
                    }
                    self.bump();
                }
            }
            if self.at_punct("-") && self.punct_at(1, ">") {
                self.bump();
                self.bump();
                while let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Punct && matches!(t.text, "{" | "," | ";" | ")") {
                        break;
                    }
                    if t.kind == TokKind::Punct && t.text == "<" {
                        self.skip_angles();
                        continue;
                    }
                    self.bump();
                }
            }
            let body = self.parse_expr(allow_struct);
            return Expr::Closure {
                body: Box::new(body),
                line,
            };
        }
        self.parse_postfix(allow_struct)
    }

    fn parse_postfix(&mut self, allow_struct: bool) -> Expr {
        let mut e = self.parse_primary(allow_struct);
        loop {
            if self.at_punct(".") {
                if let Some(name) = self.ident_at(1) {
                    if name == "await" {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    let (line, col) = self.peek(1).map_or((0, 0), |t| (t.line, t.col));
                    self.bump(); // `.`
                    self.bump(); // name
                    if self.at_path_sep() && self.punct_at(2, "<") {
                        self.bump();
                        self.bump();
                        self.skip_angles(); // turbofish
                    }
                    if self.at_punct("(") {
                        let args = self.parse_call_args("(", ")");
                        e = Expr::MethodCall {
                            recv: Box::new(e),
                            method: name.to_string(),
                            args,
                            line,
                            col,
                        };
                    } else {
                        e = Expr::Field {
                            recv: Box::new(e),
                            name: name.to_string(),
                        };
                    }
                    continue;
                }
                if self.peek(1).is_some_and(|t| t.kind == TokKind::Num) {
                    let name = self.peek(1).map_or("", |t| t.text).to_string();
                    self.bump();
                    self.bump();
                    e = Expr::Field {
                        recv: Box::new(e),
                        name,
                    };
                    continue;
                }
                break; // `..` range or stray dot — binary layer's problem
            }
            if self.at_punct("(") {
                let (paren_line, col) = self.line_col();
                let head_line = e.line();
                let args = self.parse_call_args("(", ")");
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line: if head_line > 0 { head_line } else { paren_line },
                    col,
                };
                continue;
            }
            if self.at_punct("[") {
                self.bump();
                let idx = self.parse_expr(true);
                self.close_delim("]");
                e = Expr::Index {
                    recv: Box::new(e),
                    index: Box::new(idx),
                };
                continue;
            }
            if self.at_punct("?") {
                self.bump();
                continue;
            }
            break;
        }
        e
    }

    /// Consume the expected closing delimiter, skipping stray tokens
    /// (bracket-balanced) to reach it.
    fn close_delim(&mut self, close: &str) {
        if self.eat_punct(close) {
            return;
        }
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            if t.text == close {
                                self.bump();
                            }
                            return;
                        }
                        depth = depth.saturating_sub(1);
                    }
                    ";" if depth == 0 => return,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Cursor on `open`: parse comma-separated argument expressions.
    fn parse_call_args(&mut self, open: &str, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct(open) {
            return args;
        }
        while !self.at_end() && !self.at_punct(close) {
            let before = self.pos;
            args.push(self.parse_expr(true));
            self.eat_punct(",");
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct(close);
        args
    }

    fn parse_primary(&mut self, allow_struct: bool) -> Expr {
        let (line, col) = self.line_col();
        let Some(t) = self.peek(0) else {
            return Expr::Lit { line };
        };
        match t.kind {
            TokKind::Num | TokKind::Str | TokKind::Char => {
                self.bump();
                Expr::Lit { line }
            }
            TokKind::Lifetime => {
                self.bump();
                if self.at_punct(":") && !self.punct_at(1, ":") {
                    self.bump();
                    return self.parse_primary(allow_struct); // labeled loop
                }
                Expr::Lit { line }
            }
            TokKind::Punct => match t.text {
                "(" => {
                    let mut exprs = Vec::new();
                    self.bump();
                    while !self.at_end() && !self.at_punct(")") {
                        let before = self.pos;
                        exprs.push(self.parse_expr(true));
                        self.eat_punct(",");
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct(")");
                    if exprs.len() == 1 {
                        if let Some(e) = exprs.pop() {
                            return e;
                        }
                    }
                    Expr::Group(exprs)
                }
                "[" => {
                    let mut exprs = Vec::new();
                    self.bump();
                    while !self.at_end() && !self.at_punct("]") {
                        let before = self.pos;
                        exprs.push(self.parse_expr(true));
                        if !self.eat_punct(",") {
                            self.eat_punct(";"); // `[elem; len]`
                        }
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct("]");
                    Expr::Group(exprs)
                }
                "{" => Expr::Block(self.parse_block()),
                "#" => {
                    self.skip_attr();
                    self.parse_primary(allow_struct)
                }
                "<" => {
                    // Qualified path `<T as Trait>::assoc(…)` — the
                    // qualifier is out of lexical reach; keep the tail.
                    self.skip_angles();
                    if self.at_path_sep() {
                        self.bump();
                        self.bump();
                    }
                    self.parse_primary(allow_struct)
                }
                _ => {
                    self.diag("unexpected token in expression");
                    Expr::Lit { line }
                }
            },
            TokKind::Ident => match t.text {
                "if" => self.parse_if(),
                "match" => {
                    self.bump();
                    let scrutinee = self.parse_expr(false);
                    let mut arms = Vec::new();
                    if self.at_punct("{") {
                        self.bump();
                        while !self.at_end() && !self.at_punct("}") {
                            let before = self.pos;
                            while self.at_punct("#") {
                                self.skip_attr();
                            }
                            self.skip_arm_pattern();
                            if !self.at_punct("}") {
                                arms.push(self.parse_expr(true));
                            }
                            self.eat_punct(",");
                            if self.pos == before {
                                self.bump();
                            }
                        }
                        self.eat_punct("}");
                    }
                    Expr::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    }
                }
                "while" => {
                    self.bump();
                    if self.at_ident("let") {
                        self.bump();
                        self.skip_let_pattern();
                    }
                    let head = self.parse_expr(false);
                    let body = if self.at_punct("{") {
                        self.parse_block()
                    } else {
                        Block::default()
                    };
                    Expr::Loop {
                        head: Some(Box::new(head)),
                        body,
                    }
                }
                "for" => {
                    self.bump();
                    self.scan_pattern_names(&["{", ";"]); // stops at `in`
                    let head = self.parse_expr(false);
                    let body = if self.at_punct("{") {
                        self.parse_block()
                    } else {
                        Block::default()
                    };
                    Expr::Loop {
                        head: Some(Box::new(head)),
                        body,
                    }
                }
                "loop" => {
                    self.bump();
                    let body = if self.at_punct("{") {
                        self.parse_block()
                    } else {
                        Block::default()
                    };
                    Expr::Loop { head: None, body }
                }
                "unsafe" | "async" => {
                    self.bump();
                    if self.at_ident("move") {
                        self.bump();
                    }
                    if self.at_punct("{") {
                        Expr::Block(self.parse_block())
                    } else {
                        self.parse_unary(allow_struct)
                    }
                }
                "return" | "break" | "continue" | "yield" => {
                    self.bump();
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump(); // loop label
                    }
                    if self.rhs_can_start() && !self.at_punct("}") {
                        Expr::Group(vec![self.parse_expr(allow_struct)])
                    } else {
                        Expr::Lit { line }
                    }
                }
                "let" => {
                    // Let-chain operand: `… && let P = e`.
                    self.bump();
                    self.skip_let_pattern();
                    self.parse_expr(false)
                }
                "move" => {
                    self.bump();
                    self.parse_unary(allow_struct)
                }
                _ => self.parse_path_expr(allow_struct, line, col),
            },
            _ => {
                self.bump();
                Expr::Lit { line }
            }
        }
    }

    fn parse_path_expr(&mut self, allow_struct: bool, line: u32, col: u32) -> Expr {
        let mut segs = Vec::new();
        if let Some(first) = self.ident_at(0) {
            segs.push(first.to_string());
            self.bump();
        }
        while self.at_path_sep() {
            if self.punct_at(2, "<") {
                self.bump();
                self.bump();
                self.skip_angles(); // turbofish
                continue;
            }
            if let Some(seg) = self.ident_at(2) {
                segs.push(seg.to_string());
                self.bump();
                self.bump();
                self.bump();
            } else {
                self.bump();
                self.bump();
                break;
            }
        }
        // Macro invocation.
        if self.at_punct("!") {
            let delim = self.peek(1).map_or("", |t| t.text);
            match delim {
                "(" => {
                    self.bump();
                    let args = self.parse_call_args("(", ")");
                    return Expr::MacroCall {
                        segs,
                        args,
                        line,
                        col,
                    };
                }
                "[" => {
                    self.bump();
                    let args = self.parse_call_args("[", "]");
                    return Expr::MacroCall {
                        segs,
                        args,
                        line,
                        col,
                    };
                }
                "{" => {
                    self.bump();
                    self.skip_balanced();
                    return Expr::MacroCall {
                        segs,
                        args: Vec::new(),
                        line,
                        col,
                    };
                }
                _ => {} // `!=` or prefix-not already consumed elsewhere
            }
        }
        // Struct literal.
        if allow_struct && self.at_punct("{") && self.looks_like_struct_lit() {
            self.bump(); // `{`
            let mut children = vec![Expr::Path { segs, line, col }];
            while !self.at_end() && !self.at_punct("}") {
                let before = self.pos;
                while self.at_punct("#") {
                    self.skip_attr();
                }
                if self.at_punct(".") && self.punct_at(1, ".") {
                    self.bump();
                    self.bump();
                    children.push(self.parse_expr(true)); // `..base`
                } else {
                    if self.ident_at(0).is_some() {
                        self.bump(); // field name
                    }
                    if self.at_punct(":") && !self.punct_at(1, ":") {
                        self.bump();
                        children.push(self.parse_expr(true));
                    }
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_punct("}");
            return Expr::Group(children);
        }
        Expr::Path { segs, line, col }
    }

    /// Lookahead: does `{ …` after a path open a struct literal rather
    /// than a block? (`Path { ident: …`, `Path { ident, …`,
    /// `Path { ident }`, `Path { ..base }`, `Path {}`.)
    fn looks_like_struct_lit(&self) -> bool {
        if self.punct_at(1, "}") {
            return true;
        }
        if self.punct_at(1, ".") && self.punct_at(2, ".") {
            return true;
        }
        if self.ident_at(1).is_some() {
            // `ident:` (not `::`), `ident,`, `ident }`.
            if self.punct_at(2, ":") && !self.punct_at(3, ":") {
                return true;
            }
            if self.punct_at(2, ",") || self.punct_at(2, "}") {
                return true;
            }
        }
        false
    }

    fn parse_if(&mut self) -> Expr {
        self.bump(); // `if`
        if self.at_ident("let") {
            self.bump();
            self.skip_let_pattern();
        }
        let cond = self.parse_expr(false);
        let then = if self.at_punct("{") {
            self.parse_block()
        } else {
            self.diag("if without a block");
            Block::default()
        };
        let alt = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else if self.at_punct("{") {
                Some(Box::new(Expr::Block(self.parse_block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            alt,
        }
    }
}
