//! A tiny TOML-subset reader — the linter is dependency-free by design,
//! and its two config files (`lint.toml`, `crates/telemetry/events.toml`)
//! only need one shape: arrays of tables with string values.
//!
//! Supported syntax:
//!
//! ```toml
//! # comment
//! [[entry]]
//! key = "value"        # trailing comments allowed
//! other = "with \" escape"
//! ```
//!
//! Anything else (nested tables, non-string values, multi-line strings)
//! is a parse error — better to fail loudly than to silently ignore an
//! allowlist entry.

/// One `[[name]]` table as a list of key/value pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Entry {
    pub fields: Vec<(String, String)>,
}

impl Entry {
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse the file into `(table_name, entry)` pairs, in file order.
pub fn parse(src: &str) -> Result<Vec<(String, Entry)>, String> {
    let mut out: Vec<(String, Entry)> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(format!("line {lineno}: malformed table header `{line}`"));
            };
            out.push((name.trim().to_string(), Entry::default()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`"));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {lineno}: bad key `{key}`"));
        }
        let value = parse_string(value.trim())
            .ok_or_else(|| format!("line {lineno}: value must be a \"quoted string\""))?;
        match out.last_mut() {
            Some((_, entry)) => entry.fields.push((key.to_string(), value)),
            None => return Err(format!("line {lineno}: key/value before any [[table]]")),
        }
    }
    Ok(out)
}

/// Parse a double-quoted string with `\"` and `\\` escapes; trailing
/// `# comment` after the closing quote is ignored.
fn parse_string(s: &str) -> Option<String> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            '"' => break,
            c => out.push(c),
        }
    }
    let tail = chars.as_str().trim();
    if tail.is_empty() || tail.starts_with('#') {
        Some(out)
    } else {
        None
    }
}

/// Serialize entries back out (used by `--emit-manifest`).
pub fn render(tables: &[(String, Entry)]) -> String {
    let mut out = String::new();
    for (name, entry) in tables {
        out.push_str("[[");
        out.push_str(name);
        out.push_str("]]\n");
        for (k, v) in &entry.fields {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(k);
            out.push_str(" = \"");
            out.push_str(&escaped);
            out.push_str("\"\n");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_in_order() {
        let src = r#"
# header comment
[[allow]]
rule = "panic.index"
path = "crates/tensor-nn"
reason = "dense kernels"  # trailing

[[allow]]
rule = "numeric.lossy_cast"
path = "crates/surrogate/src/lasso.rs"
reason = "powi exponent \"k\""
"#;
        let t = parse(src).expect("parses");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].1.get("rule"), Some("panic.index"));
        assert_eq!(t[1].1.get("reason"), Some("powi exponent \"k\""));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse("key = \"before table\"").is_err());
        assert!(parse("[[allow]]\nkey = unquoted").is_err());
        assert!(parse("[[allow\nkey = \"v\"").is_err());
        assert!(parse("[[allow]]\nkey = \"v\" trailing").is_err());
    }

    #[test]
    fn render_roundtrips() {
        let src = "[[event]]\nname = \"a.b\"\ndoc = \"say \\\"hi\\\"\"\n\n";
        let t = parse(src).expect("parses");
        assert_eq!(render(&t), src);
    }
}
