//! `deepcat-lint` — the workspace's in-repo static analysis gate.
//!
//! DeepCAT's headline numbers (Twin-Q skip savings, RDPER β-mix) are
//! only reproducible if every seeded run is bit-for-bit deterministic
//! and a bad config sample degrades into a low reward instead of a
//! panic. This crate enforces those invariants with zero external
//! dependencies, fast enough to run on every CI invocation:
//!
//! * a never-panicking Rust lexer ([`lexer`]) and a total
//!   recursive-descent parser ([`parse`], [`ast`]) — arbitrary bytes in,
//!   AST + diagnostics out, never a panic;
//! * token rule families ([`rules`]): determinism, panic-freedom,
//!   numeric safety, telemetry naming;
//! * an intra-procedural dataflow pass ([`dataflow`]) tracking
//!   lock-guard and RNG-value lifetimes per function;
//! * a workspace call graph ([`callgraph`]) powering the
//!   cross-function families: `concurrency.lock_order`,
//!   `concurrency.guard_across_emit`, `panic.reachable`,
//!   `determinism.entropy_flow`, and the AST-based
//!   `telemetry.session_scope`;
//! * a reasoned allowlist ([`allowlist`], `lint.toml`),
//! * a telemetry name manifest ([`manifest`],
//!   `crates/telemetry/events.toml`),
//! * text, JSON, and SARIF 2.1.0 ([`sarif`]) output.
//!
//! Run locally with `cargo run -p deepcat-lint`; see DESIGN.md
//! ("Static analysis v2") for the policy rationale.

pub mod allowlist;
pub mod ast;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod toml_lite;

pub use allowlist::Allowlist;
pub use manifest::Manifest;
pub use rules::{Finding, NamesSeen};
pub use sarif::render_sarif;

use callgraph::{CallGraph, LockSummary};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by (path, line).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.toml` entries.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale).
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Telemetry names seen at non-test call sites.
    pub names: BTreeSet<String>,
    /// Per-rule totals: rule id -> (kept, suppressed).
    pub rule_hits: BTreeMap<&'static str, (usize, usize)>,
    /// The workspace lock-acquisition-order graph.
    pub lock_summary: LockSummary,
}

/// Full analysis of a set of sources, before any allowlisting.
pub struct Analysis {
    /// Token + AST + workspace findings (everything except
    /// `panic.reachable`, which depends on post-allowlist leaves).
    pub findings: Vec<Finding>,
    pub graph: CallGraph,
    pub lock_summary: LockSummary,
    pub files: usize,
}

/// Lex, parse, and analyze `sources` (`(repo-relative path, text)`
/// pairs): token rules and per-file dataflow per source, then the
/// cross-function passes over the combined call graph.
pub fn analyze_sources(
    sources: &[(String, String)],
    manifest: &Manifest,
    seen: &mut NamesSeen,
) -> Analysis {
    let mut findings = Vec::new();
    let mut fns = Vec::new();
    for (rel, src) in sources {
        let toks = lexer::lex(src);
        let cx = rules::build_cx(rel, &toks);
        rules::token_rules(&cx, manifest, seen, &mut findings);
        let parsed = parse::parse_file(&cx.code);
        fns.extend(dataflow::analyze_file(
            rel,
            cx.krate,
            cx.is_bin,
            &parsed,
            &cx.comments,
            &mut findings,
        ));
    }
    let graph = CallGraph::build(fns);
    let (workspace, lock_summary) = graph.workspace_findings();
    findings.extend(workspace);
    findings.sort();
    findings.dedup();
    Analysis {
        findings,
        graph,
        lock_summary,
        files: sources.len(),
    }
}

/// Lint one file in isolation — the fixture/test entry point. Runs the
/// full pipeline (token rules, dataflow, single-file call graph,
/// `panic.reachable` with every `panic.*` finding as a leaf) with no
/// allowlist.
pub fn lint_source(
    rel_path: &str,
    src: &str,
    manifest: &Manifest,
    seen: &mut NamesSeen,
) -> Vec<Finding> {
    let sources = vec![(rel_path.to_string(), src.to_string())];
    let analysis = analyze_sources(&sources, manifest, seen);
    let mut findings = analysis.findings;
    let reachable = analysis.graph.panic_reachable(&findings);
    findings.extend(reachable);
    findings.sort();
    findings.dedup();
    findings
}

/// Locate the repo root by walking up from `start` until a directory
/// containing `lint.toml` or `Cargo.toml` with a `[workspace]` section.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(body) = std::fs::read_to_string(&manifest) {
                if body.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All `.rs` files under the lintable roots (`crates/*/src`,
/// `tools/*/src` — the linter sweeps itself), sorted for deterministic
/// reports.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for group in ["crates", "tools"] {
        let Ok(members) = std::fs::read_dir(root.join(group)) else {
            continue;
        };
        for member in members.flatten() {
            collect_rs(&member.path().join("src"), &mut files);
        }
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Repo-relative `/`-separated form of `path`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint `files` (or the whole workspace when empty) under `root`.
pub fn run(root: &Path, explicit_files: &[PathBuf], use_allowlist: bool) -> Result<Report, String> {
    let manifest_path = root.join("crates/telemetry/events.toml");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(src) => Manifest::parse(&src)?,
        Err(_) => Manifest::default(),
    };
    let mut allow = if use_allowlist {
        match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(src) => Allowlist::parse(&src)?,
            Err(_) => Allowlist::default(),
        }
    } else {
        Allowlist::default()
    };

    let files = if explicit_files.is_empty() {
        workspace_files(root)
    } else {
        explicit_files.to_vec()
    };

    let mut seen = NamesSeen::default();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        sources.push((relative(root, file), src));
    }
    let analysis = analyze_sources(&sources, &manifest, &mut seen);

    // Allowlist pass 1, then `panic.reachable` over the *kept* panic
    // leaves (an allowlisted panic site is a justified one — it does
    // not poison its callers), then allowlist pass 2 for the new
    // findings.
    let (kept, suppressed) = allow.apply(analysis.findings);
    let reachable = analysis.graph.panic_reachable(&kept);
    let (kept2, suppressed2) = allow.apply(reachable);

    let mut report = Report {
        files: analysis.files,
        lock_summary: analysis.lock_summary,
        names: seen.names,
        ..Report::default()
    };
    for f in kept.iter().chain(kept2.iter()) {
        report.rule_hits.entry(f.rule).or_default().0 += 1;
    }
    for f in suppressed.iter().chain(suppressed2.iter()) {
        report.rule_hits.entry(f.rule).or_default().1 += 1;
    }
    report.suppressed = suppressed.len() + suppressed2.len();
    report.findings = kept;
    report.findings.extend(kept2);
    report.findings.sort();
    report.findings.dedup();
    report.stale_allows = allow
        .unused()
        .map(|e| format!("{} / {} ({})", e.rule, e.path, e.reason))
        .collect();
    Ok(report)
}

/// Render findings for humans, grouped by file, with per-rule totals
/// and the lock-order graph summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    let mut last_path = "";
    for f in &report.findings {
        if f.path != last_path {
            out.push_str(&f.path);
            out.push('\n');
            last_path = &f.path;
        }
        out.push_str(&format!(
            "  {}:{} [{}] {}\n",
            f.line, f.col, f.rule, f.message
        ));
        if let Some(s) = f.suggestion {
            out.push_str(&format!("      suggestion: {s}\n"));
        }
    }
    for stale in &report.stale_allows {
        out.push_str(&format!(
            "stale lint.toml entry (matched nothing): {stale}\n"
        ));
    }
    if !report.rule_hits.is_empty() {
        out.push_str("rule hits (kept + suppressed):\n");
        for (rule, (kept, suppressed)) in &report.rule_hits {
            out.push_str(&format!("  {rule}: {kept} + {suppressed}\n"));
        }
    }
    let cycles = report.lock_summary.cycles.len();
    out.push_str(&format!(
        "lock-order graph: {} lock(s), {} edge(s), {}\n",
        report.lock_summary.locks.len(),
        report.lock_summary.edges.len(),
        if cycles == 0 {
            "acyclic".to_string()
        } else {
            format!("{cycles} cycle(s)")
        }
    ));
    out.push_str(&format!(
        "{} file(s), {} finding(s), {} suppressed by lint.toml\n",
        report.files,
        report.findings.len(),
        report.suppressed
    ));
    out
}

/// Machine-readable report (the `--json` contract): one object with a
/// `findings` array carrying byte-exact locations and, where known, a
/// mechanical `suggestion` — enough for an external `--fix` driver.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"suggestion\":{}}}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message),
            f.suggestion.map_or("null".to_string(), json_str),
        ));
    }
    out.push_str(&format!(
        "],\"files\":{},\"suppressed\":{},\"stale_allows\":[",
        report.files, report.suppressed
    ));
    for (i, s) in report.stale_allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(s));
    }
    out.push_str("]}");
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
