//! SARIF 2.1.0 output (`--format sarif`) — the minimal static-analysis
//! interchange subset: one run, one driver, rule metadata derived from
//! the findings, one result per finding with a physical location.
//! Emitted deterministically (findings are already sorted) so the CI
//! artifact is byte-stable for identical inputs.

use crate::{json_str, Report};
use std::collections::BTreeSet;

pub fn render_sarif(report: &Report) -> String {
    let rules: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();

    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"deepcat-lint\",\
         \"informationUri\":\"https://example.invalid/deepcat-lint\",\
         \"rules\":[",
    );
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_str(rule)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let text = match f.suggestion {
            Some(s) => format!("{} (suggestion: {s})", f.message),
            None => f.message.clone(),
        };
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_str(f.rule),
            json_str(&text),
            json_str(&f.path),
            f.line.max(1),
            f.col.max(1),
        ));
    }
    out.push_str("]}]}");
    out
}
