//! The telemetry event-name manifest (`crates/telemetry/events.toml`).
//!
//! Every metric/event family name used at a `telemetry::…` call site
//! with a literal name must be registered here with a one-line `doc`.
//! The linter cross-checks call sites against the manifest
//! (`telemetry.manifest`) so a typo'd or undocumented event name fails
//! CI instead of silently forking the event schema that
//! `deepcat-tune report` consumes.

use crate::toml_lite;
use std::collections::BTreeMap;

/// Parsed manifest: name → doc line.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    pub events: BTreeMap<String, String>,
}

impl Manifest {
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut events = BTreeMap::new();
        for (table, entry) in toml_lite::parse(src)? {
            if table != "event" {
                return Err(format!("events.toml: unknown table [[{table}]]"));
            }
            let name = entry
                .get("name")
                .ok_or("events.toml: [[event]] missing `name`")?;
            let doc = entry
                .get("doc")
                .ok_or_else(|| format!("events.toml: event \"{name}\" missing `doc`"))?;
            if doc.trim().is_empty() {
                return Err(format!("events.toml: event \"{name}\" has an empty doc"));
            }
            if events.insert(name.to_string(), doc.to_string()).is_some() {
                return Err(format!("events.toml: duplicate event \"{name}\""));
            }
        }
        Ok(Self { events })
    }

    pub fn contains(&self, name: &str) -> bool {
        self.events.contains_key(name)
    }
}

/// Render a manifest skeleton for the given names (`--emit-manifest`),
/// carrying over docs for names already in `existing`.
pub fn render_manifest<'a>(
    names: impl IntoIterator<Item = &'a str>,
    existing: &Manifest,
) -> String {
    let mut out = String::from(
        "# Telemetry event/metric name manifest — cross-checked by deepcat-lint.\n\
         # Regenerate the skeleton with: cargo run -p deepcat-lint -- --emit-manifest\n\n",
    );
    let tables: Vec<(String, toml_lite::Entry)> = names
        .into_iter()
        .map(|name| {
            let doc = existing
                .events
                .get(name)
                .cloned()
                .unwrap_or_else(|| "TODO: document this event".to_string());
            (
                "event".to_string(),
                toml_lite::Entry {
                    fields: vec![
                        ("name".to_string(), name.to_string()),
                        ("doc".to_string(), doc),
                    ],
                },
            )
        })
        .collect();
    out.push_str(&toml_lite::render(&tables));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_contains() {
        let m = Manifest::parse(
            "[[event]]\nname = \"a.b\"\ndoc = \"x\"\n[[event]]\nname = \"c.d\"\ndoc = \"y\"\n",
        )
        .expect("parses");
        assert!(m.contains("a.b") && m.contains("c.d") && !m.contains("a.c"));
    }

    #[test]
    fn rejects_duplicates_and_missing_doc() {
        assert!(Manifest::parse("[[event]]\nname = \"a.b\"\n").is_err());
        assert!(Manifest::parse(
            "[[event]]\nname = \"a.b\"\ndoc = \"x\"\n[[event]]\nname = \"a.b\"\ndoc = \"y\"\n"
        )
        .is_err());
    }
}
