//! A minimal, never-panicking Rust lexer.
//!
//! `deepcat-lint` matches token *sequences*, so it needs just enough
//! lexical structure to tell code from comments and string literals —
//! the classic failure mode of grep-based lint gates is flagging the
//! word `unwrap` inside a doc comment. The lexer handles line/nested
//! block comments, plain/raw/byte strings, char-vs-lifetime
//! disambiguation and numeric literals; everything else is a
//! one-byte `Punct`.
//!
//! Robustness contract: `lex` must return (never panic, never loop
//! forever) for **arbitrary byte input**, including invalid UTF-8
//! fragments and unterminated literals — enforced by a property test
//! (`tests/proptest_lexer.rs`). All slicing goes through `str::get`,
//! so a mid-codepoint boundary degrades into an empty-text token
//! rather than a panic.

/// Lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Character or byte literal: `'a'`, `b'\n'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// Numeric literal (int or float, any base, with suffix).
    Num,
    /// Single punctuation byte (`::` is two `:` tokens).
    Punct,
    /// `// …` comment, including doc comments.
    LineComment,
    /// `/* … */` comment (nesting handled), including doc comments.
    BlockComment,
}

/// One token with its source text and position (1-based line/column).
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
    pub col: u32,
}

impl Tok<'_> {
    /// Literal content of a string token with quotes/prefix stripped
    /// (`r#"x"#` → `x`). Non-string tokens return their text verbatim.
    pub fn str_content(&self) -> &str {
        if self.kind != TokKind::Str {
            return self.text;
        }
        let t = self.text;
        // Strip optional prefix letters (r, b, br, c, …) before the quote.
        let body = t.trim_start_matches(|c: char| c.is_ascii_alphabetic());
        let hashes = body.bytes().take_while(|&b| b == b'#').count();
        let body = body.get(hashes..).unwrap_or("");
        let body = body.strip_prefix('"').unwrap_or(body);
        let body = body.strip_suffix('#').unwrap_or(body);
        let body = if hashes > 0 {
            // r##"…"## — drop remaining closing hashes, then the quote.
            body.trim_end_matches('#')
        } else {
            body
        };
        body.strip_suffix('"').unwrap_or(body)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte-oriented cursor; slices are re-validated against the original
/// `&str` so tokens are always valid UTF-8 substrings (or empty).
struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(b) = self.bytes.get(self.pos) {
            if *b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn slice(&self, start: usize) -> &'a str {
        self.src.get(start..self.pos).unwrap_or("")
    }
}

/// Tokenize `src`. Total function: any input produces a token list.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = scan_token(&mut cur, b);
        // Defensive: guarantee forward progress on any input.
        if cur.pos == start {
            cur.bump();
        }
        out.push(Tok {
            kind,
            text: cur.slice(start),
            line,
            col,
        });
    }
    out
}

fn scan_token(cur: &mut Cursor<'_>, b: u8) -> TokKind {
    match b {
        b'/' if cur.peek(1) == Some(b'/') => {
            while let Some(c) = cur.peek(0) {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            TokKind::LineComment
        }
        b'/' if cur.peek(1) == Some(b'*') => {
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        cur.bump_n(2);
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        cur.bump_n(2);
                    }
                    (Some(_), _) => cur.bump(),
                    (None, _) => break,
                }
            }
            TokKind::BlockComment
        }
        b'r' | b'b' | b'c' if starts_string(cur) => scan_prefixed_string(cur),
        _ if is_ident_start(b) => {
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                cur.bump();
            }
            TokKind::Ident
        }
        _ if b.is_ascii_digit() => {
            scan_number(cur);
            TokKind::Num
        }
        b'"' => {
            cur.bump();
            scan_plain_string_body(cur);
            TokKind::Str
        }
        b'\'' => scan_char_or_lifetime(cur),
        _ => {
            cur.bump();
            TokKind::Punct
        }
    }
}

/// Does the cursor sit on a string/char prefix like `r"`, `r#"`, `br"`,
/// `b"`, `b'`, `c"`? (`r#ident` raw identifiers return false.)
fn starts_string(cur: &Cursor<'_>) -> bool {
    let mut i = 1; // past the leading r/b/c
    if cur.peek(0) == Some(b'b') && matches!(cur.peek(1), Some(b'r')) {
        i = 2;
    }
    let mut j = i;
    while cur.peek(j) == Some(b'#') {
        j += 1;
    }
    match cur.peek(j) {
        Some(b'"') => true,
        // b'x' byte char only for a bare `b'` prefix.
        Some(b'\'') => i == 1 && j == 1 && cur.peek(0) == Some(b'b'),
        _ => false,
    }
}

fn scan_prefixed_string(cur: &mut Cursor<'_>) -> TokKind {
    let raw = matches!(cur.peek(0), Some(b'r')) || matches!(cur.peek(1), Some(b'r'));
    cur.bump(); // prefix letter
    if cur.peek(0) == Some(b'r') {
        cur.bump(); // the r of br
    }
    if cur.peek(0) == Some(b'\'') {
        // b'x' byte literal.
        cur.bump();
        scan_char_body(cur);
        return TokKind::Char;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) == Some(b'"') {
        cur.bump();
    }
    if raw {
        // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
        while let Some(c) = cur.peek(0) {
            if c == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    cur.bump_n(1 + hashes);
                    break;
                }
            }
            cur.bump();
        }
    } else {
        scan_plain_string_body(cur);
    }
    TokKind::Str
}

/// Body of a `"…"` string, cursor past the opening quote.
fn scan_plain_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => cur.bump_n(2),
            b'"' => {
                cur.bump();
                break;
            }
            _ => cur.bump(),
        }
    }
}

/// Body of a `'…'` char literal, cursor past the opening quote.
fn scan_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => cur.bump_n(2),
            b'\'' | b'\n' => {
                cur.bump();
                break;
            }
            _ => cur.bump(),
        }
    }
}

fn scan_char_or_lifetime(cur: &mut Cursor<'_>) -> TokKind {
    // `'` then: escape → char; ident-chars then `'` → char ('a', '日');
    // ident-chars without closing quote → lifetime; any single byte
    // followed by `'` → char (e.g. `' '`).
    cur.bump(); // opening '
    match cur.peek(0) {
        Some(b'\\') => {
            scan_char_body(cur);
            TokKind::Char
        }
        Some(c) if is_ident_start(c) => {
            let mut n = 0usize;
            while cur.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if cur.peek(n) == Some(b'\'') {
                cur.bump_n(n + 1);
                TokKind::Char
            } else {
                cur.bump_n(n);
                TokKind::Lifetime
            }
        }
        Some(_) if cur.peek(1) == Some(b'\'') => {
            cur.bump_n(2);
            TokKind::Char
        }
        _ => TokKind::Punct,
    }
}

fn scan_number(cur: &mut Cursor<'_>) {
    // Digits, `_`, letters (hex digits and type suffixes), a single `.`
    // when followed by a digit, and a signed exponent. Mis-lexing exotic
    // numerics is harmless — no rule matches inside `Num` tokens.
    let mut prev = 0u8;
    while let Some(c) = cur.peek(0) {
        let take = c.is_ascii_alphanumeric()
            || c == b'_'
            || (c == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == b'+' || c == b'-')
                && matches!(prev, b'e' | b'E')
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit()));
        if !take {
            break;
        }
        prev = c;
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let toks = kinds("// x.unwrap()\nlet s = \"y.unwrap()\"; /* z.unwrap() */");
        let code_idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(code_idents, vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let toks = kinds(r##"r#"a " b"# /* outer /* inner */ still */ x"##);
        assert_eq!(toks.first().map(|t| t.0), Some(TokKind::Str));
        assert_eq!(toks.get(1).map(|t| t.0), Some(TokKind::BlockComment));
        assert_eq!(toks.get(2).map(|t| *t), Some((TokKind::Ident, "x")));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("'a 'static 'x' '\\n' b'q'");
        let ks: Vec<TokKind> = toks.iter().map(|t| t.0).collect();
        assert_eq!(
            ks,
            vec![
                TokKind::Lifetime,
                TokKind::Lifetime,
                TokKind::Char,
                TokKind::Char,
                TokKind::Char
            ]
        );
    }

    #[test]
    fn str_content_strips_quotes() {
        let src = r###"
            "plain" r"raw" r#"ha"sh"# b"bytes"
        "###;
        let contents: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.str_content().to_string())
            .collect();
        assert_eq!(contents, vec!["plain", "raw", "ha\"sh", "bytes"]);
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = kinds("1.5e-3 0..10 0xFF_u8");
        assert_eq!(toks.first().map(|t| *t), Some((TokKind::Num, "1.5e-3")));
        // `0..10` must lex as Num Punct Punct Num, not a malformed float.
        assert_eq!(toks.get(1).map(|t| *t), Some((TokKind::Num, "0")));
        assert_eq!(toks.get(2).map(|t| t.0), Some(TokKind::Punct));
    }

    #[test]
    fn total_on_garbage() {
        // Unterminated everything — must terminate without panicking.
        for s in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "'\\", "r#"] {
            let _ = lex(s);
        }
    }
}
