//! A pragmatic AST for the deepcat-lint analyzer.
//!
//! This is not a faithful Rust grammar — it is the minimal shape the
//! call-graph and dataflow passes need: items with names and spans,
//! statements with `let`-binding structure, and expressions with
//! call/method-call/field/path structure in **evaluation order**.
//! Anything the parser cannot classify lands in [`Expr::Group`], a
//! catch-all that preserves the evaluation order of its children so
//! dataflow walks never lose a lock acquisition or an RNG use.
//!
//! Totality contract: the parser ([`crate::parse`]) always produces a
//! `SourceFile` — possibly with [`Diag`]s, never a panic — for
//! arbitrary byte input (property-tested in `tests/proptest_lexer.rs`).

/// Parsed file: top-level items plus any parse diagnostics.
#[derive(Debug, Default)]
pub struct SourceFile {
    pub items: Vec<Item>,
    pub diags: Vec<Diag>,
}

/// A non-fatal parse diagnostic (the parser recovers and continues).
#[derive(Debug, Clone)]
pub struct Diag {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// One item, possibly nested (inside `mod`/`impl`/`trait`).
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Item carries `#[test]`/`#[cfg(test)]` (directly or via parent).
    pub is_test: bool,
    pub line: u32,
}

#[derive(Debug)]
pub enum ItemKind {
    Fn(Func),
    /// `impl`/`trait`/`mod` with nested items. `name` is the impl'd
    /// type (last path segment before `{`/`for`), trait name, or module
    /// name — enough for method-receiver resolution.
    Container {
        kind: ContainerKind,
        name: String,
        items: Vec<Item>,
    },
    /// Structs, enums, uses, consts, macros … — carried for spans only.
    Other,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerKind {
    Impl,
    Trait,
    Mod,
}

/// A function (free fn, method, or trait default method).
#[derive(Debug)]
pub struct Func {
    pub name: String,
    pub is_pub: bool,
    pub has_self: bool,
    pub params: Vec<Param>,
    /// Flattened return-type text (`"Result < StdRng , E >"` style,
    /// space-joined tokens); empty for `()`.
    pub ret: String,
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<Block>,
    pub line: u32,
    pub col: u32,
    /// Last line of the body (== `line` when bodyless) — used to map
    /// token-level findings back to their enclosing function.
    pub end_line: u32,
}

#[derive(Debug)]
pub struct Param {
    pub name: String,
    /// Flattened type text, space-joined tokens.
    pub ty: String,
}

#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init> else { … };` — `names` are the bound
    /// identifiers (tuple/struct patterns flattened).
    Let {
        names: Vec<String>,
        init: Option<Expr>,
        else_block: Option<Block>,
        line: u32,
    },
    Expr(Expr),
    Item(Item),
}

/// Expressions, evaluation-ordered. Position info lives on the nodes
/// the rules report on (calls, paths, macros).
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (turbofish stripped).
    Path {
        segs: Vec<String>,
        line: u32,
        col: u32,
    },
    Lit {
        line: u32,
    },
    /// `callee(args…)` where callee is usually a `Path`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
        col: u32,
    },
    /// `recv.method(args…)` (turbofish stripped).
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
        col: u32,
    },
    /// `name!(…)` / `path::name!(…)`; args are best-effort parsed
    /// comma-separated expressions.
    MacroCall {
        segs: Vec<String>,
        args: Vec<Expr>,
        line: u32,
        col: u32,
    },
    Field {
        recv: Box<Expr>,
        name: String,
    },
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
    },
    Block(Block),
    If {
        cond: Box<Expr>,
        then: Block,
        alt: Option<Box<Expr>>,
    },
    Match {
        scrutinee: Box<Expr>,
        /// Arm bodies (patterns/guards folded into Group children when
        /// they contain expressions worth walking).
        arms: Vec<Expr>,
    },
    /// `loop`/`while`/`for`; `head` is the condition / iterator expr.
    Loop {
        head: Option<Box<Expr>>,
        body: Block,
    },
    Closure {
        body: Box<Expr>,
        line: u32,
    },
    /// Evaluation-ordered catch-all: operators, tuples, references,
    /// struct literals, casts … — children in source order.
    Group(Vec<Expr>),
}

impl Expr {
    /// Line of the expression's head token, best-effort.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Closure { line, .. } => *line,
            Expr::Field { recv, .. } | Expr::Index { recv, .. } => recv.line(),
            Expr::Block(b) => b.stmts.first().map_or(0, stmt_line),
            Expr::If { cond, .. } => cond.line(),
            Expr::Match { scrutinee, .. } => scrutinee.line(),
            Expr::Loop { head, body } => head
                .as_ref()
                .map(|h| h.line())
                .unwrap_or_else(|| body.stmts.first().map_or(0, stmt_line)),
            Expr::Group(children) => children.first().map_or(0, Expr::line),
        }
    }
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Let { line, .. } => *line,
        Stmt::Expr(e) => e.line(),
        Stmt::Item(i) => i.line,
    }
}
