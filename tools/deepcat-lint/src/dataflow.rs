//! Intra-procedural dataflow over the [`crate::ast`]: walks every
//! function body in evaluation order tracking two value kinds —
//! **lock guards** (`Mutex`/`RwLock` `lock()`/`read()`/`write()`
//! results, with Rust's temporary-scope rules: let-bound guards live
//! to scope end or `drop(g)`, statement temporaries to the end of the
//! statement, `if`/`while` condition temporaries only through the
//! condition, `match` scrutinee temporaries through the whole match) —
//! and **RNG values** (seeded parameters/constructions vs fresh
//! entropy). The output is a [`FnFacts`] record per function: lock
//! acquisitions and call sites annotated with the held-lock set, plus
//! RNG taint facts. The cross-function rules live in
//! [`crate::callgraph`]; the two purely file-local rules
//! (`telemetry.session_scope`, direct `determinism.entropy_flow`) are
//! emitted here.

use crate::ast::{Block, ContainerKind, Expr, Func, Item, ItemKind, SourceFile, Stmt};
use crate::rules::{Finding, CORE_CRATES, TELEMETRY_FNS};
use std::collections::BTreeMap;

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `name(…)` / `qual::name(…)` — `qual` is the segment directly
    /// before the name, when present.
    Free { qual: Option<String>, name: String },
    /// `recv.name(…)`.
    Method { name: String },
}

impl Callee {
    pub fn name(&self) -> &str {
        match self {
            Callee::Free { name, .. } | Callee::Method { name } => name,
        }
    }
}

/// A call site, annotated with the locks held while it runs.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: Callee,
    pub line: u32,
    pub col: u32,
    pub held: Vec<String>,
    /// The site is itself a telemetry emission (leaf fact for
    /// `may_emit`, flagged directly by `concurrency.guard_across_emit`
    /// when a guard is held).
    pub is_emit: bool,
    /// `// LOCK-ORDER:` escape on/above the line — excluded from the
    /// lock-order graph.
    pub lock_escaped: bool,
    /// `// GUARD-EMIT:` escape — justified guard-across-emit.
    pub emit_escaped: bool,
}

/// A lock acquisition site.
#[derive(Clone, Debug)]
pub struct Acq {
    /// Stable lock identity, `krate/Owner.field`, `krate/accessor()`,
    /// or `krate/fn.local`.
    pub lock: String,
    pub line: u32,
    pub col: u32,
    /// `// LOCK-ORDER:` escape.
    pub escaped: bool,
    /// Locks already held when this one is acquired (order edges).
    pub held: Vec<String>,
}

/// One consumption of a (potentially unseeded) RNG value.
#[derive(Clone, Debug)]
pub struct RngUse {
    pub line: u32,
    pub col: u32,
    pub escaped: bool,
}

/// RNG-looking value obtained from a helper call; whether it is
/// actually unseeded is only known after the cross-function
/// `returns_unseeded` fixpoint in [`crate::callgraph`].
#[derive(Clone, Debug)]
pub struct PendingRng {
    pub callee: Callee,
    pub uses: Vec<RngUse>,
}

/// Everything the cross-function passes need to know about one fn.
#[derive(Debug)]
pub struct FnFacts {
    pub krate: String,
    pub file: String,
    /// Enclosing `impl`/`trait` name, for method/`Owner::fn` resolution.
    pub owner: Option<String>,
    /// Qualifiers that may precede this fn in a path: owner, file stem,
    /// enclosing inline-mod names, normalized crate name.
    pub quals: Vec<String>,
    pub name: String,
    pub is_pub: bool,
    pub has_self: bool,
    pub is_test: bool,
    pub is_bin: bool,
    pub line: u32,
    pub col: u32,
    pub end_line: u32,
    pub acquires: Vec<Acq>,
    pub calls: Vec<CallSite>,
    /// `// PANIC-SAFETY:` on/above the signature line (escape for
    /// `panic.reachable`).
    pub panic_escape: bool,
    /// Return type mentions an RNG type.
    pub returns_rng: bool,
    /// Body constructs an RNG from fresh entropy.
    pub constructs_unseeded: bool,
    pub pending_rng: Vec<PendingRng>,
}

/// RNG constructors that pull fresh OS entropy.
const UNSEEDED_CTORS: &[&str] = &["from_entropy", "from_os_rng"];
/// RNG constructors that derive from an explicit seed/state.
const SEEDED_CTORS: &[&str] = &["seed_from_u64", "from_seed", "from_state"];

/// Abstract value tracked through a function body.
#[derive(Clone, Debug)]
enum Value {
    Plain,
    /// A live lock guard for the named lock.
    Guard(String),
    /// An RNG value; `origin_line` is where fresh entropy entered.
    Rng {
        seeded: bool,
        origin_line: u32,
    },
    /// Result of a call we cannot classify locally.
    CallResult(Callee),
    /// RNG-suspect helper result, index into `pending_rng`.
    Pending(usize),
}

struct Held {
    lock: String,
    binding: Option<String>,
    scope: u32,
}

struct Binding {
    name: String,
    value: Value,
    scope: u32,
}

/// Analyze one parsed file: returns per-fn facts and pushes the
/// file-local findings (`telemetry.session_scope`,
/// direct `determinism.entropy_flow`) into `out`.
pub fn analyze_file(
    rel_path: &str,
    krate: &str,
    is_bin: bool,
    file: &SourceFile,
    comments: &BTreeMap<u32, String>,
    out: &mut Vec<Finding>,
) -> Vec<FnFacts> {
    let module = std::path::Path::new(rel_path)
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .filter(|s| !matches!(s.as_str(), "lib" | "main" | "mod"));
    let mut fns = Vec::new();
    let cx = FileScope {
        rel_path,
        krate,
        is_bin,
        comments,
        module,
    };
    collect_items(&cx, &file.items, None, &[], false, &mut fns, out);
    fns
}

struct FileScope<'a> {
    rel_path: &'a str,
    krate: &'a str,
    is_bin: bool,
    comments: &'a BTreeMap<u32, String>,
    module: Option<String>,
}

impl FileScope<'_> {
    /// Escape comment containing `marker` on `line` or two lines above
    /// (same window as the token rules).
    fn escape(&self, line: u32, marker: &str) -> bool {
        (line.saturating_sub(2)..=line)
            .any(|l| self.comments.get(&l).is_some_and(|c| c.contains(marker)))
    }
}

fn collect_items(
    cx: &FileScope<'_>,
    items: &[Item],
    owner: Option<&str>,
    mods: &[String],
    parent_test: bool,
    fns: &mut Vec<FnFacts>,
    out: &mut Vec<Finding>,
) {
    for item in items {
        let is_test = parent_test || item.is_test;
        match &item.kind {
            ItemKind::Fn(f) => {
                analyze_fn(cx, f, owner, mods, is_test, fns, out);
            }
            ItemKind::Container { kind, name, items } => match kind {
                ContainerKind::Impl | ContainerKind::Trait => {
                    collect_items(cx, items, Some(name.as_str()), mods, is_test, fns, out);
                }
                ContainerKind::Mod => {
                    let mut nested = mods.to_vec();
                    nested.push(name.clone());
                    collect_items(cx, items, owner, &nested, is_test, fns, out);
                }
            },
            ItemKind::Other => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_fn(
    cx: &FileScope<'_>,
    f: &Func,
    owner: Option<&str>,
    mods: &[String],
    is_test: bool,
    fns: &mut Vec<FnFacts>,
    out: &mut Vec<Finding>,
) {
    let mut quals: Vec<String> = Vec::new();
    if let Some(o) = owner {
        quals.push(o.to_string());
    }
    if let Some(m) = &cx.module {
        quals.push(m.clone());
    }
    quals.extend(mods.iter().cloned());
    quals.push(cx.krate.replace('-', "_"));

    let mut facts = FnFacts {
        krate: cx.krate.to_string(),
        file: cx.rel_path.to_string(),
        owner: owner.map(str::to_string),
        quals,
        name: f.name.clone(),
        is_pub: f.is_pub,
        has_self: f.has_self,
        is_test,
        is_bin: cx.is_bin,
        line: f.line,
        col: f.col,
        end_line: f.end_line,
        acquires: Vec::new(),
        calls: Vec::new(),
        panic_escape: cx.escape(f.line, "PANIC-SAFETY:"),
        returns_rng: f.ret.contains("Rng"),
        constructs_unseeded: false,
        pending_rng: Vec::new(),
    };

    let mut w = W {
        cx,
        owner,
        fn_name: &f.name,
        core: CORE_CRATES.contains(&cx.krate),
        is_test,
        facts: &mut facts,
        held: Vec::new(),
        bindings: Vec::new(),
        scopes: vec![0],
        next_scope: 0,
        mentions_ctx: false,
        opens_scope: false,
        emission_sites: Vec::new(),
        rng_uses: Vec::new(),
        nested: Vec::new(),
    };

    // Parameters seed the environment: RNG-typed params are the
    // sanctioned (seeded) way to receive randomness; a `SessionCtx`
    // param is what the session-scope rule keys on.
    for p in &f.params {
        if p.ty.contains("SessionCtx") {
            w.mentions_ctx = true;
        }
        let value = if p.ty.contains("Rng") {
            Value::Rng {
                seeded: true,
                origin_line: f.line,
            }
        } else {
            Value::Plain
        };
        w.bindings.push(Binding {
            name: p.name.clone(),
            value,
            scope: 0,
        });
    }
    if f.ret.contains("SessionCtx") {
        w.mentions_ctx = true;
    }

    if let Some(body) = &f.body {
        w.walk_block(body);
    }

    let mentions_ctx = w.mentions_ctx;
    let opens_scope = w.opens_scope;
    let emission_sites = std::mem::take(&mut w.emission_sites);
    let rng_uses = std::mem::take(&mut w.rng_uses);
    let nested: Vec<&Item> = std::mem::take(&mut w.nested);

    // `telemetry.session_scope` (AST re-implementation of the retired
    // token rule): a core-crate fn handling a SessionCtx must open its
    // scope before emitting.
    if w.core && !cx.is_bin && !is_test && mentions_ctx && !opens_scope {
        for (line, col) in &emission_sites {
            if cx.escape(*line, "SESSION-SCOPE:") {
                continue;
            }
            out.push(Finding {
                path: cx.rel_path.to_string(),
                line: *line,
                col: *col,
                rule: "telemetry.session_scope",
                message: "telemetry emitted in a function handling a SessionCtx without \
                          opening its scope (`telemetry::session_scope`/`with_session`); \
                          events lose session attribution — or justify with \
                          `// SESSION-SCOPE:`"
                    .into(),
                suggestion: None,
            });
        }
    }

    // Direct `determinism.entropy_flow`: a fresh-entropy RNG value
    // consumed in a core crate.
    if w.core && !is_test {
        for (u, origin) in &rng_uses {
            if u.escaped {
                continue;
            }
            out.push(Finding {
                path: cx.rel_path.to_string(),
                line: u.line,
                col: u.col,
                rule: "determinism.entropy_flow",
                message: format!(
                    "RNG value created from fresh entropy (line {origin}) is consumed \
                     here; core-crate randomness must flow from a seeded StdRng \
                     parameter or seed_from_u64/from_seed — or justify with \
                     `// ENTROPY-SAFETY:`"
                ),
                suggestion: Some("rand::rngs::StdRng::seed_from_u64"),
            });
        }
    }

    drop(w);
    fns.push(facts);

    // Nested `fn` items found inside the body.
    for item in nested {
        collect_items(
            cx,
            std::slice::from_ref(item),
            owner,
            mods,
            is_test,
            fns,
            out,
        );
    }
}

struct W<'a, 'b> {
    cx: &'a FileScope<'a>,
    owner: Option<&'a str>,
    fn_name: &'a str,
    core: bool,
    is_test: bool,
    facts: &'b mut FnFacts,
    held: Vec<Held>,
    bindings: Vec<Binding>,
    scopes: Vec<u32>,
    next_scope: u32,
    mentions_ctx: bool,
    opens_scope: bool,
    /// Token-rule-equivalent telemetry emission sites (for the
    /// session-scope rule).
    emission_sites: Vec<(u32, u32)>,
    /// Direct unseeded-RNG consumptions: (use, origin line).
    rng_uses: Vec<(RngUse, u32)>,
    /// Nested fn items deferred to the collector.
    nested: Vec<&'a Item>,
}

impl<'a> W<'a, '_> {
    fn enter(&mut self) -> u32 {
        self.next_scope += 1;
        self.scopes.push(self.next_scope);
        self.next_scope
    }

    fn exit(&mut self, id: u32) {
        while let Some(top) = self.scopes.pop() {
            if top == id {
                break;
            }
        }
        if self.scopes.is_empty() {
            self.scopes.push(0);
        }
        self.held.retain(|h| h.scope != id);
        self.bindings.retain(|b| b.scope != id);
    }

    fn cur_scope(&self) -> u32 {
        self.scopes.last().copied().unwrap_or(0)
    }

    fn held_ids(&self) -> Vec<String> {
        let mut ids = Vec::new();
        for h in &self.held {
            if !ids.contains(&h.lock) {
                ids.push(h.lock.clone());
            }
        }
        ids
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        self.bindings
            .iter()
            .rev()
            .find(|b| b.name == name)
            .map(|b| b.value.clone())
    }

    fn bind(&mut self, name: &str, value: Value) {
        let scope = self.cur_scope();
        self.bindings.push(Binding {
            name: name.to_string(),
            value,
            scope,
        });
    }

    // ---- blocks & statements -----------------------------------------

    fn walk_block(&mut self, b: &'a Block) {
        let scope = self.enter();
        for stmt in &b.stmts {
            self.walk_stmt(stmt);
        }
        self.exit(scope);
    }

    fn walk_stmt(&mut self, s: &'a Stmt) {
        match s {
            Stmt::Let {
                names,
                init,
                else_block,
                ..
            } => {
                let temp = self.enter();
                let val = match init {
                    Some(e) => self.walk_expr(e),
                    None => Value::Plain,
                };
                // A let-bound guard outlives the statement: re-home the
                // held entry from the statement temp-scope to the
                // enclosing block scope, keyed by the binding name.
                if let (Value::Guard(lock), Some(name)) = (&val, names.first()) {
                    let encl = self.scopes.iter().rev().nth(1).copied().unwrap_or(0);
                    if let Some(h) = self
                        .held
                        .iter_mut()
                        .rev()
                        .find(|h| h.scope == temp && h.lock == *lock)
                    {
                        h.scope = encl;
                        h.binding = Some(name.clone());
                    }
                }
                self.exit(temp);
                match (names.first(), names.len(), val) {
                    (Some(name), 1, Value::CallResult(callee)) if self.core && !self.is_test => {
                        let idx = self.facts.pending_rng.len();
                        self.facts.pending_rng.push(PendingRng {
                            callee,
                            uses: Vec::new(),
                        });
                        self.bind(name, Value::Pending(idx));
                    }
                    (Some(name), 1, v) => self.bind(name, v),
                    (_, _, _) => {
                        for n in names {
                            self.bind(n, Value::Plain);
                        }
                    }
                }
                if let Some(eb) = else_block {
                    self.walk_block(eb);
                }
            }
            Stmt::Expr(e) => {
                let temp = self.enter();
                self.walk_expr(e);
                self.exit(temp);
            }
            Stmt::Item(item) => {
                if matches!(item.kind, ItemKind::Fn(_) | ItemKind::Container { .. }) {
                    self.nested.push(item);
                }
            }
        }
    }

    // ---- expressions --------------------------------------------------

    fn walk_expr(&mut self, e: &'a Expr) -> Value {
        match e {
            Expr::Lit { .. } => Value::Plain,
            Expr::Path { segs, line, .. } => self.walk_path(segs, *line),
            Expr::Field { recv, .. } => {
                self.walk_expr(recv);
                Value::Plain
            }
            Expr::Index { recv, index } => {
                self.walk_expr(recv);
                self.walk_expr(index);
                Value::Plain
            }
            Expr::Group(children) => {
                let mut last = Value::Plain;
                let n = children.len();
                for c in children {
                    last = self.walk_expr(c);
                }
                if n == 1 {
                    last
                } else {
                    Value::Plain
                }
            }
            Expr::Block(b) => {
                self.walk_block(b);
                Value::Plain
            }
            Expr::If { cond, then, alt } => {
                // Rust drops condition temporaries before the branch
                // runs — scope them to the condition only.
                let temp = self.enter();
                self.walk_expr(cond);
                self.exit(temp);
                self.walk_block(then);
                if let Some(a) = alt {
                    self.walk_expr(a);
                }
                Value::Plain
            }
            Expr::Match { scrutinee, arms } => {
                // Scrutinee temporaries live through the whole match.
                let scope = self.enter();
                self.walk_expr(scrutinee);
                for arm in arms {
                    let t = self.enter();
                    self.walk_expr(arm);
                    self.exit(t);
                }
                self.exit(scope);
                Value::Plain
            }
            Expr::Loop { head, body } => {
                if let Some(h) = head {
                    let temp = self.enter();
                    self.walk_expr(h);
                    self.exit(temp);
                }
                self.walk_block(body);
                Value::Plain
            }
            Expr::Closure { body, .. } => {
                // Walked inline under the current guard set: scoped
                // closures (crossbeam::scope, with_session) run while
                // the creator's guards are live.
                let t = self.enter();
                self.walk_expr(body);
                self.exit(t);
                Value::Plain
            }
            Expr::MacroCall {
                segs,
                args,
                line,
                col,
            } => self.walk_macro(segs, args, *line, *col),
            Expr::Call {
                callee,
                args,
                line,
                col,
            } => self.walk_call(callee, args, *line, *col),
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
                col,
            } => self.walk_method(recv, method, args, *line, *col),
        }
    }

    fn walk_path(&mut self, segs: &[String], line: u32) -> Value {
        if segs.iter().any(|s| s.contains("SessionCtx")) {
            self.mentions_ctx = true;
        }
        let Some(last) = segs.last() else {
            return Value::Plain;
        };
        if matches!(last.as_str(), "session_scope" | "with_session") {
            self.opens_scope = true;
        }
        if last == "OsRng" {
            self.facts.constructs_unseeded = true;
            return Value::Rng {
                seeded: false,
                origin_line: line,
            };
        }
        if segs.len() == 1 {
            if let Some(v) = self.lookup(last) {
                return v;
            }
        }
        Value::Plain
    }

    /// Record entropy-relevant argument consumption.
    fn check_arg_values(&mut self, vals: &[(Value, u32, u32)]) {
        for (v, line, col) in vals {
            match v {
                Value::Rng {
                    seeded: false,
                    origin_line,
                } => {
                    let escaped = self.cx.escape(*line, "ENTROPY-SAFETY:");
                    self.rng_uses.push((
                        RngUse {
                            line: *line,
                            col: *col,
                            escaped,
                        },
                        *origin_line,
                    ));
                }
                Value::Pending(i) => {
                    let escaped = self.cx.escape(*line, "ENTROPY-SAFETY:");
                    if let Some(p) = self.facts.pending_rng.get_mut(*i) {
                        p.uses.push(RngUse {
                            line: *line,
                            col: *col,
                            escaped,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    fn walk_args(&mut self, args: &'a [Expr]) -> Vec<(Value, u32, u32)> {
        args.iter()
            .map(|a| {
                let line = a.line();
                (self.walk_expr(a), line, 0)
            })
            .collect()
    }

    fn walk_macro(&mut self, segs: &[String], args: &'a [Expr], line: u32, col: u32) -> Value {
        let name = segs.last().map(String::as_str).unwrap_or("");
        let qual_ok = segs.len() == 1
            || segs
                .first()
                .is_some_and(|s| s == "telemetry" || s == "crate");
        if matches!(name, "event" | "span") && qual_ok {
            self.emission_sites.push((line, col));
            self.facts.calls.push(CallSite {
                callee: Callee::Free {
                    qual: Some("telemetry".to_string()),
                    name: name.to_string(),
                },
                line,
                col,
                held: self.held_ids(),
                is_emit: true,
                lock_escaped: self.cx.escape(line, "LOCK-ORDER:"),
                emit_escaped: self.cx.escape(line, "GUARD-EMIT:"),
            });
        }
        let vals = self.walk_args(args);
        self.check_arg_values(&vals);
        Value::Plain
    }

    fn walk_call(&mut self, callee: &'a Expr, args: &'a [Expr], line: u32, col: u32) -> Value {
        let Expr::Path { segs, .. } = callee else {
            // Calling a closure/field value: walk everything, classify
            // nothing.
            self.walk_expr(callee);
            let vals = self.walk_args(args);
            self.check_arg_values(&vals);
            return Value::Plain;
        };
        if segs.iter().any(|s| s.contains("SessionCtx")) {
            self.mentions_ctx = true;
        }
        let name = segs.last().map(String::as_str).unwrap_or("");
        let qual = if segs.len() >= 2 {
            segs.get(segs.len() - 2).cloned()
        } else {
            None
        };

        if matches!(name, "session_scope" | "with_session") {
            self.opens_scope = true;
        }

        // RNG constructors / sources.
        if UNSEEDED_CTORS.contains(&name) || name == "thread_rng" {
            let vals = self.walk_args(args);
            self.check_arg_values(&vals);
            self.facts.constructs_unseeded = true;
            return Value::Rng {
                seeded: false,
                origin_line: line,
            };
        }
        if SEEDED_CTORS.contains(&name) {
            let vals = self.walk_args(args);
            self.check_arg_values(&vals);
            return Value::Rng {
                seeded: true,
                origin_line: line,
            };
        }
        if name == "random" && segs.iter().any(|s| s == "rand") {
            // `rand::random()` consumes fresh entropy right here.
            if self.core && !self.is_test {
                let escaped = self.cx.escape(line, "ENTROPY-SAFETY:");
                self.rng_uses.push((RngUse { line, col, escaped }, line));
            }
            let vals = self.walk_args(args);
            self.check_arg_values(&vals);
            return Value::Plain;
        }

        // `drop(g)` / `mem::drop(g)` releases a let-bound guard early.
        if name == "drop" {
            if let Some(Expr::Path { segs: aseg, .. }) = args.first() {
                if aseg.len() == 1 {
                    if let Some(b) = aseg.first() {
                        self.held.retain(|h| h.binding.as_deref() != Some(b));
                        let plain = Value::Plain;
                        if let Some(slot) = self.bindings.iter_mut().rev().find(|x| x.name == *b) {
                            slot.value = plain;
                        }
                        return Value::Plain;
                    }
                }
            }
            let vals = self.walk_args(args);
            self.check_arg_values(&vals);
            return Value::Plain;
        }

        // Telemetry emission site (token-rule-equivalent shapes).
        let telemetry_qualified =
            qual.as_deref() == Some("telemetry") && TELEMETRY_FNS.contains(&name);
        let bare_span = segs.len() == 1 && name == "span";
        let crate_internal = self.cx.krate == "telemetry"
            && matches!(
                qual.as_deref(),
                Some("crate") | Some("self") | Some("super")
            )
            && TELEMETRY_FNS.contains(&name);
        let is_emit = telemetry_qualified || bare_span || crate_internal;
        if telemetry_qualified || bare_span {
            self.emission_sites.push((line, col));
        }

        let vals = self.walk_args(args);
        self.check_arg_values(&vals);

        let callee = Callee::Free {
            qual,
            name: name.to_string(),
        };
        self.facts.calls.push(CallSite {
            callee: callee.clone(),
            line,
            col,
            held: self.held_ids(),
            is_emit,
            lock_escaped: self.cx.escape(line, "LOCK-ORDER:"),
            emit_escaped: self.cx.escape(line, "GUARD-EMIT:"),
        });
        Value::CallResult(callee)
    }

    fn walk_method(
        &mut self,
        recv: &'a Expr,
        method: &str,
        args: &'a [Expr],
        line: u32,
        col: u32,
    ) -> Value {
        let recv_val = self.walk_expr(recv);

        // Lock acquisition: `.lock()` / `.read()` / `.write()` with no
        // arguments (io read/write take buffers, so they don't match).
        if matches!(method, "lock" | "read" | "write")
            && args.is_empty()
            && !matches!(recv_val, Value::Guard(_))
        {
            let lock = self.lock_id(recv);
            let escaped = self.cx.escape(line, "LOCK-ORDER:");
            let held = self.held_ids();
            self.facts.acquires.push(Acq {
                lock: lock.clone(),
                line,
                col,
                escaped,
                held,
            });
            let scope = self.cur_scope();
            self.held.push(Held {
                lock: lock.clone(),
                binding: None,
                scope,
            });
            return Value::Guard(lock);
        }

        let vals = self.walk_args(args);
        self.check_arg_values(&vals);

        match recv_val {
            Value::Guard(lock) => {
                // `m.lock().expect("…")` (std Mutex) keeps the guard;
                // any other method on a guard is opaque — we do not
                // resolve it into the workspace (it usually targets
                // the guarded *value*, e.g. `self.writer.lock().flush()`
                // hits `io::Write`, not a workspace fn).
                if matches!(method, "expect" | "unwrap") {
                    Value::Guard(lock)
                } else {
                    Value::Plain
                }
            }
            Value::Rng {
                seeded: false,
                origin_line,
            } => {
                if self.core && !self.is_test {
                    let escaped = self.cx.escape(line, "ENTROPY-SAFETY:");
                    self.rng_uses
                        .push((RngUse { line, col, escaped }, origin_line));
                }
                if method == "clone" {
                    Value::Rng {
                        seeded: false,
                        origin_line,
                    }
                } else {
                    Value::Plain
                }
            }
            Value::Rng {
                seeded: true,
                origin_line,
            } => {
                if method == "clone" {
                    Value::Rng {
                        seeded: true,
                        origin_line,
                    }
                } else {
                    Value::Plain
                }
            }
            Value::Pending(idx) => {
                if self.core && !self.is_test {
                    let escaped = self.cx.escape(line, "ENTROPY-SAFETY:");
                    if let Some(p) = self.facts.pending_rng.get_mut(idx) {
                        p.uses.push(RngUse { line, col, escaped });
                    }
                }
                if method == "clone" {
                    Value::Pending(idx)
                } else {
                    Value::Plain
                }
            }
            Value::Plain | Value::CallResult(_) => {
                if let Value::CallResult(callee) = &recv_val {
                    // `helper().gen()` — RNG-suspect chain; resolved
                    // against `returns_unseeded` later.
                    if self.core && !self.is_test {
                        let escaped = self.cx.escape(line, "ENTROPY-SAFETY:");
                        self.facts.pending_rng.push(PendingRng {
                            callee: callee.clone(),
                            uses: vec![RngUse { line, col, escaped }],
                        });
                    }
                }
                let callee = Callee::Method {
                    name: method.to_string(),
                };
                self.facts.calls.push(CallSite {
                    callee: callee.clone(),
                    line,
                    col,
                    held: self.held_ids(),
                    is_emit: false,
                    lock_escaped: self.cx.escape(line, "LOCK-ORDER:"),
                    emit_escaped: self.cx.escape(line, "GUARD-EMIT:"),
                });
                Value::CallResult(callee)
            }
        }
    }

    // ---- lock identity ------------------------------------------------

    /// Stable identity for the lock behind `recv.lock()`. Field
    /// accesses rooted at `self` name the owner type; results of
    /// accessor calls name the accessor; locals fall back to
    /// `fn.binding`. Indexing is transparent (`slots[i].lock()` is the
    /// `slots` pool).
    fn lock_id(&self, recv: &Expr) -> String {
        let krate = self.cx.krate;
        match lock_root(recv) {
            Root::SelfField(f) => {
                let owner = self.owner.unwrap_or("Self");
                format!("{krate}/{owner}.{f}")
            }
            Root::Local(l) => format!("{krate}/{}.{l}", self.fn_name),
            Root::Static(s) => format!("{krate}/{s}"),
            Root::FnResult(f) => format!("{krate}/{f}()"),
            Root::Opaque => format!("{krate}/{}.<expr>", self.fn_name),
        }
    }
}

enum Root {
    SelfField(String),
    Local(String),
    Static(String),
    FnResult(String),
    Opaque,
}

fn lock_root(e: &Expr) -> Root {
    match e {
        Expr::Path { segs, .. } => match segs.len() {
            0 => Root::Opaque,
            1 => segs
                .first()
                .map_or(Root::Opaque, |s| Root::Local(s.clone())),
            _ => segs
                .last()
                .map_or(Root::Opaque, |s| Root::Static(s.clone())),
        },
        Expr::Field { recv, name } => {
            if is_self_rooted(recv) {
                Root::SelfField(name.clone())
            } else {
                Root::Local(name.clone())
            }
        }
        Expr::Index { recv, .. } => lock_root(recv),
        Expr::MethodCall { recv, .. } => lock_root(recv),
        Expr::Call { callee, .. } => match &**callee {
            Expr::Path { segs, .. } => segs
                .last()
                .map_or(Root::Opaque, |s| Root::FnResult(s.clone())),
            _ => Root::Opaque,
        },
        Expr::Group(children) if children.len() == 1 => {
            children.first().map_or(Root::Opaque, lock_root)
        }
        _ => Root::Opaque,
    }
}

fn is_self_rooted(e: &Expr) -> bool {
    match e {
        Expr::Path { segs, .. } => segs.len() == 1 && segs.first().is_some_and(|s| s == "self"),
        Expr::Field { recv, .. } | Expr::Index { recv, .. } => is_self_rooted(recv),
        Expr::Group(children) if children.len() == 1 => {
            children.first().is_some_and(|c| is_self_rooted(c))
        }
        _ => false,
    }
}
