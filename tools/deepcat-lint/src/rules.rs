//! The lint rule engine: walks a file's token stream and reports
//! invariant violations. Four families (see DESIGN.md "Static analysis
//! & invariants"):
//!
//! * `determinism.*` — wall clocks, `thread_rng`, hash-ordered
//!   collections in core crates;
//! * `panic.*` — `unwrap`/`expect`/`panic!`/slice indexing in library
//!   code;
//! * `numeric.*` — NaN-unsafe `partial_cmp().unwrap()` and lossy `as`
//!   casts in math kernels;
//! * `telemetry.*` — metric/event names must be `family.snake_case`
//!   and registered in `crates/telemetry/events.toml`;
//!
//! plus `safety.undocumented_unsafe` for `unsafe` without a
//! `// SAFETY:` comment.
//!
//! The AST/call-graph families (`concurrency.*`, `panic.reachable`,
//! `determinism.entropy_flow`, `telemetry.session_scope`) live in
//! [`crate::dataflow`] and [`crate::callgraph`]; this module's
//! [`FileCx`] (comment map, test ranges) is shared with them.
//!
//! Escape hatches are deliberate and auditable: a justified
//! `// PANIC-SAFETY:` comment (for `expect`/explicit panics), a
//! `// CAST-SAFETY:` comment (for lossy casts), a `// SAFETY:` comment
//! (for `unsafe`), a `// SESSION-SCOPE:` comment (for deliberately
//! unscoped emits), or a reasoned entry in `lint.toml`.

use crate::lexer::{Tok, TokKind};
use crate::manifest::Manifest;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose results must be bit-reproducible under a fixed seed.
/// `telemetry` is exempt (sinks own the sanctioned wall clock);
/// `bench`/`deepcat-lint` are tooling.
pub(crate) const CORE_CRATES: &[&str] = &["rl", "spark-sim", "surrogate", "tensor-nn", "deepcat"];

/// Crates holding numeric kernels where lossy casts are flagged.
const MATH_CRATES: &[&str] = &["surrogate", "tensor-nn", "rl"];

/// Telemetry registration/emission functions whose first argument is a
/// metric or event name literal.
pub(crate) const TELEMETRY_FNS: &[&str] = &[
    "inc",
    "set_gauge",
    "observe",
    "observe_duration",
    "counter",
    "gauge",
    "histogram",
    "sketch",
    "observe_sketch",
    "span",
    "emit",
];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// Rule id, `family.check`.
    pub rule: &'static str,
    pub message: String,
    /// Mechanical replacement hint for `--json` consumers, when known.
    pub suggestion: Option<&'static str>,
}

/// Everything the rule engine knows about the file being linted.
pub(crate) struct FileCx<'a> {
    pub(crate) path: &'a str,
    pub(crate) krate: &'a str,
    pub(crate) is_bin: bool,
    pub(crate) code: Vec<Tok<'a>>,
    /// Per-line comment text, for `SAFETY:`-style escape comments.
    pub(crate) comments: BTreeMap<u32, String>,
    /// `code`-index ranges lying inside `#[test]`/`#[cfg(test)]` items.
    pub(crate) test_ranges: Vec<(usize, usize)>,
    /// `code` indices inside attributes (`#[…]` / `#![…]`).
    pub(crate) in_attr: Vec<bool>,
}

/// Names found at telemetry call sites, for the manifest cross-check
/// and `--emit-manifest`.
#[derive(Debug, Default)]
pub struct NamesSeen {
    pub names: BTreeSet<String>,
}

/// Run the token-level rule families over a prepared [`FileCx`]. The
/// AST-level families run separately (see [`crate::lint_source`] for
/// the combined per-file entry point).
pub(crate) fn token_rules(
    cx: &FileCx<'_>,
    manifest: &Manifest,
    seen: &mut NamesSeen,
    out: &mut Vec<Finding>,
) {
    determinism_rules(cx, out);
    panic_rules(cx, out);
    numeric_rules(cx, out);
    safety_rules(cx, out);
    telemetry_rules(cx, manifest, seen, out);
}

pub(crate) fn build_cx<'a>(rel_path: &'a str, toks: &[Tok<'a>]) -> FileCx<'a> {
    let krate = rel_path
        .strip_prefix("crates/")
        .or_else(|| rel_path.strip_prefix("tools/"))
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs");

    let mut code = Vec::new();
    let mut comments: BTreeMap<u32, String> = BTreeMap::new();
    for t in toks {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                let slot = comments.entry(t.line).or_default();
                slot.push_str(t.text);
                slot.push(' ');
            }
            _ => code.push(*t),
        }
    }

    let in_attr = mark_attrs(&code);
    let test_ranges = mark_test_ranges(&code, &in_attr);
    FileCx {
        path: rel_path,
        krate,
        is_bin,
        code,
        comments,
        test_ranges,
        in_attr,
    }
}

/// Mark every code-token index that sits inside `#[…]` or `#![…]`.
fn mark_attrs(code: &[Tok<'_>]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if is_punct(code.get(i), "#") {
            let open = if is_punct(code.get(i + 1), "[") {
                Some(i + 1)
            } else if is_punct(code.get(i + 1), "!") && is_punct(code.get(i + 2), "[") {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = open {
                let close = matching_bracket(code, open, "[", "]");
                for flag in flags.iter_mut().take(close.min(code.len() - 1) + 1).skip(i) {
                    *flag = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    flags
}

/// Find code-index ranges belonging to `#[test]` / `#[cfg(test)]`
/// items: the attribute plus the following item up to its closing
/// brace. Anything in those ranges is test code, where panic rules do
/// not apply (a failing assertion is the *point* of a test).
fn mark_test_ranges(code: &[Tok<'_>], in_attr: &[bool]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if is_punct(code.get(i), "#") && is_punct(code.get(i + 1), "[") {
            let close = matching_bracket(code, i + 1, "[", "]");
            let has_test = code
                .get(i..=close.min(code.len().saturating_sub(1)))
                .unwrap_or(&[])
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test");
            if has_test {
                // Skip any further attributes, then the item header, to
                // the item's opening brace; the range ends at its match.
                let mut j = close + 1;
                while is_punct(code.get(j), "#") && is_punct(code.get(j + 1), "[") {
                    j = matching_bracket(code, j + 1, "[", "]") + 1;
                }
                while j < code.len() && !is_punct(code.get(j), "{") {
                    // An item ending in `;` (e.g. `mod tests;`) has no body.
                    if is_punct(code.get(j), ";") {
                        break;
                    }
                    j += 1;
                }
                if is_punct(code.get(j), "{") {
                    let end = matching_bracket(code, j, "{", "}");
                    ranges.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        let _ = in_attr;
        i += 1;
    }
    ranges
}

/// Index of the bracket matching `code[open]`, or `code.len() - 1` if
/// unbalanced (degrades gracefully on malformed input).
fn matching_bracket(code: &[Tok<'_>], open: usize, lhs: &str, rhs: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = code.get(i) {
        if t.kind == TokKind::Punct {
            if t.text == lhs {
                depth += 1;
            } else if t.text == rhs {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

fn is_punct(t: Option<&Tok<'_>>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

fn is_ident(t: Option<&Tok<'_>>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
}

impl FileCx<'_> {
    pub(crate) fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Is there an escape comment containing `marker` on the token's
    /// line or the two lines above (to cover multi-line call chains)?
    pub(crate) fn escape_comment(&self, line: u32, marker: &str) -> bool {
        (line.saturating_sub(2)..=line)
            .any(|l| self.comments.get(&l).is_some_and(|c| c.contains(marker)))
    }

    fn finding(
        &self,
        t: &Tok<'_>,
        rule: &'static str,
        message: String,
        suggestion: Option<&'static str>,
    ) -> Finding {
        Finding {
            path: self.path.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
            suggestion,
        }
    }
}

// ---- determinism ------------------------------------------------------

fn determinism_rules(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    if !CORE_CRATES.contains(&cx.krate) {
        return;
    }
    for (i, t) in cx.code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "thread_rng" => out.push(cx.finding(
                t,
                "determinism.thread_rng",
                "OS-entropy RNG in a core crate; seed a StdRng and thread it through".into(),
                Some("rand::rngs::StdRng::seed_from_u64"),
            )),
            "Instant" | "SystemTime" if follows_now(&cx.code, i) => out.push(cx.finding(
                t,
                "determinism.wall_clock",
                format!(
                    "{}::now() in a core crate leaks wall-clock time into results; \
                     use telemetry::Stopwatch (freezable for reproducible runs)",
                    t.text
                ),
                Some("telemetry::Stopwatch::start"),
            )),
            "HashMap" | "HashSet" if !cx.in_test(i) => out.push(cx.finding(
                t,
                "determinism.hash_collections",
                format!(
                    "{} iteration order is randomized per process; any traversal that \
                     reaches results or logs diverges across runs",
                    t.text
                ),
                Some("std::collections::BTreeMap / BTreeSet"),
            )),
            _ => {}
        }
    }
}

/// `Instant` / `SystemTime` followed by `::now` (possibly `::now()`).
fn follows_now(code: &[Tok<'_>], i: usize) -> bool {
    is_punct(code.get(i + 1), ":")
        && is_punct(code.get(i + 2), ":")
        && is_ident(code.get(i + 3), "now")
}

// ---- panic-freedom ----------------------------------------------------

fn panic_rules(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    if cx.is_bin {
        // Binaries may exit loudly; the library invariant is what the
        // tuning service depends on.
        return;
    }
    for (i, t) in cx.code.iter().enumerate() {
        if cx.in_test(i) {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" => {
                if is_punct(cx.code.get(i.wrapping_sub(1)), ".")
                    && is_punct(cx.code.get(i + 1), "(")
                    && is_punct(cx.code.get(i + 2), ")")
                {
                    out.push(
                        cx.finding(
                            t,
                            "panic.unwrap",
                            "unwrap() in library code turns a recoverable condition into a crash; \
                         return a Result or use a justified expect"
                                .into(),
                            Some("expect(\"…\") with a // PANIC-SAFETY: comment, or `?`"),
                        ),
                    );
                }
            }
            TokKind::Ident if t.text == "expect" => {
                if is_punct(cx.code.get(i.wrapping_sub(1)), ".")
                    && is_punct(cx.code.get(i + 1), "(")
                    && !cx.escape_comment(t.line, "PANIC-SAFETY:")
                {
                    out.push(
                        cx.finding(
                            t,
                            "panic.expect",
                            "expect() without a `// PANIC-SAFETY:` comment stating why the value \
                         is always present"
                                .into(),
                            None,
                        ),
                    );
                }
            }
            TokKind::Ident
                if matches!(t.text, "panic" | "unreachable" | "todo" | "unimplemented") =>
            {
                if is_punct(cx.code.get(i + 1), "!") && !cx.escape_comment(t.line, "PANIC-SAFETY:")
                {
                    out.push(cx.finding(
                        t,
                        "panic.explicit",
                        format!(
                            "{}! in library code without a `// PANIC-SAFETY:` justification",
                            t.text
                        ),
                        None,
                    ));
                }
            }
            TokKind::Punct if t.text == "[" => {
                let indexing = !cx.in_attr.get(i).copied().unwrap_or(false)
                    && cx.code.get(i.wrapping_sub(1)).is_some_and(|p| {
                        p.kind == TokKind::Ident && !is_keyword_before_bracket(p.text)
                            || (p.kind == TokKind::Punct && (p.text == ")" || p.text == "]"))
                    });
                if indexing && !cx.escape_comment(t.line, "PANIC-SAFETY:") {
                    out.push(
                        cx.finding(
                            t,
                            "panic.index",
                            "slice/array indexing panics on out-of-bounds; use get()/get_mut() or \
                         justify with // PANIC-SAFETY: (math kernels are typically allowlisted \
                         per file in lint.toml)"
                                .into(),
                            Some(".get(i)"),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `break [x]`, `in [..]`, …).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "continue" | "in" | "else" | "match" | "if" | "while" | "loop" | "mut"
    )
}

// ---- numeric safety ---------------------------------------------------

fn numeric_rules(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in cx.code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // NaN-unsafe comparison applies everywhere, tests included: one
        // NaN candidate turns the sort into a panic.
        if t.text == "partial_cmp" && is_punct(cx.code.get(i + 1), "(") {
            let close = matching_bracket(&cx.code, i + 1, "(", ")");
            let unwraps = is_punct(cx.code.get(close + 1), ".")
                && cx.code.get(close + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && (n.text == "unwrap" || n.text == "expect")
                });
            if unwraps {
                out.push(
                    cx.finding(
                        t,
                        "numeric.partial_cmp_unwrap",
                        "partial_cmp().unwrap() panics on NaN — one bad config sample becomes a \
                     crash instead of a low reward; compare with f64::total_cmp"
                            .into(),
                        Some("a.total_cmp(b)"),
                    ),
                );
            }
        }
        if t.text == "as"
            && MATH_CRATES.contains(&cx.krate)
            && !cx.in_test(i)
            && cx.code.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident
                    && matches!(n.text, "f32" | "i8" | "i16" | "i32" | "u8" | "u16" | "u32")
            })
            && !cx.escape_comment(t.line, "CAST-SAFETY:")
        {
            out.push(
                cx.finding(
                    t,
                    "numeric.lossy_cast",
                    "narrowing `as` cast in a math kernel silently truncates/saturates; use \
                 try_from/checked conversion or justify with // CAST-SAFETY:"
                        .into(),
                    Some("TryFrom::try_from"),
                ),
            );
        }
    }
}

// ---- unsafe audit -----------------------------------------------------

fn safety_rules(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    for t in &cx.code {
        if t.kind == TokKind::Ident && t.text == "unsafe" && !cx.escape_comment(t.line, "SAFETY:") {
            out.push(
                cx.finding(
                    t,
                    "safety.undocumented_unsafe",
                    "unsafe without a `// SAFETY:` comment stating the invariant it relies on \
                 (the workspace also sets forbid(unsafe_code) via [workspace.lints])"
                        .into(),
                    None,
                ),
            );
        }
    }
}

// ---- telemetry naming -------------------------------------------------

fn telemetry_rules(
    cx: &FileCx<'_>,
    manifest: &Manifest,
    seen: &mut NamesSeen,
    out: &mut Vec<Finding>,
) {
    for (i, t) in cx.code.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "telemetry") {
            continue;
        }
        if !(is_punct(cx.code.get(i + 1), ":") && is_punct(cx.code.get(i + 2), ":")) {
            continue;
        }
        let Some(f) = cx.code.get(i + 3) else {
            continue;
        };
        if f.kind != TokKind::Ident {
            continue;
        }
        // `telemetry::fn("name", …)` or `telemetry::macro!("name", …)`.
        let arg_at = if TELEMETRY_FNS.contains(&f.text) && is_punct(cx.code.get(i + 4), "(") {
            i + 5
        } else if matches!(f.text, "event" | "span")
            && is_punct(cx.code.get(i + 4), "!")
            && is_punct(cx.code.get(i + 5), "(")
        {
            i + 6
        } else {
            continue;
        };
        check_telemetry_name(cx, manifest, seen, out, i, arg_at);
    }

    // Bare `span!("name", …)` / `span("name", …)` call sites: the span
    // macro is `#[macro_export]` and the guard constructor can be
    // imported, so emission points need not mention `telemetry::`.
    for (i, t) in cx.code.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "span") {
            continue;
        }
        // Skip qualified paths (`telemetry::span`, handled above) and
        // method calls (`guard.span(…)` is not a telemetry emission).
        if i > 0 && (is_punct(cx.code.get(i - 1), ".") || is_punct(cx.code.get(i - 1), ":")) {
            continue;
        }
        let arg_at = if is_punct(cx.code.get(i + 1), "!") && is_punct(cx.code.get(i + 2), "(") {
            i + 3
        } else if is_punct(cx.code.get(i + 1), "(") {
            i + 2
        } else {
            continue;
        };
        check_telemetry_name(cx, manifest, seen, out, i, arg_at);
    }
}

/// Validate the string literal at `arg_at` (the first argument of the
/// telemetry call starting at `call_idx`) against the name-format rule
/// and the `events.toml` manifest.
fn check_telemetry_name(
    cx: &FileCx<'_>,
    manifest: &Manifest,
    seen: &mut NamesSeen,
    out: &mut Vec<Finding>,
    call_idx: usize,
    arg_at: usize,
) {
    let Some(name_tok) = cx.code.get(arg_at) else {
        return;
    };
    if name_tok.kind != TokKind::Str {
        // Name passed through a variable/const — out of lexical reach.
        return;
    }
    let name = name_tok.str_content().to_string();
    let in_test = cx.in_test(call_idx);
    if !valid_metric_name(&name) {
        out.push(cx.finding(
            name_tok,
            "telemetry.name_format",
            format!("telemetry name \"{name}\" must be dotted `family.snake_case`"),
            None,
        ));
        return;
    }
    if in_test {
        // Test-local scratch names stay out of the manifest.
        return;
    }
    seen.names.insert(name.clone());
    if !manifest.contains(&name) {
        out.push(cx.finding(
            name_tok,
            "telemetry.manifest",
            format!(
                "telemetry name \"{name}\" is not registered in \
                 crates/telemetry/events.toml (regenerate with --emit-manifest)"
            ),
            None,
        ));
    }
}

/// `family.snake_case` with at least two dotted segments, each
/// `[a-z][a-z0-9_]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            let mut chars = s.chars();
            chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}
