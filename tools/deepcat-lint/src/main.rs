//! CLI for the workspace lint gate. Exit codes: 0 clean, 1 findings
//! (or stale allowlist entries), 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-lint [--format text|json|sarif] [--json] [--emit-manifest]\n\
         \x20                 [--no-allowlist] [--root DIR] [FILE...]\n\
         \n\
         Lints crates/*/src and tools/*/src against the DeepCAT invariants:\n\
         determinism (incl. entropy dataflow), panic-freedom (incl. call-graph\n\
         reachability), numeric safety, telemetry naming/session scoping, and\n\
         concurrency (lock ordering, guards held across telemetry emission).\n\
         Allowlist: lint.toml (repo root). Name schema: crates/telemetry/events.toml."
    );
    ExitCode::from(2)
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut emit_manifest = false;
    let mut use_allowlist = true;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match argv.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    _ => return usage(),
                };
            }
            "--emit-manifest" => emit_manifest = true,
            "--no-allowlist" => use_allowlist = false,
            "--root" => {
                let Some(dir) = argv.next() else {
                    return usage();
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return usage(),
            flag if flag.starts_with('-') => return usage(),
            file => files.push(PathBuf::from(file)),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| deepcat_lint::find_root(&cwd)) else {
        eprintln!("deepcat-lint: cannot locate repo root (no lint.toml / workspace Cargo.toml)");
        return ExitCode::from(2);
    };

    let report = match deepcat_lint::run(&root, &files, use_allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("deepcat-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if emit_manifest {
        let existing = std::fs::read_to_string(root.join("crates/telemetry/events.toml"))
            .ok()
            .and_then(|src| deepcat_lint::Manifest::parse(&src).ok())
            .unwrap_or_default();
        print!(
            "{}",
            deepcat_lint::manifest::render_manifest(
                report.names.iter().map(String::as_str),
                &existing
            )
        );
        return ExitCode::SUCCESS;
    }

    match format {
        Format::Json => println!("{}", deepcat_lint::render_json(&report)),
        Format::Sarif => println!("{}", deepcat_lint::render_sarif(&report)),
        Format::Text => print!("{}", deepcat_lint::render_text(&report)),
    }

    if report.findings.is_empty() && report.stale_allows.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
