//! The `lint.toml` allowlist: the only way to ship a finding the rules
//! object to. Every entry names a rule (exact id or family prefix), a
//! path prefix, and a **mandatory** one-line reason — an entry without
//! a reason is itself a fatal configuration error, so the audit trail
//! cannot rot into a bare suppression list.

use crate::rules::Finding;
use crate::toml_lite;

#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule id (`panic.index`) or family prefix (`panic`).
    pub rule: String,
    /// Repo-relative path prefix (file or directory).
    pub path: String,
    pub reason: String,
    /// Set while applying findings; unused entries are reported.
    pub hits: usize,
}

#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (table, entry) in toml_lite::parse(src)? {
            if table != "allow" {
                return Err(format!("lint.toml: unknown table [[{table}]]"));
            }
            let get = |key: &str| {
                entry
                    .get(key)
                    .map(str::to_string)
                    .ok_or_else(|| format!("lint.toml: [[allow]] entry missing `{key}`"))
            };
            let e = AllowEntry {
                rule: get("rule")?,
                path: get("path")?,
                reason: get("reason")?,
                hits: 0,
            };
            if e.reason.trim().len() < 10 {
                return Err(format!(
                    "lint.toml: allow entry for {} / {} needs a real one-line justification \
                     (got \"{}\")",
                    e.rule, e.path, e.reason
                ));
            }
            entries.push(e);
        }
        Ok(Self { entries })
    }

    /// Split findings into (kept, suppressed), recording hits. The
    /// suppressed findings are returned (not just counted) so the
    /// report can show per-rule totals including allowlisted sites.
    pub fn apply(&mut self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        'next: for f in findings {
            for e in &mut self.entries {
                let rule_match = f.rule == e.rule
                    || f.rule
                        .strip_prefix(e.rule.as_str())
                        .is_some_and(|rest| rest.starts_with('.'));
                if rule_match && f.path.starts_with(e.path.as_str()) {
                    e.hits += 1;
                    suppressed.push(f);
                    continue 'next;
                }
            }
            kept.push(f);
        }
        (kept, suppressed)
    }

    /// Entries that matched nothing — stale suppressions to clean up.
    pub fn unused(&self) -> impl Iterator<Item = &AllowEntry> {
        self.entries.iter().filter(|e| e.hits == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            path: path.to_string(),
            line: 1,
            col: 1,
            rule,
            message: String::new(),
            suggestion: None,
        }
    }

    #[test]
    fn family_prefix_and_path_prefix_match() {
        let mut a = Allowlist::parse(
            "[[allow]]\nrule = \"panic\"\npath = \"crates/tensor-nn\"\n\
             reason = \"dense kernels, bounds checked at construction\"\n",
        )
        .expect("parses");
        let (kept, n) = a.apply(vec![
            finding("panic.index", "crates/tensor-nn/src/matrix.rs"),
            finding("panic.unwrap", "crates/tensor-nn/src/mlp.rs"),
            finding("panic.index", "crates/rl/src/per.rs"),
            // `panic2.x` must not match the `panic` family prefix.
            finding("panic2.x", "crates/tensor-nn/src/matrix.rs"),
        ]);
        assert_eq!(n.len(), 2);
        assert_eq!(kept.len(), 2);
        assert!(a.unused().next().is_none());
    }

    #[test]
    fn reason_is_mandatory_and_substantive() {
        assert!(Allowlist::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n").is_err());
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"ok\"\n").is_err()
        );
    }
}
