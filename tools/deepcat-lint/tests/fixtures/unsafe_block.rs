// Fixture: the safety family must flag an unsafe block with no
// `// SAFETY:` comment and accept one that is documented.

fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}

fn fine(p: *const u8) -> u8 {
    // SAFETY: fixture demonstrating the escape comment — callers pass a
    // valid, aligned pointer.
    unsafe { *p }
}
