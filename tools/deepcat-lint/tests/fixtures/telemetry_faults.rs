// Fixture: the fault/recovery telemetry families obey the same manifest
// contract as every other family. `fault.phantom_kind` is well-formed but
// unregistered — the resilience layer must not invent event names the
// manifest does not declare. `fault.injected` and `retry.attempt` are
// registered by the test's manifest and must stay clean.

fn unregistered_fault_event() {
    telemetry::event!("fault.phantom_kind", eval = 3, node = 1);
}

fn registered_fault_event() {
    telemetry::event!("fault.injected", eval = 3, transient = 1);
}

fn registered_retry_event() {
    telemetry::event!("retry.attempt", attempt = 1, backoff_s = 5.0);
}
