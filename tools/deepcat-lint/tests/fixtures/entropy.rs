//! Fixture for `determinism.entropy_flow` (never compiled, only
//! linted). Positive cases: a fresh-entropy RNG consumed directly, and
//! one laundered through a helper (`make_unseeded`). Negative cases:
//! seeded construction, an RNG-typed parameter (the sanctioned way to
//! receive randomness), and an ENTROPY-SAFETY-escaped consumption.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn fresh_direct() -> f64 {
    let mut rng = StdRng::from_entropy();
    rng.gen::<f64>()
}

fn make_unseeded() -> StdRng {
    StdRng::from_entropy()
}

pub fn laundered() -> f64 {
    let mut rng = make_unseeded();
    rng.gen::<f64>()
}

pub fn seeded_ok(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen::<f64>()
}

pub fn param_ok(rng: &mut StdRng) -> f64 {
    rng.gen::<f64>()
}

pub fn escaped_fresh() -> f64 {
    let mut rng = StdRng::from_entropy();
    // ENTROPY-SAFETY: fixture-sanctioned fresh entropy (escape hatch
    // under test); must not be reported.
    rng.gen::<f64>()
}
