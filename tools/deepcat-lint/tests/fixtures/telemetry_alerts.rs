// Fixture: the observability-plane families (alert engine, exposition,
// quantile sketches) obey the same manifest contract as every other
// family. `alert.phantom_rule_fired` is well-formed but unregistered —
// the alert engine must not invent event names the manifest does not
// declare. The remaining names are registered by the test's manifest
// and must stay clean, including sketch registrations through both the
// registry method (`sketch(...)`) and the free helper
// (`observe_sketch(...)`).

fn unregistered_alert_event() {
    telemetry::event!("alert.phantom_rule_fired", rule = "latency-p42");
}

fn registered_alert_events() {
    telemetry::event!("alert.raised", rule = "latency-p95", severity = "warn");
    telemetry::event!("alert.resolved", rule = "latency-p95", severity = "warn");
}

fn registered_exposition_event(bytes: usize) {
    telemetry::event!("telemetry.expose", mode = "scrape", bytes = bytes);
}

fn registered_sketch_observations(latency_s: f64) {
    telemetry::observe_sketch("online.step_latency_s", latency_s);
    telemetry::sketch("online.step_reward").insert(0.25);
}
