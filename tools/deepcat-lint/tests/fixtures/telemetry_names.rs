// Fixture: telemetry-family rules must fire on this file. `BadName` breaks
// the `family.snake_case` format; `ghost.event` is well-formed but absent
// from the manifest the test supplies.

fn bad_format() {
    telemetry::event!("BadName", value = 1.0);
}

fn unregistered() {
    telemetry::event!("ghost.event", value = 1.0);
}

fn registered() {
    telemetry::event!("known.event", value = 1.0);
}
