// Fixture: the multi-tenant tuning-service telemetry family obeys the
// manifest contract. `service.phantom_state` is well-formed but
// unregistered — the service/supervisor/mailbox planes must not invent
// event names the manifest does not declare. The registered lifecycle,
// supervision and backpressure names must stay clean.

fn unregistered_service_event() {
    telemetry::event!("service.phantom_state", session = 3, state = "limbo");
}

fn registered_admission_event() {
    telemetry::event!("service.admitted", session = 3, label = "serve-3");
}

fn registered_session_done_event() {
    telemetry::event!("service.session_done", session = 3, outcome = "completed");
}

fn registered_restart_event() {
    telemetry::event!(
        "supervisor.restart",
        session = 3,
        attempt = 1,
        backoff_ms = 2000,
        reason = "injected panic",
    );
}

fn registered_quarantine_event() {
    telemetry::event!("supervisor.quarantined", session = 3, restarts = 3);
}

fn registered_backpressure_event() {
    telemetry::event!("mailbox.rejected", session = 3, cap = 8);
}
