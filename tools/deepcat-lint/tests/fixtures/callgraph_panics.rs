//! Fixture for `panic.reachable` (never compiled, only linted). The
//! private `leaf` carries a token-level `panic.index` leaf fact; it
//! propagates through private `middle` to the public `api`, which must
//! be flagged. `escaped_api` carries a PANIC-SAFETY justification on
//! its signature; `clean_api` reaches no panic at all.

fn leaf(xs: &[f64]) -> f64 {
    xs[0]
}

fn middle(xs: &[f64]) -> f64 {
    leaf(xs) * 2.0
}

pub fn api(xs: &[f64]) -> f64 {
    middle(xs)
}

// PANIC-SAFETY: fixture-sanctioned transitive panic (escape hatch
// under test); callers guarantee a non-empty slice.
pub fn escaped_api(xs: &[f64]) -> f64 {
    middle(xs)
}

pub fn clean_api(x: f64) -> f64 {
    x + 1.0
}
