// Fixture: the commitlog durability telemetry family obeys the manifest
// contract. `commitlog.phantom_op` is well-formed but unregistered — the
// durable-session store must not invent event names the manifest does not
// declare. The registered append/recovery/fault names must stay clean,
// including the counter path (`telemetry::inc`).

fn unregistered_commitlog_event() {
    telemetry::event!("commitlog.phantom_op", seq = 7, bytes = 128);
}

fn registered_append_event() {
    telemetry::event!("commitlog.append", seq = 7, bytes = 128);
}

fn registered_recovery_event() {
    telemetry::event!(
        "commitlog.recovery",
        snapshot_step = 4,
        tail_records = 2,
        truncated = 1,
    );
}

fn registered_fault_event() {
    telemetry::event!("commitlog.fault_injected", at_op = 3, fault = "torn_write");
}

fn registered_truncation_counter() {
    telemetry::inc("commitlog.truncated_records", 1);
}
