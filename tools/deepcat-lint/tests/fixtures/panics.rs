// Fixture: every panic-family rule must fire on this file when it is
// linted under a library (non-bin, non-test) path.

fn bad_unwrap(x: Option<f64>) -> f64 {
    x.unwrap()
}

fn bad_expect(x: Option<f64>) -> f64 {
    x.expect("present")
}

fn bad_explicit(flag: bool) {
    if flag {
        panic!("boom");
    }
}

fn bad_index(xs: &[f64]) -> f64 {
    xs[3]
}

fn fine_expect(x: Option<f64>) -> f64 {
    // PANIC-SAFETY: fixture demonstrating that the escape comment is
    // honoured — this site must NOT be reported.
    x.expect("documented")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
