//! Fixture for the `concurrency.*` families (never compiled, only
//! linted). Positive cases: a two-lock ordering cycle, a direct
//! emission under a guard, and a transitive re-entry under a guard.
//! Negative cases: a LOCK-ORDER-escaped reverse acquisition, a guard
//! dropped before emitting, and a GUARD-EMIT-escaped site.

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    // Opposite order: closes the a -> b -> a cycle.
    pub fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}

pub struct EscapedPair {
    c: Mutex<u64>,
    d: Mutex<u64>,
}

impl EscapedPair {
    pub fn forward(&self) -> u64 {
        let gc = self.c.lock();
        let gd = self.d.lock();
        *gc + *gd
    }

    pub fn backward(&self) -> u64 {
        let gd = self.d.lock();
        // LOCK-ORDER: fixture-sanctioned reverse acquisition (escape
        // hatch under test); the cycle must not be reported.
        let gc = self.c.lock();
        *gc + *gd
    }
}

pub struct Emitter {
    state: Mutex<u64>,
}

impl Emitter {
    pub fn bad_emit(&self) {
        let g = self.state.lock();
        telemetry::event!("fixture.bad_emit", v = *g);
    }

    pub fn good_emit(&self) {
        let g = self.state.lock();
        let v = *g;
        drop(g);
        telemetry::event!("fixture.good_emit", v = v);
    }

    pub fn escaped_emit(&self) {
        let g = self.state.lock();
        // GUARD-EMIT: fixture-sanctioned emission under a guard (escape
        // hatch under test); must not be reported.
        telemetry::event!("fixture.escaped_emit", v = *g);
    }
}

fn helper_emits(v: u64) {
    telemetry::counter("fixture.events").inc();
    let _ = v;
}

pub fn bad_transitive(m: &Mutex<u64>) {
    let g = m.lock();
    helper_emits(*g);
}
