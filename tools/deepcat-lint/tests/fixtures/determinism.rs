// Fixture: every determinism-family rule must fire on this file when it is
// linted under a core-crate path (crates/rl/src/...).
use std::collections::HashMap;
use std::time::Instant;

fn bad_rng() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

fn bad_clock() -> std::time::Instant {
    Instant::now()
}

fn bad_map() -> HashMap<String, f64> {
    HashMap::new()
}
