//! Fixture for the `telemetry.session_scope` rule: functions handling a
//! SessionCtx must open its scope before emitting telemetry.

use telemetry::SessionCtx;

/// BAD: a SessionCtx is in scope but the emits never open it — both the
/// event! and the bare span! site must be flagged.
pub fn unscoped_session_tune(ctx: &SessionCtx, steps: usize) {
    telemetry::event!("tune.summary", label = ctx.label(), steps = steps);
    let _span = span!("env.eval");
}

/// GOOD: the scope is opened before anything is emitted.
pub fn scoped_session_tune(ctx: &SessionCtx, steps: usize) {
    let _scope = telemetry::session_scope(ctx);
    telemetry::event!("tune.summary", steps = steps);
}

/// GOOD: closure-style scoping counts too.
pub fn closure_scoped_tune(ctx: &SessionCtx) {
    telemetry::with_session(ctx, || {
        telemetry::event!("tune.summary", steps = 1);
    });
}

/// GOOD: no SessionCtx anywhere near — ambient scoping (or none) is the
/// caller's business.
pub fn plain_emit(steps: usize) {
    telemetry::event!("tune.summary", steps = steps);
}

/// Escaped: the comment acknowledges the process-wide event on purpose.
pub fn deliberate_unscoped(ctx: SessionCtx) {
    drop(ctx);
    // SESSION-SCOPE: process-wide lifecycle event, not session work.
    telemetry::event!("tune.summary", steps = 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_emits_are_exempt() {
        let _ctx = SessionCtx::new(1, "t");
        telemetry::event!("tune.summary", steps = 1);
    }
}
