// Fixture: the telemetry rule must also fire at *bare* `span!`/`span(`
// call sites (no `telemetry::` prefix — the macro is `#[macro_export]`
// and the constructor can be imported). `phantom.span` is well-formed
// but unregistered; `NotASpan` breaks the name format; the method call
// and the qualified registered name must stay clean.

fn bare_macro_unregistered() {
    let _guard = span!("phantom.span");
}

fn bare_fn_bad_format() {
    let _guard = span("NotASpan");
}

fn bare_macro_registered() {
    let _guard = span!("known.span", step = 1);
}

fn qualified_registered() {
    let _guard = telemetry::span!("known.span");
}

fn method_call_is_not_emission(tracer: &Tracer) {
    // `.span(…)` on some other type: not a telemetry call site.
    tracer.span("Whatever Casing Goes");
}
