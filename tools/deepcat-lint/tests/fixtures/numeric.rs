// Fixture: numeric-family rules must fire on this file when it is linted
// under a math-crate path (crates/tensor-nn/src/...).

fn bad_partial_cmp(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn bad_lossy_cast(n: usize) -> f32 {
    n as f32
}

fn fine_cast(n: usize) -> f32 {
    // CAST-SAFETY: fixture demonstrating that the escape comment is
    // honoured — this site must NOT be reported.
    n as f32
}

fn fine_total_cmp(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
