// Fixture: the guardrail/canary/watchdog telemetry families obey the
// same manifest contract as every other family. `guardrail.phantom_rule`
// is well-formed but unregistered — the guardrail layer must not invent
// event names the manifest does not declare. The remaining names are
// registered by the test's manifest and must stay clean.

fn unregistered_guardrail_event() {
    telemetry::event!("guardrail.phantom_rule", rule = "mem.bogus");
}

fn registered_guardrail_events() {
    telemetry::event!("guardrail.veto", rules = "mem.executor_fits_nm");
    telemetry::event!("guardrail.repaired", rules = "cpu.cores_within_nm_vcores", count = 1);
}

fn registered_canary_events() {
    telemetry::event!("canary.abort", charged_s = 25.0, saved_s = 75.0);
    telemetry::event!("canary.pass", exec_time_s = 80.0, threshold_s = 150.0);
}

fn registered_watchdog_events() {
    telemetry::event!("watchdog.triggered", window_mean = -4.0, envelope = 0.5);
    telemetry::event!("watchdog.recovered", envelope = 1.0);
}
