//! The lexer and the full lint pass are total functions: arbitrary input —
//! including invalid UTF-8 mangled through lossy conversion, unterminated
//! strings, and deeply nested comments — must never panic.

use deepcat_lint::lexer::{lex, TokKind};
use deepcat_lint::parse::parse_file;
use deepcat_lint::{lint_source, Manifest, NamesSeen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let toks = lex(&src);
        // Every token must point back into the source line range.
        for t in &toks {
            prop_assert!(t.line >= 1);
        }
    }

    #[test]
    fn lint_pass_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = lint_source(
            "crates/rl/src/fuzz.rs",
            &src,
            &Manifest::default(),
            &mut NamesSeen::default(),
        );
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        // The parser's totality contract: any token stream in, an AST
        // (plus bounded diagnostics) out — never a panic, never a hang.
        let src = String::from_utf8_lossy(&bytes);
        let toks = lex(&src);
        let code: Vec<_> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .cloned()
            .collect();
        let parsed = parse_file(&code);
        prop_assert!(parsed.diags.len() <= 32);
    }

    #[test]
    fn parser_handles_rusty_fragments(
        idx in 0usize..10,
        n in 1usize..20,
    ) {
        // Structured-but-degenerate Rust: nesting, guards, closures,
        // truncated items — the shapes the dataflow walker leans on.
        let fragments = [
            "impl T { fn f(&self) { let g = self.a.lock(); } }",
            "fn f(m: &Mutex<u64>) { if let Some(g) = m.try_lock() { g; } }",
            "fn f() { match x { Some(y) => y, None => return } }",
            "fn f() { let c = || inner.lock(); c(); }",
            "pub fn f(xs: &[f64]) -> f64 { xs[0] + xs[1] }",
            "fn f() { loop { break } } trait T { fn g(&self); }",
            "fn f() -> StdRng { StdRng::from_entropy() }",
            "fn f( { ) } ]", // mismatched delimiters
            "fn",            // truncated item
            "impl { fn fn fn",
        ];
        let src = fragments[idx].repeat(n);
        let _ = lint_source(
            "crates/rl/src/fuzz.rs",
            &src,
            &Manifest::default(),
            &mut NamesSeen::default(),
        );
    }

    #[test]
    fn lexer_handles_rusty_fragments(
        idx in 0usize..12,
        n in 0usize..40,
    ) {
        // Pathological but structured fragments, repeated and truncated.
        let fragments = [
            "\"unterminated", "r#\"raw", "/* nested /* deeper", "'a", "'x'",
            "b\"bytes\"", "0..10", "1.5e-3", "#[cfg(test)]", "fn f() { x[0] }",
            "//", "r\"",
        ];
        let src = fragments[idx].repeat(n);
        let _ = lex(&src);
    }
}
