//! The lexer and the full lint pass are total functions: arbitrary input —
//! including invalid UTF-8 mangled through lossy conversion, unterminated
//! strings, and deeply nested comments — must never panic.

use deepcat_lint::lexer::lex;
use deepcat_lint::{lint_source, Manifest, NamesSeen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let toks = lex(&src);
        // Every token must point back into the source line range.
        for t in &toks {
            prop_assert!(t.line >= 1);
        }
    }

    #[test]
    fn lint_pass_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = lint_source(
            "crates/rl/src/fuzz.rs",
            &src,
            &Manifest::default(),
            &mut NamesSeen::default(),
        );
    }

    #[test]
    fn lexer_handles_rusty_fragments(
        idx in 0usize..12,
        n in 0usize..40,
    ) {
        // Pathological but structured fragments, repeated and truncated.
        let fragments = [
            "\"unterminated", "r#\"raw", "/* nested /* deeper", "'a", "'x'",
            "b\"bytes\"", "0..10", "1.5e-3", "#[cfg(test)]", "fn f() { x[0] }",
            "//", "r\"",
        ];
        let src = fragments[idx].repeat(n);
        let _ = lex(&src);
    }
}
