//! Each lint family must fire on its fixture file — and escape comments
//! must be honoured. The fixtures live under `tests/fixtures/` (outside
//! `src/`, so the workspace sweep itself never lints them).

use deepcat_lint::{lint_source, Finding, Manifest, NamesSeen};

fn lint_fixture(rel_path: &str, fixture: &str, manifest: &Manifest) -> Vec<Finding> {
    let src = std::fs::read_to_string(format!(
        "{}/tests/fixtures/{fixture}",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    lint_source(rel_path, &src, manifest, &mut NamesSeen::default())
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_family_fires() {
    let f = lint_fixture(
        "crates/rl/src/fixture.rs",
        "determinism.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(r.contains(&"determinism.thread_rng"), "{f:?}");
    assert!(r.contains(&"determinism.wall_clock"), "{f:?}");
    assert!(r.contains(&"determinism.hash_collections"), "{f:?}");
}

#[test]
fn determinism_family_ignores_non_core_crates() {
    let f = lint_fixture(
        "crates/bench/src/fixture.rs",
        "determinism.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(!r.contains(&"determinism.thread_rng"), "{f:?}");
    assert!(!r.contains(&"determinism.hash_collections"), "{f:?}");
}

#[test]
fn panic_family_fires() {
    let f = lint_fixture(
        "crates/spark-sim/src/fixture.rs",
        "panics.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(r.contains(&"panic.unwrap"), "{f:?}");
    assert!(r.contains(&"panic.expect"), "{f:?}");
    assert!(r.contains(&"panic.explicit"), "{f:?}");
    assert!(r.contains(&"panic.index"), "{f:?}");
    // The PANIC-SAFETY-escaped expect and the #[cfg(test)] unwrap must
    // not be reported: exactly one expect and one unwrap finding.
    assert_eq!(
        r.iter().filter(|r| **r == "panic.expect").count(),
        1,
        "{f:?}"
    );
    assert_eq!(
        r.iter().filter(|r| **r == "panic.unwrap").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn panic_family_exempts_bins() {
    let f = lint_fixture(
        "crates/spark-sim/src/bin/fixture.rs",
        "panics.rs",
        &Manifest::default(),
    );
    assert!(!rules(&f).iter().any(|r| r.starts_with("panic.")), "{f:?}");
}

#[test]
fn numeric_family_fires() {
    let f = lint_fixture(
        "crates/tensor-nn/src/fixture.rs",
        "numeric.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(r.contains(&"numeric.partial_cmp_unwrap"), "{f:?}");
    // One lossy cast reported; the CAST-SAFETY-escaped one is not.
    assert_eq!(
        r.iter().filter(|r| **r == "numeric.lossy_cast").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn lossy_cast_only_checked_in_math_crates() {
    let f = lint_fixture(
        "crates/telemetry/src/fixture.rs",
        "numeric.rs",
        &Manifest::default(),
    );
    assert!(!rules(&f).contains(&"numeric.lossy_cast"), "{f:?}");
}

#[test]
fn telemetry_family_fires() {
    let manifest =
        Manifest::parse("[[event]]\nname = \"known.event\"\ndoc = \"registered fixture event\"\n")
            .expect("manifest parses");
    let f = lint_fixture("crates/rl/src/fixture.rs", "telemetry_names.rs", &manifest);
    let r = rules(&f);
    assert!(r.contains(&"telemetry.name_format"), "{f:?}");
    // `ghost.event` is unregistered; `known.event` is registered, so
    // exactly one manifest finding.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn unregistered_fault_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"fault.injected\"\ndoc = \"fault injected\"\n\n\
         [[event]]\nname = \"retry.attempt\"\ndoc = \"retrying\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_faults.rs",
        &manifest,
    );
    let r = rules(&f);
    // `fault.phantom_kind` is the only unregistered name; the registered
    // `fault.injected` / `retry.attempt` must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest" && x.message.contains("fault.phantom_kind")),
        "{f:?}"
    );
}

#[test]
fn telemetry_family_fires_on_bare_span_call_sites() {
    let manifest =
        Manifest::parse("[[event]]\nname = \"known.span\"\ndoc = \"registered fixture span\"\n")
            .expect("manifest parses");
    let f = lint_fixture("crates/rl/src/fixture.rs", "telemetry_spans.rs", &manifest);
    let r = rules(&f);
    // Bare `span!("phantom.span")` is unregistered — exactly one manifest
    // finding (the registered bare/qualified uses and the `.span(…)`
    // method call must not report).
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest" && x.message.contains("phantom.span")),
        "{f:?}"
    );
    // Bare `span("NotASpan")` breaks the name format.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.name_format").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn unregistered_guardrail_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"guardrail.veto\"\ndoc = \"vetoed\"\n\n\
         [[event]]\nname = \"guardrail.repaired\"\ndoc = \"repaired\"\n\n\
         [[event]]\nname = \"canary.abort\"\ndoc = \"aborted\"\n\n\
         [[event]]\nname = \"canary.pass\"\ndoc = \"passed\"\n\n\
         [[event]]\nname = \"watchdog.triggered\"\ndoc = \"triggered\"\n\n\
         [[event]]\nname = \"watchdog.recovered\"\ndoc = \"recovered\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_guardrails.rs",
        &manifest,
    );
    let r = rules(&f);
    // `guardrail.phantom_rule` is the only unregistered name; the six
    // registered guardrail/canary/watchdog names must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter().any(
            |x| x.rule == "telemetry.manifest" && x.message.contains("guardrail.phantom_rule")
        ),
        "{f:?}"
    );
}

#[test]
fn session_scope_rule_fires_only_on_unscoped_emits() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"tune.summary\"\ndoc = \"summary\"\n\n\
         [[event]]\nname = \"env.eval\"\ndoc = \"eval span\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_sessions.rs",
        &manifest,
    );
    let r = rules(&f);
    // `unscoped_session_tune` has two emission sites (event! + bare
    // span!); the scoped, ctx-free, SESSION-SCOPE-escaped and test fns
    // must stay clean.
    assert_eq!(
        r.iter()
            .filter(|r| **r == "telemetry.session_scope")
            .count(),
        2,
        "{f:?}"
    );
}

#[test]
fn session_scope_rule_ignores_non_core_crates_and_bins() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"tune.summary\"\ndoc = \"summary\"\n\n\
         [[event]]\nname = \"env.eval\"\ndoc = \"eval span\"\n",
    )
    .expect("manifest parses");
    for rel in [
        "crates/bench/src/fixture.rs",
        "crates/deepcat/src/bin/fixture.rs",
    ] {
        let f = lint_fixture(rel, "telemetry_sessions.rs", &manifest);
        assert!(
            !rules(&f).contains(&"telemetry.session_scope"),
            "{rel}: {f:?}"
        );
    }
}

#[test]
fn safety_family_fires() {
    let f = lint_fixture(
        "crates/rl/src/fixture.rs",
        "unsafe_block.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    // One undocumented unsafe block; the SAFETY-escaped one is clean.
    assert_eq!(
        r.iter()
            .filter(|r| **r == "safety.undocumented_unsafe")
            .count(),
        1,
        "{f:?}"
    );
}

#[test]
fn clean_core_source_has_no_findings() {
    let manifest =
        Manifest::parse("[[event]]\nname = \"core.tick\"\ndoc = \"fixture event\"\n").unwrap();
    let src = r#"
        use std::collections::BTreeMap;
        pub fn tick(xs: &mut [f64]) -> BTreeMap<u64, f64> {
            xs.sort_by(|a, b| a.total_cmp(b));
            telemetry::event!("core.tick", n = xs.len());
            BTreeMap::new()
        }
    "#;
    let f = lint_source(
        "crates/rl/src/fixture.rs",
        src,
        &manifest,
        &mut NamesSeen::default(),
    );
    assert!(f.is_empty(), "{f:?}");
}
