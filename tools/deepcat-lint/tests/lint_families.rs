//! Each lint family must fire on its fixture file — and escape comments
//! must be honoured. The fixtures live under `tests/fixtures/` (outside
//! `src/`, so the workspace sweep itself never lints them).

use deepcat_lint::{lint_source, render_sarif, Finding, Manifest, NamesSeen, Report};

fn lint_fixture(rel_path: &str, fixture: &str, manifest: &Manifest) -> Vec<Finding> {
    let src = std::fs::read_to_string(format!(
        "{}/tests/fixtures/{fixture}",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("fixture readable");
    lint_source(rel_path, &src, manifest, &mut NamesSeen::default())
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_family_fires() {
    let f = lint_fixture(
        "crates/rl/src/fixture.rs",
        "determinism.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(r.contains(&"determinism.thread_rng"), "{f:?}");
    assert!(r.contains(&"determinism.wall_clock"), "{f:?}");
    assert!(r.contains(&"determinism.hash_collections"), "{f:?}");
}

#[test]
fn determinism_family_ignores_non_core_crates() {
    let f = lint_fixture(
        "crates/bench/src/fixture.rs",
        "determinism.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(!r.contains(&"determinism.thread_rng"), "{f:?}");
    assert!(!r.contains(&"determinism.hash_collections"), "{f:?}");
}

#[test]
fn panic_family_fires() {
    let f = lint_fixture(
        "crates/spark-sim/src/fixture.rs",
        "panics.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(r.contains(&"panic.unwrap"), "{f:?}");
    assert!(r.contains(&"panic.expect"), "{f:?}");
    assert!(r.contains(&"panic.explicit"), "{f:?}");
    assert!(r.contains(&"panic.index"), "{f:?}");
    // The PANIC-SAFETY-escaped expect and the #[cfg(test)] unwrap must
    // not be reported: exactly one expect and one unwrap finding.
    assert_eq!(
        r.iter().filter(|r| **r == "panic.expect").count(),
        1,
        "{f:?}"
    );
    assert_eq!(
        r.iter().filter(|r| **r == "panic.unwrap").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn panic_family_exempts_bins() {
    let f = lint_fixture(
        "crates/spark-sim/src/bin/fixture.rs",
        "panics.rs",
        &Manifest::default(),
    );
    assert!(!rules(&f).iter().any(|r| r.starts_with("panic.")), "{f:?}");
}

#[test]
fn numeric_family_fires() {
    let f = lint_fixture(
        "crates/tensor-nn/src/fixture.rs",
        "numeric.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    assert!(r.contains(&"numeric.partial_cmp_unwrap"), "{f:?}");
    // One lossy cast reported; the CAST-SAFETY-escaped one is not.
    assert_eq!(
        r.iter().filter(|r| **r == "numeric.lossy_cast").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn lossy_cast_only_checked_in_math_crates() {
    let f = lint_fixture(
        "crates/telemetry/src/fixture.rs",
        "numeric.rs",
        &Manifest::default(),
    );
    assert!(!rules(&f).contains(&"numeric.lossy_cast"), "{f:?}");
}

#[test]
fn telemetry_family_fires() {
    let manifest =
        Manifest::parse("[[event]]\nname = \"known.event\"\ndoc = \"registered fixture event\"\n")
            .expect("manifest parses");
    let f = lint_fixture("crates/rl/src/fixture.rs", "telemetry_names.rs", &manifest);
    let r = rules(&f);
    assert!(r.contains(&"telemetry.name_format"), "{f:?}");
    // `ghost.event` is unregistered; `known.event` is registered, so
    // exactly one manifest finding.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn unregistered_commitlog_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"commitlog.append\"\ndoc = \"append\"\n\n\
         [[event]]\nname = \"commitlog.recovery\"\ndoc = \"recovery\"\n\n\
         [[event]]\nname = \"commitlog.fault_injected\"\ndoc = \"fault\"\n\n\
         [[event]]\nname = \"commitlog.truncated_records\"\ndoc = \"truncated\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_commitlog.rs",
        &manifest,
    );
    let r = rules(&f);
    // `commitlog.phantom_op` is the only unregistered name; the four
    // registered names (event! and inc paths) must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest" && x.message.contains("commitlog.phantom_op")),
        "{f:?}"
    );
}

#[test]
fn unregistered_fault_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"fault.injected\"\ndoc = \"fault injected\"\n\n\
         [[event]]\nname = \"retry.attempt\"\ndoc = \"retrying\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_faults.rs",
        &manifest,
    );
    let r = rules(&f);
    // `fault.phantom_kind` is the only unregistered name; the registered
    // `fault.injected` / `retry.attempt` must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest" && x.message.contains("fault.phantom_kind")),
        "{f:?}"
    );
}

#[test]
fn telemetry_family_fires_on_bare_span_call_sites() {
    let manifest =
        Manifest::parse("[[event]]\nname = \"known.span\"\ndoc = \"registered fixture span\"\n")
            .expect("manifest parses");
    let f = lint_fixture("crates/rl/src/fixture.rs", "telemetry_spans.rs", &manifest);
    let r = rules(&f);
    // Bare `span!("phantom.span")` is unregistered — exactly one manifest
    // finding (the registered bare/qualified uses and the `.span(…)`
    // method call must not report).
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest" && x.message.contains("phantom.span")),
        "{f:?}"
    );
    // Bare `span("NotASpan")` breaks the name format.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.name_format").count(),
        1,
        "{f:?}"
    );
}

#[test]
fn unregistered_guardrail_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"guardrail.veto\"\ndoc = \"vetoed\"\n\n\
         [[event]]\nname = \"guardrail.repaired\"\ndoc = \"repaired\"\n\n\
         [[event]]\nname = \"canary.abort\"\ndoc = \"aborted\"\n\n\
         [[event]]\nname = \"canary.pass\"\ndoc = \"passed\"\n\n\
         [[event]]\nname = \"watchdog.triggered\"\ndoc = \"triggered\"\n\n\
         [[event]]\nname = \"watchdog.recovered\"\ndoc = \"recovered\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_guardrails.rs",
        &manifest,
    );
    let r = rules(&f);
    // `guardrail.phantom_rule` is the only unregistered name; the six
    // registered guardrail/canary/watchdog names must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter().any(
            |x| x.rule == "telemetry.manifest" && x.message.contains("guardrail.phantom_rule")
        ),
        "{f:?}"
    );
}

#[test]
fn unregistered_alert_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"alert.raised\"\ndoc = \"raised\"\n\n\
         [[event]]\nname = \"alert.resolved\"\ndoc = \"resolved\"\n\n\
         [[event]]\nname = \"telemetry.expose\"\ndoc = \"exposed\"\n\n\
         [[event]]\nname = \"online.step_latency_s\"\ndoc = \"latency sketch\"\n\n\
         [[event]]\nname = \"online.step_reward\"\ndoc = \"reward sketch\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/telemetry/src/fixture.rs",
        "telemetry_alerts.rs",
        &manifest,
    );
    let r = rules(&f);
    // `alert.phantom_rule_fired` is the only unregistered name; the
    // registered alert/expose names and the sketch registrations (via
    // both `sketch(...)` and `observe_sketch(...)`) must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest"
                && x.message.contains("alert.phantom_rule_fired")),
        "{f:?}"
    );
}

#[test]
fn unregistered_service_events_fail_the_manifest_rule() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"service.admitted\"\ndoc = \"admitted\"\n\n\
         [[event]]\nname = \"service.session_done\"\ndoc = \"done\"\n\n\
         [[event]]\nname = \"supervisor.restart\"\ndoc = \"restart\"\n\n\
         [[event]]\nname = \"supervisor.quarantined\"\ndoc = \"quarantined\"\n\n\
         [[event]]\nname = \"mailbox.rejected\"\ndoc = \"backpressure\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_service.rs",
        &manifest,
    );
    let r = rules(&f);
    // `service.phantom_state` is the only unregistered name; the five
    // registered service/supervisor/mailbox names must not report.
    assert_eq!(
        r.iter().filter(|r| **r == "telemetry.manifest").count(),
        1,
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "telemetry.manifest" && x.message.contains("service.phantom_state")),
        "{f:?}"
    );
}

#[test]
fn session_scope_rule_fires_only_on_unscoped_emits() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"tune.summary\"\ndoc = \"summary\"\n\n\
         [[event]]\nname = \"env.eval\"\ndoc = \"eval span\"\n",
    )
    .expect("manifest parses");
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "telemetry_sessions.rs",
        &manifest,
    );
    let r = rules(&f);
    // `unscoped_session_tune` has two emission sites (event! + bare
    // span!); the scoped, ctx-free, SESSION-SCOPE-escaped and test fns
    // must stay clean.
    assert_eq!(
        r.iter()
            .filter(|r| **r == "telemetry.session_scope")
            .count(),
        2,
        "{f:?}"
    );
}

#[test]
fn session_scope_rule_ignores_non_core_crates_and_bins() {
    let manifest = Manifest::parse(
        "[[event]]\nname = \"tune.summary\"\ndoc = \"summary\"\n\n\
         [[event]]\nname = \"env.eval\"\ndoc = \"eval span\"\n",
    )
    .expect("manifest parses");
    for rel in [
        "crates/bench/src/fixture.rs",
        "crates/deepcat/src/bin/fixture.rs",
    ] {
        let f = lint_fixture(rel, "telemetry_sessions.rs", &manifest);
        assert!(
            !rules(&f).contains(&"telemetry.session_scope"),
            "{rel}: {f:?}"
        );
    }
}

#[test]
fn safety_family_fires() {
    let f = lint_fixture(
        "crates/rl/src/fixture.rs",
        "unsafe_block.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    // One undocumented unsafe block; the SAFETY-escaped one is clean.
    assert_eq!(
        r.iter()
            .filter(|r| **r == "safety.undocumented_unsafe")
            .count(),
        1,
        "{f:?}"
    );
}

fn concurrency_manifest() -> Manifest {
    Manifest::parse(
        "[[event]]\nname = \"fixture.bad_emit\"\ndoc = \"fixture\"\n\n\
         [[event]]\nname = \"fixture.good_emit\"\ndoc = \"fixture\"\n\n\
         [[event]]\nname = \"fixture.escaped_emit\"\ndoc = \"fixture\"\n\n\
         [[event]]\nname = \"fixture.events\"\ndoc = \"fixture\"\n",
    )
    .expect("manifest parses")
}

#[test]
fn lock_order_cycle_is_caught_and_escape_honoured() {
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "concurrency.rs",
        &concurrency_manifest(),
    );
    let r = rules(&f);
    // `Pair::forward`/`Pair::backward` acquire a/b in opposite orders:
    // exactly one cycle finding naming both locks. The LOCK-ORDER-escaped
    // `EscapedPair` reverse acquisition must not close a second cycle.
    assert_eq!(
        r.iter().filter(|r| **r == "concurrency.lock_order").count(),
        1,
        "{f:?}"
    );
    let cycle = f
        .iter()
        .find(|x| x.rule == "concurrency.lock_order")
        .expect("cycle finding");
    assert!(
        cycle.message.contains("Pair.a") && cycle.message.contains("Pair.b"),
        "{cycle:?}"
    );
    assert!(!cycle.message.contains("EscapedPair"), "{cycle:?}");
}

#[test]
fn guard_across_emit_fires_on_direct_and_transitive_sites() {
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "concurrency.rs",
        &concurrency_manifest(),
    );
    let hits: Vec<&Finding> = f
        .iter()
        .filter(|x| x.rule == "concurrency.guard_across_emit")
        .collect();
    // `bad_emit` (direct `event!` under the guard) and `bad_transitive`
    // (call into `helper_emits`, which emits) fire; `good_emit` drops the
    // guard first and `escaped_emit` carries GUARD-EMIT.
    assert_eq!(hits.len(), 2, "{f:?}");
    assert!(
        hits.iter()
            .any(|x| x.message.contains("telemetry emission while holding")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|x| x.message.contains("helper_emits")),
        "{hits:?}"
    );
    // The whole fixture yields exactly the cycle + these two findings.
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn panic_reachable_propagates_to_public_api() {
    let f = lint_fixture(
        "crates/deepcat/src/fixture.rs",
        "callgraph_panics.rs",
        &Manifest::default(),
    );
    let r = rules(&f);
    // The token leaf in private `leaf` …
    assert_eq!(
        r.iter().filter(|r| **r == "panic.index").count(),
        1,
        "{f:?}"
    );
    // … propagates through private `middle` to the one public API that
    // is not PANIC-SAFETY-escaped and actually reaches the panic.
    let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == "panic.reachable").collect();
    assert_eq!(hits.len(), 1, "{f:?}");
    assert!(hits[0].message.contains("`api`"), "{hits:?}");
    assert!(hits[0].message.contains("middle -> leaf"), "{hits:?}");
}

#[test]
fn entropy_flow_tracks_direct_and_laundered_rng() {
    let f = lint_fixture(
        "crates/rl/src/fixture.rs",
        "entropy.rs",
        &Manifest::default(),
    );
    let hits: Vec<&Finding> = f
        .iter()
        .filter(|x| x.rule == "determinism.entropy_flow")
        .collect();
    // `fresh_direct` consumes a fresh-entropy RNG in place; `laundered`
    // gets one via `make_unseeded()`. Seeded construction, an RNG-typed
    // parameter, and the ENTROPY-SAFETY escape stay clean.
    assert_eq!(hits.len(), 2, "{f:?}");
    assert!(
        hits.iter().any(|x| x.message.contains("fresh entropy")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|x| x.message.contains("make_unseeded")),
        "{hits:?}"
    );
}

#[test]
fn entropy_flow_ignores_non_core_crates() {
    let f = lint_fixture(
        "crates/bench/src/fixture.rs",
        "entropy.rs",
        &Manifest::default(),
    );
    assert!(!rules(&f).contains(&"determinism.entropy_flow"), "{f:?}");
}

#[test]
fn sarif_output_carries_rules_and_locations() {
    let report = Report {
        findings: lint_fixture(
            "crates/deepcat/src/fixture.rs",
            "concurrency.rs",
            &concurrency_manifest(),
        ),
        ..Report::default()
    };
    let sarif = render_sarif(&report);
    assert!(sarif.contains("\"2.1.0\""), "{sarif}");
    assert!(sarif.contains("deepcat-lint"), "{sarif}");
    assert!(sarif.contains("concurrency.lock_order"), "{sarif}");
    assert!(sarif.contains("concurrency.guard_across_emit"), "{sarif}");
    assert!(sarif.contains("crates/deepcat/src/fixture.rs"), "{sarif}");
}

#[test]
fn clean_core_source_has_no_findings() {
    let manifest =
        Manifest::parse("[[event]]\nname = \"core.tick\"\ndoc = \"fixture event\"\n").unwrap();
    let src = r#"
        use std::collections::BTreeMap;
        pub fn tick(xs: &mut [f64]) -> BTreeMap<u64, f64> {
            xs.sort_by(|a, b| a.total_cmp(b));
            telemetry::event!("core.tick", n = xs.len());
            BTreeMap::new()
        }
    "#;
    let f = lint_source(
        "crates/rl/src/fixture.rs",
        src,
        &manifest,
        &mut NamesSeen::default(),
    );
    assert!(f.is_empty(), "{f:?}");
}
