//! Bake-off: run every tuner (DeepCAT, CDBTune, OtterTune, BestConfig,
//! random search) for several online sessions on the same workload,
//! aggregate with the analysis module, and print a markdown verdict table.
//!
//! ```sh
//! cargo run --release --example tuner_bakeoff
//! ```

use deepcat::{
    build_repository, compare, summarize, to_markdown, BestConfig, CdbTune, DeepCat, OtterTune,
    RandomSearch, Tuner, TuningEnv, TuningReport, Verdict,
};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

const SESSIONS: u64 = 4;
const OFFLINE_ITERS: usize = 1500;

fn run_sessions(tuner: &mut dyn Tuner, w: Workload) -> Vec<TuningReport> {
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 900);
    tuner.offline_train(&mut offline);
    (0..SESSIONS)
        .map(|s| {
            let live = Cluster::cluster_a().with_background_load(0.15);
            let mut env = TuningEnv::for_workload(live, w, 1000 + s * 37);
            tuner.online_tune(&mut env, 5)
        })
        .collect()
}

fn main() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    println!("bake-off on {w}: {SESSIONS} sessions x 5 online steps per tuner\n");

    let probe = TuningEnv::for_workload(Cluster::cluster_a(), w, 900);
    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(DeepCat::for_env(&probe, OFFLINE_ITERS, 2022)),
        Box::new(CdbTune::for_env(&probe, OFFLINE_ITERS, 2022)),
        Box::new(OtterTune::with_repository(
            build_repository(
                &Cluster::cluster_a(),
                &Workload::all_pairs()
                    .into_iter()
                    .filter(|x| *x != w)
                    .collect::<Vec<_>>(),
                120,
                3,
            ),
            4,
        )),
        Box::new(BestConfig::new(5)),
        Box::new(RandomSearch::new(6)),
    ];

    let mut summaries = Vec::new();
    for tuner in &mut tuners {
        let reports = run_sessions(tuner.as_mut(), w);
        summaries.push(summarize(&reports));
    }
    println!("{}", to_markdown(&summaries));

    let deepcat = summaries.iter().find(|s| s.tuner == "DeepCAT").unwrap();
    for s in summaries.iter().filter(|s| s.tuner != "DeepCAT") {
        let verdict = compare(deepcat, s);
        println!(
            "DeepCAT vs {:10} on best exec time: {:?}{}",
            s.tuner,
            verdict,
            if verdict == Verdict::Tie {
                " (CIs overlap)"
            } else {
                ""
            }
        );
    }
}
