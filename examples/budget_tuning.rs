//! Tuning under a cost budget (paper §5.2.3): keep taking online steps
//! until the accumulated tuning time would exceed the user's budget, then
//! report the best configuration found.
//!
//! ```sh
//! cargo run --release --example budget_tuning
//! ```

use deepcat::{online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn main() {
    let workload = Workload::new(WorkloadKind::PageRank, InputSize::D1);
    let budget_s = 250.0;

    let mut offline_env = TuningEnv::for_workload(Cluster::cluster_a(), workload, 31);
    let agent_cfg = AgentConfig::for_dims(offline_env.state_dim(), offline_env.action_dim());
    let (mut agent, _, _) = train_td3(
        &mut offline_env,
        agent_cfg,
        &OfflineConfig::deepcat(1500, 31),
        &[],
    );

    let live = Cluster::cluster_a().with_background_load(0.15);
    let mut online_env = TuningEnv::for_workload(live, workload, 3233);

    println!("tuning {workload} under a {budget_s:.0}s total budget...");
    // Take steps one at a time; stop when the next step no longer fits.
    let mut spent = 0.0;
    let mut best = f64::INFINITY;
    let mut steps = 0;
    while spent < budget_s {
        let one = OnlineConfig {
            steps: 1,
            seed: 100 + steps as u64,
            ..OnlineConfig::deepcat(9)
        };
        let report = online_tune_td3(&mut agent, &mut online_env, &one, "DeepCAT");
        spent += report.total_cost_s();
        best = best.min(report.best_exec_time_s);
        steps += 1;
        println!(
            "  step {steps}: exec {:.1}s, accumulated cost {spent:.1}s, best so far {best:.1}s",
            report.steps[0].exec_time_s
        );
        if spent + best > budget_s {
            break; // the next evaluation would blow the budget
        }
    }
    println!(
        "\nwithin {budget_s:.0}s: {} steps taken, best configuration {best:.1}s ({:.2}x over default {:.1}s)",
        steps,
        online_env.default_exec_time() / best,
        online_env.default_exec_time()
    );
}
