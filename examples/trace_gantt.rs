//! Render an ASCII Gantt chart of a simulated TeraSort run from the
//! engine's task traces — a debugging view into what the tuned knobs do to
//! the schedule (waves, locality, stragglers).
//!
//! ```sh
//! cargo run --release --example trace_gantt
//! ```

use spark_sim::{
    idx, simulate_traced, Cluster, InputSize, KnobSpace, KnobValue, Workload, WorkloadKind,
};

const WIDTH: usize = 100;

fn main() {
    let space = KnobSpace::pipeline();
    let mut cfg = space.default_config();
    cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
    cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(4096);
    cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(6);
    cfg.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(48);
    cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
    cfg.values[idx::NM_VCORES] = KnobValue::Int(14);

    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let out = simulate_traced(&Cluster::cluster_a(), &cfg, &w.job_spec(), 7);
    println!("{w}: {:.1}s total", out.duration_s);

    for (stage, stage_time) in &out.stage_times {
        let traces: Vec<_> = out
            .task_traces
            .iter()
            .filter(|t| &t.stage == stage)
            .collect();
        if traces.is_empty() {
            continue;
        }
        let end = traces
            .iter()
            .map(|t| t.start_s + t.duration_s)
            .fold(0.0f64, f64::max)
            .max(0.001);
        let slots = traces.iter().map(|t| t.slot).max().unwrap() + 1;
        println!(
            "\n== stage {stage} ({stage_time:.1}s, {} tasks, {slots} slots) ==",
            traces.len()
        );
        let scale = WIDTH as f64 / end;
        for slot in 0..slots {
            let mut row = vec![' '; WIDTH];
            let node = traces
                .iter()
                .find(|t| t.slot == slot)
                .map(|t| t.node)
                .unwrap_or(0);
            for t in traces.iter().filter(|t| t.slot == slot) {
                let a = ((t.start_s * scale) as usize).min(WIDTH - 1);
                let b = (((t.start_s + t.duration_s) * scale) as usize).clamp(a + 1, WIDTH);
                let ch = if t.local { '█' } else { 'R' };
                for c in row.iter_mut().take(b).skip(a) {
                    *c = ch;
                }
            }
            println!("n{node} s{slot:02} |{}|", row.iter().collect::<String>());
        }
        let locals = traces.iter().filter(|t| t.local).count();
        println!(
            "   locality: {}/{} local   span 0..{end:.1}s   (█ local, R remote)",
            locals,
            traces.len()
        );
    }
}
