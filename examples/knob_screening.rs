//! Which knobs actually matter? Morris elementary-effects screening of all
//! 32 knobs on two contrasting workloads — the engine-side counterpart to
//! OtterTune's Lasso ranking.
//!
//! ```sh
//! cargo run --release --example knob_screening
//! ```

use spark_sim::{morris_screening, Cluster, InputSize, MorrisConfig, Workload, WorkloadKind};

fn main() {
    for kind in [WorkloadKind::TeraSort, WorkloadKind::KMeans] {
        let w = Workload::new(kind, InputSize::D1);
        let scores = morris_screening(&Cluster::cluster_a(), w, &MorrisConfig::default());
        println!(
            "\n== {w}: top 12 knobs by Morris mu* (of {}) ==",
            scores.len()
        );
        let max = scores[0].mu_star.max(1e-12);
        for k in scores.iter().take(12) {
            let bar = "#".repeat((40.0 * k.mu_star / max) as usize);
            println!("{:48} {:6.3}  {}", k.name, k.mu_star, bar);
        }
    }
    println!("\n(mu* = mean |elementary effect| on ln(exec time); sigma not shown)");
}
