//! Using the spark-sim substrate directly: evaluate hand-written
//! configurations, inspect per-stage timings, and observe the knobs'
//! mechanical effects (executor packing, spills, OOM kills).
//!
//! ```sh
//! cargo run --release --example explore_simulator
//! ```

use spark_sim::{idx, simulate, Cluster, InputSize, KnobSpace, KnobValue, Workload, WorkloadKind};

fn main() {
    let space = KnobSpace::pipeline();
    let cluster = Cluster::cluster_a();
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let job = workload.job_spec();

    println!("=== default configuration ===");
    let out = simulate(&cluster, &space.default_config(), &job, 1);
    print_outcome(&out);

    println!("\n=== a sensible hand-tuned configuration ===");
    let mut cfg = space.default_config();
    cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
    cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(4096);
    cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(9);
    cfg.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(96);
    cfg.values[idx::SERIALIZER] = KnobValue::Cat(1); // kryo
    cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
    cfg.values[idx::NM_VCORES] = KnobValue::Int(14);
    let out = simulate(&cluster, &cfg, &job, 1);
    print_outcome(&out);

    println!("\n=== a memory-starved configuration on KMeans (OOM-prone) ===");
    let km = Workload::new(WorkloadKind::KMeans, InputSize::D3);
    let mut bad = cfg.clone();
    bad.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(1024);
    bad.values[idx::MEMORY_FRACTION] = KnobValue::Float(0.3);
    let out = simulate(&cluster, &bad, &km.job_spec(), 1);
    print_outcome(&out);
}

fn print_outcome(out: &spark_sim::SimOutcome) {
    match &out.failed {
        Some(kind) => println!("FAILED after {:.1}s: {kind:?}", out.duration_s),
        None => println!("completed in {:.1}s", out.duration_s),
    }
    for (name, t) in &out.stage_times {
        println!("  stage {name:15} {t:7.1}s");
    }
    if let Some(plan) = &out.plan {
        println!(
            "  executors: {} x {} cores x {} MB heap ({} task slots)",
            plan.total_executors, plan.executor_cores, plan.executor_heap_mb, plan.total_slots
        );
    }
    let m = &out.metrics;
    println!(
        "  cpu util {:.0}%  shuffle {:.0} MB  spill {:.0} MB  gc {:.0}%  cache hit {:.0}%  kills {}",
        m.cpu_util * 100.0,
        m.shuffle_mb,
        m.spill_mb,
        m.gc_frac * 100.0,
        m.cache_hit * 100.0,
        m.container_kills
    );
}
