//! Quickstart: tune TeraSort (3.2 GB) on the simulated 3-node cluster with
//! DeepCAT — offline training on the standard environment, then a 5-step
//! online tuning session against the live cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepcat::{DeepCat, Tuner, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn main() {
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);

    // The "standard environment" used for offline training.
    println!("measuring the default configuration...");
    let mut offline_env = TuningEnv::for_workload(Cluster::cluster_a(), workload, 42);
    println!(
        "default execution time of {workload}: {:.1}s",
        offline_env.default_exec_time()
    );

    // Offline stage: TD3 + RDPER, trained by trial and error.
    let mut tuner = DeepCat::for_env(&offline_env, 2000, 42);
    println!(
        "offline training ({} iterations)...",
        tuner.offline_cfg.iterations
    );
    tuner.offline_train(&mut offline_env);

    // Online stage: the live cluster runs alongside other services, so the
    // optimum has drifted — exactly what online fine-tuning adapts to.
    let live = Cluster::cluster_a().with_background_load(0.15);
    let mut online_env = TuningEnv::for_workload(live, workload, 4242);
    println!("online tuning (5 steps, Twin-Q Optimizer on)...");
    let report = tuner.online_tune(&mut online_env, 5);

    println!("\nper-step results:");
    for s in &report.steps {
        println!(
            "  step {}: exec {:.1}s  reward {:+.3}  twin-Q rounds {}  {}",
            s.step + 1,
            s.exec_time_s,
            s.reward,
            s.twinq_iterations,
            if s.failed { "FAILED" } else { "" }
        );
    }
    println!(
        "\nbest configuration: {:.1}s ({:.2}x speedup over default)",
        report.best_exec_time_s,
        report.speedup()
    );
    println!(
        "total tuning cost: {:.1}s evaluation + {:.3}s recommendation",
        report.total_eval_s, report.total_rec_s
    );

    // Decode the winning action into concrete knob values.
    let space = online_env.spark().space();
    let cfg = space.denormalize(&report.best_action);
    println!("\nbest configuration (selected knobs):");
    for (def, value) in space.defs().iter().zip(&cfg.values).take(8) {
        println!("  {:45} = {} {}", def.name, value, def.unit);
    }
}
