//! Hardware migration: a model trained on the physical Cluster-A tunes the
//! same workload on the weaker VM Cluster-B — the Fig. 10 scenario.
//!
//! ```sh
//! cargo run --release --example hardware_migration
//! ```

use deepcat::{online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn main() {
    let workload = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let cluster_a = Cluster::cluster_a();
    let cluster_b = Cluster::cluster_b();
    println!(
        "Cluster-A: {} nodes x {} cores / {} MB",
        cluster_a.num_nodes(),
        cluster_a.node().cores,
        cluster_a.node().memory_mb
    );
    println!(
        "Cluster-B: {} nodes x {} cores / {} MB (VM)",
        cluster_b.num_nodes(),
        cluster_b.node().cores,
        cluster_b.node().memory_mb
    );

    println!("\noffline: training on Cluster-A...");
    let mut offline_env = TuningEnv::for_workload(cluster_a, workload, 21);
    let agent_cfg = AgentConfig::for_dims(offline_env.state_dim(), offline_env.action_dim());
    let (mut agent, _, _) = train_td3(
        &mut offline_env,
        agent_cfg,
        &OfflineConfig::deepcat(1500, 21),
        &[],
    );

    println!("online: tuning {workload} on Cluster-B...");
    let mut online_env = TuningEnv::for_workload(cluster_b, workload, 2223);
    let report = online_tune_td3(
        &mut agent,
        &mut online_env,
        &OnlineConfig::deepcat(5),
        "DeepCAT",
    );

    // Recommendations sized for Cluster-A get clipped to Cluster-B's limits
    // by the YARN model, as the paper describes.
    println!(
        "Cluster-B default: {:.1}s — best found: {:.1}s ({:.2}x speedup)",
        report.default_exec_time_s,
        report.best_exec_time_s,
        report.speedup()
    );
}
