//! Workload drift: a model trained offline on WordCount receives an online
//! tuning request for PageRank — the Fig. 9 adaptability scenario.
//!
//! ```sh
//! cargo run --release --example workload_drift
//! ```

use deepcat::{online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn main() {
    let trained_on = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let target = Workload::new(WorkloadKind::PageRank, InputSize::D1);

    println!("offline: training DeepCAT on {trained_on}...");
    let mut offline_env = TuningEnv::for_workload(Cluster::cluster_a(), trained_on, 11);
    let agent_cfg = AgentConfig::for_dims(offline_env.state_dim(), offline_env.action_dim());
    let (mut agent, _, _) = train_td3(
        &mut offline_env,
        agent_cfg,
        &OfflineConfig::deepcat(1500, 11),
        &[],
    );

    println!("online: a tuning request for {target} arrives...");
    let live = Cluster::cluster_a().with_background_load(0.15);
    let mut online_env = TuningEnv::for_workload(live, target, 1213);
    let report = online_tune_td3(
        &mut agent,
        &mut online_env,
        &OnlineConfig::deepcat(3),
        "DeepCAT",
    );

    println!(
        "default {target}: {:.1}s — best found: {:.1}s ({:.2}x) with {:.1}s total tuning cost",
        report.default_exec_time_s,
        report.best_exec_time_s,
        report.speedup(),
        report.total_cost_s(),
    );
    println!(
        "the offline knowledge transferred: no retraining, just {} online evaluations",
        report.steps.len()
    );
}
