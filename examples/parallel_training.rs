//! Parallel offline training: collect experience from several simulated
//! environments concurrently and compare against the serial trainer at the
//! same gradient budget.
//!
//! Note the honest caveat this example demonstrates: against the
//! *simulator*, one environment step costs microseconds, so the learner's
//! gradient steps dominate and parallel collection buys little wall-clock.
//! The architecture exists for the real deployment the paper targets,
//! where each "environment step" is a multi-minute Spark run — there the
//! collection threads are the whole game.
//!
//! ```sh
//! cargo run --release --example parallel_training
//! ```

use deepcat::{
    online_tune_td3, train_td3, train_td3_parallel, AgentConfig, OfflineConfig, OnlineConfig,
    ParallelConfig, TuningEnv,
};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
use std::time::Instant;

fn main() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let budget = 2000;

    let t0 = Instant::now();
    let serial_agent = {
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, 42);
        let ac = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        let (agent, _, _) = train_td3(&mut env, ac, &OfflineConfig::deepcat(budget, 42), &[]);
        agent
    };
    let serial_wall = t0.elapsed();

    let t0 = Instant::now();
    let (parallel_agent, _, stats) = {
        let make_env =
            |worker: usize| TuningEnv::for_workload(Cluster::cluster_a(), w, 42 + worker as u64);
        let env0 = make_env(0);
        let ac = AgentConfig::for_dims(env0.state_dim(), env0.action_dim());
        train_td3_parallel(
            make_env,
            ac,
            &OfflineConfig::deepcat(budget, 42),
            &ParallelConfig {
                workers: 8,
                ..Default::default()
            },
        )
    };
    let parallel_wall = t0.elapsed();

    println!("serial:   {budget} gradient steps in {serial_wall:?}");
    // With microsecond environment steps the learner dominates, so do not
    // expect a wall-clock win here — see the module docs.
    println!(
        "parallel: {} gradient steps in {parallel_wall:?} ({} transitions from 8 workers, {} weight syncs)",
        stats.gradient_steps, stats.transitions_collected, stats.weight_syncs
    );

    // Same online evaluation for both.
    for (name, agent) in [("serial", serial_agent), ("parallel", parallel_agent)] {
        let mut a = agent;
        let mut live =
            TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 7);
        let report = online_tune_td3(&mut a, &mut live, &OnlineConfig::deepcat(5), "DeepCAT");
        println!(
            "{name:8} model: best {:.1}s ({:.2}x speedup) after 5 online steps",
            report.best_exec_time_s,
            report.speedup()
        );
    }
}
