//! Tune a *custom* job DAG (here: a randomly generated synthetic pipeline)
//! instead of a named HiBench workload — what a downstream user with their
//! own Spark application would do.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use deepcat::{online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, TuningEnv};
use spark_sim::{synthetic_job, Cluster, SparkEnv, SynthParams};

fn main() {
    // A random 6-stage pipeline with joins and cached intermediates.
    let params = SynthParams {
        stages: 6,
        input_mb: 3072.0,
        ..Default::default()
    };
    let job = synthetic_job(&params, 99);
    println!(
        "synthetic pipeline: {} stages, {} levels, {:.0} MB cached at peak",
        job.stages.len(),
        job.levels().unwrap().len(),
        job.peak_cache_mb
    );

    let mk = |cluster: Cluster, seed: u64| {
        TuningEnv::new(
            SparkEnv::with_job(cluster, "my-pipeline", job.clone(), seed),
            5,
        )
    };

    let mut offline = mk(Cluster::cluster_a(), 42);
    println!("default execution: {:.1}s", offline.default_exec_time());

    let ac = AgentConfig::for_dims(offline.state_dim(), offline.action_dim());
    let (mut agent, _, _) = train_td3(&mut offline, ac, &OfflineConfig::deepcat(1500, 42), &[]);

    let mut live = mk(Cluster::cluster_a().with_background_load(0.15), 43);
    let report = online_tune_td3(&mut agent, &mut live, &OnlineConfig::deepcat(7), "DeepCAT");
    println!(
        "tuned: best {:.1}s ({:.2}x over default) in {:.1}s of tuning cost",
        report.best_exec_time_s,
        report.speedup(),
        report.total_cost_s()
    );

    // Export the winning configuration as deployable files.
    let space = live.spark().space();
    let cfg = space.denormalize(&report.best_action);
    let bundle = spark_sim::export_bundle(space, &cfg);
    println!("\n--- spark-defaults.conf (first lines) ---");
    for line in bundle.spark_defaults_conf.lines().take(6) {
        println!("{line}");
    }
}
