//! Dense row-major matrix with the handful of operations neural-network
//! training needs: GEMM (plain, A·Bᵀ and Aᵀ·B variants), element-wise maps,
//! broadcasting row additions and reductions.
//!
//! All storage is `f64`: the networks used by the tuner are tiny (tens of
//! thousands of parameters), so numeric robustness is worth far more than
//! the memory halving `f32` would give.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix with every entry set to `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector borrowing from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `self · other` — panics on inner-dimension mismatch.
    ///
    /// Uses the classic ikj loop order so the inner loop streams both the
    /// output row and the `other` row contiguously.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dims: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ`. Both operands are walked row-contiguously, so this is
    /// the cheapest product shape; layers store weights so forward passes use
    /// it.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dims: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` — used for weight gradients (`xᵀ · δ`).
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul dims: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise sum; panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise combine.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Add `row` (a `1 × cols` matrix) to every row — bias broadcast.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Sum over rows into a `1 × cols` matrix — bias gradient reduction.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`; panics on row mismatch.
    /// Critics consume `[state | action]` rows built with this.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Split columns at `at`, returning `(left, right)` copies.
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "split point out of range");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Stack row slices into a matrix; panics if widths differ.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut out = Matrix::zeros(rows.len(), cols);
        for (r, src) in rows.iter().enumerate() {
            assert_eq!(src.len(), cols, "ragged rows");
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Mean of all entries (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.5 - 1.0);
        let b = Matrix::from_fn(5, 4, |r, c| (r as f64 - c as f64) * 0.25);
        let fast = a.matmul_transpose_b(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f64 * 0.1);
        let fast = a.transpose_a_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint_shapes() {
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.get(2, 1), 3.0 + 20.0);
        let s = y.sum_rows();
        assert_eq!(s.rows(), 1);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 0), 0.0 + 1.0 + 2.0 + 30.0);
    }

    #[test]
    fn hconcat_hsplit_round_trip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| 100.0 + (r * 2 + c) as f64);
        let cat = a.hconcat(&b);
        let (l, r) = cat.hsplit(3);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn norm_and_mean() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.norm() - 5.0).abs() < 1e-12);
        assert!((m.mean() - 3.5).abs() < 1e-12);
    }
}
