//! Activation functions and their derivatives.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Activation applied element-wise after a dense layer's affine transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — hidden layers.
    Relu,
    /// Hyperbolic tangent — actor output heads squashing to (-1, 1).
    Tanh,
    /// Logistic sigmoid — actor output heads squashing to (0, 1), matching
    /// the paper's `[0,1]`-normalized knob actions.
    Sigmoid,
    /// No-op — critic Q-value heads.
    Identity,
}

impl Activation {
    /// Apply the activation to every entry of `z`.
    pub fn forward(self, z: &Matrix) -> Matrix {
        match self {
            Activation::Relu => z.map(|v| if v > 0.0 { v } else { 0.0 }),
            Activation::Tanh => z.map(f64::tanh),
            Activation::Sigmoid => z.map(sigmoid),
            Activation::Identity => z.clone(),
        }
    }

    /// Derivative evaluated from the *pre-activation* `z`.
    pub fn derivative(self, z: &Matrix) -> Matrix {
        match self {
            Activation::Relu => z.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Tanh => z.map(|v| {
                let t = v.tanh();
                1.0 - t * t
            }),
            Activation::Sigmoid => z.map(|v| {
                let s = sigmoid(v);
                s * (1.0 - s)
            }),
            Activation::Identity => Matrix::full(z.rows(), z.cols(), 1.0),
        }
    }
}

#[inline]
fn sigmoid(v: f64) -> f64 {
    // Split on sign to avoid exp overflow for large negative inputs.
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative(a: Activation, x: f64) -> f64 {
        let h = 1e-6;
        let m1 = Matrix::from_vec(1, 1, vec![x + h]);
        let m0 = Matrix::from_vec(1, 1, vec![x - h]);
        (a.forward(&m1).get(0, 0) - a.forward(&m0).get(0, 0)) / (2.0 * h)
    }

    #[test]
    fn derivatives_match_numeric() {
        for &a in &[Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            for &x in &[-3.0, -0.7, 0.1, 2.5] {
                let z = Matrix::from_vec(1, 1, vec![x]);
                let analytic = a.derivative(&z).get(0, 0);
                let numeric = numeric_derivative(a, x);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "{a:?} at {x}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_matches_away_from_kink() {
        for &x in &[-2.0, -0.5, 0.5, 2.0] {
            let z = Matrix::from_vec(1, 1, vec![x]);
            let analytic = Activation::Relu.derivative(&z).get(0, 0);
            let numeric = numeric_derivative(Activation::Relu, x);
            assert!((analytic - numeric).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let z = Matrix::from_vec(1, 2, vec![-1000.0, 1000.0]);
        let s = Activation::Sigmoid.forward(&z);
        assert!(s.get(0, 0) >= 0.0 && s.get(0, 0) < 1e-12);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-12);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn tanh_bounds() {
        let z = Matrix::from_vec(1, 3, vec![-50.0, 0.0, 50.0]);
        let t = Activation::Tanh.forward(&z);
        assert!((t.get(0, 0) + 1.0).abs() < 1e-9);
        assert_eq!(t.get(0, 1), 0.0);
        assert!((t.get(0, 2) - 1.0).abs() < 1e-9);
    }
}
