//! # tensor-nn
//!
//! A compact, dependency-light neural-network library: dense matrices, MLPs
//! with exact backpropagation, Adam/SGD optimizers, and the loss functions
//! actor-critic reinforcement learning needs.
//!
//! It exists because this workspace reproduces the DeepCAT configuration
//! auto-tuner (ICPP '22), whose agents are small dense actor/critic networks
//! originally built on PyTorch. Everything here is deterministic given a
//! seeded RNG, `f64` throughout, and gradient-checked against finite
//! differences in the test suite.
//!
//! ```
//! use tensor_nn::{Activation, Matrix, Mlp, Adam, loss};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Mlp::new(&[2, 32, 1], Activation::Relu, Activation::Identity, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! let x = Matrix::from_fn(16, 2, |r, c| (r + c) as f64 / 16.0);
//! let y = Matrix::from_fn(16, 1, |r, _| x.get(r, 0) + x.get(r, 1));
//! for _ in 0..200 {
//!     let cache = net.forward(&x);
//!     let grad = loss::mse_grad(&cache.output, &y);
//!     let (_, grads) = net.backward(&cache, &grad);
//!     opt.step(&mut net, &grads);
//! }
//! assert!(loss::mse(&net.infer(&x), &y) < 1e-2);
//! ```

pub mod activation;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use layer::{Dense, DenseCache, DenseGrad};
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpCache, MlpGrad};
pub use optim::{Adam, Sgd};
