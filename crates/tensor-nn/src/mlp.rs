//! Multi-layer perceptron assembled from [`Dense`] layers, with full
//! backpropagation and Polyak target-network updates.

use crate::activation::Activation;
use crate::layer::{Dense, DenseCache, DenseGrad};
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Forward-pass cache for a whole network.
#[derive(Clone, Debug)]
pub struct MlpCache {
    caches: Vec<DenseCache>,
    /// The network output (kept so callers can compute the loss gradient).
    pub output: Matrix,
}

/// Per-layer parameter gradients; aligned with [`Mlp::layers_mut`].
#[derive(Clone, Debug)]
pub struct MlpGrad {
    pub layers: Vec<DenseGrad>,
}

impl MlpGrad {
    /// Sum of squared entries across all parameter gradients.
    pub fn norm(&self) -> f64 {
        self.layers
            .iter()
            .map(|g| {
                let w = g.weight.norm();
                let b = g.bias.norm();
                w * w + b * b
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Scale all gradients in place (used for gradient ascent / averaging).
    pub fn scale_inplace(&mut self, s: f64) {
        for g in &mut self.layers {
            g.weight.map_inplace(|v| v * s);
            g.bias.map_inplace(|v| v * s);
        }
    }

    /// Clip by global norm: if the total norm exceeds `max_norm`, rescale.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            self.scale_inplace(max_norm / n);
        }
    }
}

impl Mlp {
    /// Build a network from layer sizes, e.g. `[9, 128, 128, 32]`, hidden
    /// activations `hidden`, output activation `out`.
    ///
    /// The output head is initialized with the small bound `3e-3` per the
    /// DDPG/TD3 convention so that the initial policy/value is near zero.
    pub fn new(sizes: &[usize], hidden: Activation, out: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2).take(sizes.len() - 2) {
            layers.push(Dense::new(w[0], w[1], hidden, rng));
        }
        let n = sizes.len();
        layers.push(Dense::with_bound(
            sizes[n - 2],
            sizes[n - 1],
            out,
            3e-3,
            rng,
        ));
        Self { layers }
    }

    /// Construct from explicit layers (used in tests).
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty());
        Self { layers }
    }

    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    pub fn output_dim(&self) -> usize {
        // PANIC-SAFETY: both constructors assert a non-empty layer stack.
        self.layers.last().expect("non-empty layer stack").out_dim()
    }

    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass with cache for backprop.
    pub fn forward(&self, input: &Matrix) -> MlpCache {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &self.layers {
            let (y, cache) = layer.forward(&x);
            caches.push(cache);
            x = y;
        }
        MlpCache { caches, output: x }
    }

    /// Inference without caching.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = self.layers[0].infer(input);
        for layer in &self.layers[1..] {
            x = layer.infer(&x);
        }
        x
    }

    /// Backpropagate `grad_output` (∂L/∂output) through the cached pass;
    /// returns (∂L/∂input, parameter gradients).
    pub fn backward(&self, cache: &MlpCache, grad_output: &Matrix) -> (Matrix, MlpGrad) {
        let mut grad = grad_output.clone();
        let mut grads = vec![None; self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (gin, g) = layer.backward(&cache.caches[i], &grad);
            grads[i] = Some(g);
            grad = gin;
        }
        (
            grad,
            MlpGrad {
                layers: grads.into_iter().map(Option::unwrap).collect(),
            },
        )
    }

    /// Polyak (soft) update from `source`: `θ ← τ·θ_src + (1−τ)·θ`.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(
            self.layers.len(),
            source.layers.len(),
            "network shape mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&source.layers) {
            dst.soft_update_from(src, tau);
        }
    }

    /// Hard copy of all parameters from `source`.
    pub fn copy_from(&mut self, source: &Mlp) {
        self.soft_update_from(source, 1.0);
    }

    /// True if any parameter is NaN/inf — a training-blowup tripwire.
    pub fn has_non_finite(&self) -> bool {
        self.layers
            .iter()
            .any(|l| l.weight.has_non_finite() || l.bias.has_non_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_net(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            &[3, 8, 8, 2],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        )
    }

    #[test]
    fn shapes_and_param_count() {
        let net = toy_net(1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.param_count(), (3 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2));
        let y = net.infer(&Matrix::zeros(7, 3));
        assert_eq!((y.rows(), y.cols()), (7, 2));
    }

    #[test]
    fn full_network_gradient_check() {
        // tanh everywhere so the loss surface is smooth for numeric checks.
        let mut rng = StdRng::seed_from_u64(7);
        let net = Mlp::new(&[4, 6, 3], Activation::Tanh, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(3, 4, |r, c| 0.05 * (r * 4 + c) as f64 - 0.2);
        let loss = |n: &Mlp| {
            let y = n.infer(&x);
            y.as_slice().iter().map(|v| v * v).sum::<f64>() * 0.5
        };
        let cache = net.forward(&x);
        let (grad_x, grads) = net.backward(&cache, &cache.output); // dL/dy = y for 0.5*||y||²

        let h = 1e-6;
        for (li, layer) in net.layers().iter().enumerate() {
            for &(r, c) in &[(0usize, 0usize), (layer.out_dim() - 1, layer.in_dim() - 1)] {
                let mut np = net.clone();
                let w = np.layers_mut()[li].weight.get(r, c);
                np.layers_mut()[li].weight.set(r, c, w + h);
                let mut nm = net.clone();
                nm.layers_mut()[li].weight.set(r, c, w - h);
                let numeric = (loss(&np) - loss(&nm)) / (2.0 * h);
                let analytic = grads.layers[li].weight.get(r, c);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "layer {li} W[{r},{c}]: {analytic} vs {numeric}"
                );
            }
        }
        // Input gradient.
        let mut xp = x.clone();
        xp.set(1, 2, xp.get(1, 2) + h);
        let mut xm = x.clone();
        xm.set(1, 2, xm.get(1, 2) - h);
        let lp = {
            let y = net.infer(&xp);
            y.as_slice().iter().map(|v| v * v).sum::<f64>() * 0.5
        };
        let lm = {
            let y = net.infer(&xm);
            y.as_slice().iter().map(|v| v * v).sum::<f64>() * 0.5
        };
        assert!((grad_x.get(1, 2) - (lp - lm) / (2.0 * h)).abs() < 1e-5);
    }

    #[test]
    fn soft_update_converges_to_source() {
        let mut a = toy_net(10);
        let b = toy_net(11);
        for _ in 0..200 {
            a.soft_update_from(&b, 0.1);
        }
        let diff: f64 = a
            .layers()
            .iter()
            .zip(b.layers())
            .map(|(x, y)| x.weight.sub(&y.weight).norm())
            .sum();
        assert!(diff < 1e-6, "diff = {diff}");
    }

    #[test]
    fn copy_from_is_exact() {
        let mut a = toy_net(20);
        let b = toy_net(21);
        a.copy_from(&b);
        for (x, y) in a.layers().iter().zip(b.layers()) {
            assert_eq!(x.weight, y.weight);
            assert_eq!(x.bias, y.bias);
        }
    }

    #[test]
    fn grad_clip_bounds_norm() {
        let net = toy_net(30);
        let x = Matrix::from_fn(2, 3, |_, _| 10.0);
        let cache = net.forward(&x);
        let big = Matrix::full(2, 2, 1e6);
        let (_, mut grads) = net.backward(&cache, &big);
        grads.clip_global_norm(1.0);
        assert!(grads.norm() <= 1.0 + 1e-9);
    }
}
