//! Gradient-descent optimizers operating on [`Mlp`] parameters.

use crate::matrix::Matrix;
use crate::mlp::{Mlp, MlpGrad};
use serde::{Deserialize, Serialize};

/// Plain SGD with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f64,
    pub momentum: f64,
    velocity: Option<Vec<(Matrix, Matrix)>>,
}

impl Sgd {
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: None,
        }
    }

    /// Apply one descent step: `θ ← θ − lr · (momentum-smoothed) g`.
    pub fn step(&mut self, net: &mut Mlp, grads: &MlpGrad) {
        if self.momentum == 0.0 {
            for (layer, g) in net.layers_mut().iter_mut().zip(&grads.layers) {
                layer.weight.axpy(-self.lr, &g.weight);
                layer.bias.axpy(-self.lr, &g.bias);
            }
            return;
        }
        let vel = self.velocity.get_or_insert_with(|| {
            net.layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.weight.rows(), l.weight.cols()),
                        Matrix::zeros(l.bias.rows(), l.bias.cols()),
                    )
                })
                .collect()
        });
        for ((layer, g), (vw, vb)) in net.layers_mut().iter_mut().zip(&grads.layers).zip(vel) {
            *vw = vw.scale(self.momentum).add(&g.weight);
            *vb = vb.scale(self.momentum).add(&g.bias);
            layer.weight.axpy(-self.lr, vw);
            layer.bias.axpy(-self.lr, vb);
        }
    }
}

/// Adam optimizer (Kingma & Ba 2015) with bias correction — the optimizer
/// used for all actor/critic networks, matching the PyTorch defaults the
/// paper's implementation would have used.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    /// First/second moment per layer: (m_w, v_w, m_b, v_b).
    moments: Option<Vec<(Matrix, Matrix, Matrix, Matrix)>>,
}

impl Adam {
    /// Adam with the conventional `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: None,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam step to `net` using `grads` (gradients of the loss to
    /// *minimize*; negate beforehand for gradient ascent).
    pub fn step(&mut self, net: &mut Mlp, grads: &MlpGrad) {
        assert_eq!(
            net.layers().len(),
            grads.layers.len(),
            "grad/network layer mismatch"
        );
        let moments = self.moments.get_or_insert_with(|| {
            net.layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.weight.rows(), l.weight.cols()),
                        Matrix::zeros(l.weight.rows(), l.weight.cols()),
                        Matrix::zeros(l.bias.rows(), l.bias.cols()),
                        Matrix::zeros(l.bias.rows(), l.bias.cols()),
                    )
                })
                .collect()
        });
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for ((layer, g), (mw, vw, mb, vb)) in net
            .layers_mut()
            .iter_mut()
            .zip(&grads.layers)
            .zip(moments.iter_mut())
        {
            adam_update(
                &mut layer.weight,
                &g.weight,
                mw,
                vw,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bc1,
                bc2,
            );
            adam_update(
                &mut layer.bias,
                &g.bias,
                mb,
                vb,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bc1,
                bc2,
            );
        }
    }

    /// Forget moment estimates (e.g. when re-purposing the optimizer for a
    /// fresh network of the same shape).
    pub fn reset(&mut self) {
        self.t = 0;
        self.moments = None;
    }
}

#[allow(clippy::too_many_arguments)]
fn adam_update(
    param: &mut Matrix,
    grad: &Matrix,
    m: &mut Matrix,
    v: &mut Matrix,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bias_corr1: f64,
    bias_corr2: f64,
) {
    let p = param.as_mut_slice();
    let g = grad.as_slice();
    let m = m.as_mut_slice();
    let v = v.as_mut_slice();
    assert_eq!(p.len(), g.len(), "adam shape mismatch");
    for i in 0..p.len() {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
        let m_hat = m[i] / bias_corr1;
        let v_hat = v[i] / bias_corr2;
        p[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::mse_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train y = 2x₀ − x₁ + 0.5 on a tiny net; both optimizers must fit it.
    fn fit(opt_is_adam: bool) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Mlp::new(
            &[2, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let x = Matrix::from_fn(32, 2, |r, c| ((r * 2 + c) % 13) as f64 / 13.0 - 0.5);
        let y = Matrix::from_fn(32, 1, |r, _| 2.0 * x.get(r, 0) - x.get(r, 1) + 0.5);
        let mut adam = Adam::new(0.01);
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..800 {
            let cache = net.forward(&x);
            let grad_out = mse_grad(&cache.output, &y);
            let (_, grads) = net.backward(&cache, &grad_out);
            if opt_is_adam {
                adam.step(&mut net, &grads);
            } else {
                sgd.step(&mut net, &grads);
            }
        }
        let out = net.infer(&x);
        out.sub(&y).norm() / (32f64).sqrt()
    }

    #[test]
    fn adam_fits_linear_function() {
        assert!(fit(true) < 0.02, "rmse = {}", fit(true));
    }

    #[test]
    fn sgd_momentum_fits_linear_function() {
        assert!(fit(false) < 0.05, "rmse = {}", fit(false));
    }

    #[test]
    fn adam_step_counter_advances() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        let x = Matrix::zeros(1, 2);
        let cache = net.forward(&x);
        let (_, grads) = net.backward(&cache, &Matrix::full(1, 1, 1.0));
        let mut adam = Adam::new(1e-3);
        assert_eq!(adam.steps(), 0);
        adam.step(&mut net, &grads);
        adam.step(&mut net, &grads);
        assert_eq!(adam.steps(), 2);
        adam.reset();
        assert_eq!(adam.steps(), 0);
    }
}
