//! Loss functions and their gradients with respect to predictions.

use crate::matrix::Matrix;

/// Mean squared error `(1/N) Σ (pred − target)²` where `N` is the total
/// number of entries.
pub fn mse(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let n = pred.len().max(1) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / n
}

/// Gradient of [`mse`] with respect to `pred`: `2 (pred − target) / N`.
pub fn mse_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    let n = pred.len().max(1) as f64;
    pred.zip(target, move |p, t| 2.0 * (p - t) / n)
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over entries.
/// Quadratic near zero, linear in the tails — robust to the occasional
/// extreme TD target produced by an OOM-penalty transition.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f64) -> f64 {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "huber shape mismatch"
    );
    let n = pred.len().max(1) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let e = p - t;
            if e.abs() <= delta {
                0.5 * e * e
            } else {
                delta * (e.abs() - 0.5 * delta)
            }
        })
        .sum::<f64>()
        / n
}

/// Gradient of [`huber`] with respect to `pred`.
pub fn huber_grad(pred: &Matrix, target: &Matrix, delta: f64) -> Matrix {
    let n = pred.len().max(1) as f64;
    pred.zip(target, move |p, t| {
        let e = p - t;
        if e.abs() <= delta {
            e / n
        } else {
            delta * e.signum() / n
        }
    })
}

/// Weighted MSE: per-row importance weights (PER importance sampling).
/// `weights` has one entry per row of `pred`.
pub fn weighted_mse_grad(pred: &Matrix, target: &Matrix, weights: &[f64]) -> Matrix {
    assert_eq!(pred.rows(), weights.len(), "one weight per row required");
    let n = pred.len().max(1) as f64;
    Matrix::from_fn(pred.rows(), pred.cols(), |r, c| {
        2.0 * weights[r] * (pred.get(r, c) - target.get(r, c)) / n
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_is_zero() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        assert!((mse(&p, &t) - (1.0 + 4.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mse_grad_matches_numeric() {
        let p = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        let t = Matrix::from_vec(1, 3, vec![0.0, 0.0, 1.0]);
        let g = mse_grad(&p, &t);
        let h = 1e-6;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += h;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= h;
            let numeric = (mse(&pp, &t) - mse(&pm, &t)) / (2.0 * h);
            assert!((g.as_slice()[i] - numeric).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_equals_mse_half_in_quadratic_zone() {
        let p = Matrix::from_vec(1, 1, vec![0.3]);
        let t = Matrix::from_vec(1, 1, vec![0.0]);
        assert!((huber(&p, &t, 1.0) - 0.5 * 0.09).abs() < 1e-12);
    }

    #[test]
    fn huber_grad_matches_numeric() {
        let p = Matrix::from_vec(1, 3, vec![0.2, -5.0, 3.0]);
        let t = Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let g = huber_grad(&p, &t, 1.0);
        let h = 1e-6;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += h;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= h;
            let numeric = (huber(&pp, &t, 1.0) - huber(&pm, &t, 1.0)) / (2.0 * h);
            assert!((g.as_slice()[i] - numeric).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn weighted_mse_grad_scales_rows() {
        let p = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let t = Matrix::zeros(2, 1);
        let g = weighted_mse_grad(&p, &t, &[1.0, 3.0]);
        assert!((g.get(1, 0) / g.get(0, 0) - 3.0).abs() < 1e-12);
    }
}
