//! A single dense (fully-connected) layer: `y = act(x · Wᵀ + b)`.
//!
//! Weights are stored as `out × in` so the forward pass is a row-contiguous
//! `x · Wᵀ` product ([`Matrix::matmul_transpose_b`]).

use crate::activation::Activation;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dense layer parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `out_dim × in_dim`.
    pub weight: Matrix,
    /// Bias, `1 × out_dim`.
    pub bias: Matrix,
    /// Activation applied after the affine transform.
    pub activation: Activation,
}

/// Cached values from one forward pass, consumed by [`Dense::backward`].
#[derive(Clone, Debug)]
pub struct DenseCache {
    /// Layer input, `batch × in_dim`.
    pub input: Matrix,
    /// Pre-activation `x · Wᵀ + b`, `batch × out_dim`.
    pub pre_activation: Matrix,
}

/// Parameter gradients for one layer, same shapes as the parameters.
#[derive(Clone, Debug)]
pub struct DenseGrad {
    pub weight: Matrix,
    pub bias: Matrix,
}

impl Dense {
    /// New layer with uniform "fan-in" initialization `U(−1/√in, 1/√in)`
    /// (the scheme DDPG/TD3 reference implementations use for hidden layers).
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        let bound = 1.0 / (in_dim as f64).sqrt();
        Self::with_bound(in_dim, out_dim, activation, bound, rng)
    }

    /// New layer with uniform initialization in `(−bound, bound)`. Output
    /// heads of actor/critic networks conventionally use a small bound
    /// (e.g. 3e-3) so initial outputs sit near zero.
    pub fn with_bound(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        bound: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let mut sample = || rng.gen_range(-bound..bound);
        Self {
            weight: Matrix::from_fn(out_dim, in_dim, |_, _| sample()),
            bias: Matrix::from_fn(1, out_dim, |_, _| sample()),
            activation,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Forward pass; returns the activated output and the cache needed for
    /// backprop.
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        let pre = input
            .matmul_transpose_b(&self.weight)
            .add_row_broadcast(&self.bias);
        let out = self.activation.forward(&pre);
        (
            out,
            DenseCache {
                input: input.clone(),
                pre_activation: pre,
            },
        )
    }

    /// Forward pass without caching — inference only.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let pre = input
            .matmul_transpose_b(&self.weight)
            .add_row_broadcast(&self.bias);
        self.activation.forward(&pre)
    }

    /// Backward pass. `grad_output` is ∂L/∂y (`batch × out_dim`); returns
    /// (∂L/∂x, parameter gradients).
    pub fn backward(&self, cache: &DenseCache, grad_output: &Matrix) -> (Matrix, DenseGrad) {
        // δ = ∂L/∂z = ∂L/∂y ⊙ act'(z)
        let delta = grad_output.hadamard(&self.activation.derivative(&cache.pre_activation));
        // ∂L/∂W = δᵀ · x  (out × in)
        let grad_w = delta.transpose_a_matmul(&cache.input);
        // ∂L/∂b = column sums of δ
        let grad_b = delta.sum_rows();
        // ∂L/∂x = δ · W  (batch × in)
        let grad_input = delta.matmul(&self.weight);
        (
            grad_input,
            DenseGrad {
                weight: grad_w,
                bias: grad_b,
            },
        )
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Polyak update `θ ← τ·other + (1−τ)·θ` used for target networks.
    pub fn soft_update_from(&mut self, other: &Dense, tau: f64) {
        polyak(&mut self.weight, &other.weight, tau);
        polyak(&mut self.bias, &other.bias, tau);
    }
}

fn polyak(dst: &mut Matrix, src: &Matrix, tau: f64) {
    assert_eq!(
        (dst.rows(), dst.cols()),
        (src.rows(), src.cols()),
        "polyak shape mismatch"
    );
    for (d, &s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d = tau * s + (1.0 - tau) * *d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::zeros(5, 4);
        let (y, cache) = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        assert_eq!(
            (cache.pre_activation.rows(), cache.pre_activation.cols()),
            (5, 3)
        );
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(4, 3, |r, c| (r as f64 - c as f64) * 0.3);
        let (y, _) = layer.forward(&x);
        assert_eq!(y, layer.infer(&x));
    }

    #[test]
    fn backward_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(2, 3, |r, c| 0.1 + 0.2 * (r * 3 + c) as f64);
        // Loss = sum of outputs, so grad_output = ones.
        let loss = |l: &Dense| l.infer(&x).as_slice().iter().sum::<f64>();
        let (y, cache) = layer.forward(&x);
        let ones = Matrix::full(y.rows(), y.cols(), 1.0);
        let (grad_x, grads) = layer.backward(&cache, &ones);

        let h = 1e-6;
        // Check a few weight entries.
        for &(r, c) in &[(0usize, 0usize), (1, 2), (0, 1)] {
            let mut lp = layer.clone();
            lp.weight.set(r, c, lp.weight.get(r, c) + h);
            let mut lm = layer.clone();
            lm.weight.set(r, c, lm.weight.get(r, c) - h);
            let numeric = (loss(&lp) - loss(&lm)) / (2.0 * h);
            assert!(
                (grads.weight.get(r, c) - numeric).abs() < 1e-5,
                "dW[{r},{c}]: {} vs {numeric}",
                grads.weight.get(r, c)
            );
        }
        // Check bias.
        for c in 0..2 {
            let mut lp = layer.clone();
            lp.bias.set(0, c, lp.bias.get(0, c) + h);
            let mut lm = layer.clone();
            lm.bias.set(0, c, lm.bias.get(0, c) - h);
            let numeric = (loss(&lp) - loss(&lm)) / (2.0 * h);
            assert!((grads.bias.get(0, c) - numeric).abs() < 1e-5);
        }
        // Check input gradient.
        for &(r, c) in &[(0usize, 0usize), (1, 2)] {
            let mut xp = x.clone();
            xp.set(r, c, xp.get(r, c) + h);
            let mut xm = x.clone();
            xm.set(r, c, xm.get(r, c) - h);
            let numeric = (layer.infer(&xp).as_slice().iter().sum::<f64>()
                - layer.infer(&xm).as_slice().iter().sum::<f64>())
                / (2.0 * h);
            assert!((grad_x.get(r, c) - numeric).abs() < 1e-5);
        }
    }

    #[test]
    fn soft_update_interpolates() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = Dense::new(2, 2, Activation::Identity, &mut rng);
        let b = Dense::new(2, 2, Activation::Identity, &mut rng);
        let before = a.weight.get(0, 0);
        let target = b.weight.get(0, 0);
        a.soft_update_from(&b, 0.25);
        let after = a.weight.get(0, 0);
        assert!((after - (0.25 * target + 0.75 * before)).abs() < 1e-12);
    }

    #[test]
    fn output_head_small_init_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let head = Dense::with_bound(64, 1, Activation::Identity, 3e-3, &mut rng);
        assert!(head.weight.as_slice().iter().all(|v| v.abs() < 3e-3));
    }
}
