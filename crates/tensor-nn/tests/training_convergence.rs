//! Training-level integration tests: the library must be able to *learn*,
//! not just compute gradients — XOR (non-linear separation), robust
//! regression with Huber loss, and deeper stacks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor_nn::{loss, Activation, Adam, Matrix, Mlp};

#[test]
fn learns_xor() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, &mut rng);
    let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
    let mut opt = Adam::new(0.05);
    for _ in 0..1500 {
        let cache = net.forward(&x);
        let grad = loss::mse_grad(&cache.output, &y);
        let (_, grads) = net.backward(&cache, &grad);
        opt.step(&mut net, &grads);
    }
    let out = net.infer(&x);
    for (i, target) in [0.0, 1.0, 1.0, 0.0].iter().enumerate() {
        let p = out.get(i, 0);
        assert!(
            (p - target).abs() < 0.2,
            "XOR row {i}: predicted {p:.3}, expected {target}"
        );
    }
}

#[test]
fn huber_resists_outliers_better_than_mse() {
    // y = x with one wild outlier; Huber-trained weights stay closer to 1.
    let xs: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
    let mut ys: Vec<f64> = xs.clone();
    ys[10] = 50.0; // outlier
    let x = Matrix::from_vec(20, 1, xs);
    let y = Matrix::from_vec(20, 1, ys);

    let fit = |use_huber: bool| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Mlp::new(
            &[1, 1],
            Activation::Identity,
            Activation::Identity,
            &mut rng,
        );
        let mut opt = Adam::new(0.02);
        for _ in 0..2000 {
            let cache = net.forward(&x);
            let grad = if use_huber {
                loss::huber_grad(&cache.output, &y, 1.0)
            } else {
                loss::mse_grad(&cache.output, &y)
            };
            let (_, grads) = net.backward(&cache, &grad);
            opt.step(&mut net, &grads);
        }
        // Error against the clean line y = x at a held-out point.
        (net.infer(&Matrix::from_vec(1, 1, vec![0.5])).get(0, 0) - 0.5).abs()
    };
    let huber_err = fit(true);
    let mse_err = fit(false);
    assert!(
        huber_err < mse_err,
        "huber {huber_err:.3} should beat mse {mse_err:.3} under outliers"
    );
}

#[test]
fn four_layer_network_trains_stably() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Mlp::new(
        &[3, 32, 32, 32, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let x = Matrix::from_fn(64, 3, |r, c| ((r * 3 + c) % 17) as f64 / 17.0 - 0.5);
    let y = Matrix::from_fn(64, 1, |r, _| {
        let row = [x.get(r, 0), x.get(r, 1), x.get(r, 2)];
        (row[0] * 2.0 - row[1]).sin() + row[2]
    });
    let mut opt = Adam::new(3e-3);
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for i in 0..2000 {
        let cache = net.forward(&x);
        last_loss = loss::mse(&cache.output, &y);
        if i == 0 {
            first_loss = Some(last_loss);
        }
        let grad = loss::mse_grad(&cache.output, &y);
        let (_, grads) = net.backward(&cache, &grad);
        opt.step(&mut net, &grads);
    }
    assert!(!net.has_non_finite(), "deep stack must not blow up");
    assert!(
        last_loss < first_loss.unwrap() * 0.05,
        "loss {first_loss:?} → {last_loss} should shrink 20x"
    );
}

#[test]
fn batch_and_single_row_inference_agree() {
    let mut rng = StdRng::seed_from_u64(4);
    let net = Mlp::new(&[4, 16, 2], Activation::Relu, Activation::Tanh, &mut rng);
    let batch = Matrix::from_fn(8, 4, |r, c| (r as f64 + c as f64) * 0.1);
    let batched = net.infer(&batch);
    for r in 0..8 {
        let single = net.infer(&Matrix::row_vector(batch.row(r)));
        for c in 0..2 {
            assert!(
                (batched.get(r, c) - single.get(0, c)).abs() < 1e-12,
                "row {r} col {c}"
            );
        }
    }
}
