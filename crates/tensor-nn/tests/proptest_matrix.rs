//! Property-based tests of the matrix algebra backing all networks.

use proptest::prelude::*;
use tensor_nn::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 5),
        c in matrix(4, 5),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involutive(a in matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_b_agrees_with_naive(a in matrix(3, 5), b in matrix(4, 5)) {
        let fast = a.matmul_transpose_b(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_a_matmul_agrees_with_naive(a in matrix(5, 3), b in matrix(5, 4)) {
        let fast = a.transpose_a_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_rows_preserves_total(a in matrix(6, 4)) {
        let total: f64 = a.as_slice().iter().sum();
        let rowsum: f64 = a.sum_rows().as_slice().iter().sum();
        prop_assert!((total - rowsum).abs() < 1e-9);
    }

    #[test]
    fn hconcat_then_split_round_trips(a in matrix(3, 4), b in matrix(3, 2)) {
        let (l, r) = a.hconcat(&b).hsplit(4);
        prop_assert_eq!(l, a);
        prop_assert_eq!(r, b);
    }

    #[test]
    fn norm_is_absolutely_homogeneous(a in matrix(3, 3), s in -5.0f64..5.0) {
        let scaled = a.scale(s);
        prop_assert!((scaled.norm() - s.abs() * a.norm()).abs() < 1e-9 * (1.0 + a.norm()));
    }

    #[test]
    fn axpy_matches_add_scale(a in matrix(2, 3), b in matrix(2, 3), alpha in -3.0f64..3.0) {
        let mut x = a.clone();
        x.axpy(alpha, &b);
        let y = a.add(&b.scale(alpha));
        for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }
}
