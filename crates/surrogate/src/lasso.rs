//! Lasso regression by cyclic coordinate descent — OtterTune's knob-ranking
//! step: knobs whose coefficients survive the L1 penalty longest are the
//! important ones.

/// A fitted lasso model on standardized features.
#[derive(Clone, Debug)]
pub struct Lasso {
    /// Coefficients in original feature order (for standardized features).
    pub coefficients: Vec<f64>,
    pub intercept: f64,
    /// Feature means used for standardization.
    pub feature_means: Vec<f64>,
    /// Feature standard deviations used for standardization.
    pub feature_stds: Vec<f64>,
}

impl Lasso {
    /// Fit with penalty `lambda` using `iters` sweeps of coordinate descent.
    /// Features are standardized internally; `y` is centered.
    pub fn fit(x: &[Vec<f64>], y: &[f64], lambda: f64, iters: usize) -> Self {
        let n = x.len();
        assert!(n > 0 && n == y.len(), "need matching non-empty data");
        let d = x[0].len();
        // Standardize.
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for j in 0..d {
            let m: f64 = x.iter().map(|r| r[j]).sum::<f64>() / n as f64;
            let v: f64 = x.iter().map(|r| (r[j] - m) * (r[j] - m)).sum::<f64>() / n as f64;
            means[j] = m;
            stds[j] = v.sqrt().max(1e-12);
        }
        let xs: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - means[j]) / stds[j])
                    .collect()
            })
            .collect();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut beta = vec![0.0; d];
        let mut residual = yc.clone();
        // Column squared norms (all ≈ n after standardization).
        let col_sq: Vec<f64> = (0..d)
            .map(|j| xs.iter().map(|r| r[j] * r[j]).sum::<f64>().max(1e-12))
            .collect();
        for _ in 0..iters {
            for j in 0..d {
                // rho = x_jᵀ(residual + x_j β_j)
                let mut rho = 0.0;
                for (r, row) in residual.iter().zip(&xs) {
                    rho += row[j] * r;
                }
                rho += col_sq[j] * beta[j];
                let new_beta = soft_threshold(rho, lambda * n as f64) / col_sq[j];
                if new_beta != beta[j] {
                    let delta = new_beta - beta[j];
                    for (r, row) in residual.iter_mut().zip(&xs) {
                        *r -= row[j] * delta;
                    }
                    beta[j] = new_beta;
                }
            }
        }
        Lasso {
            coefficients: beta,
            intercept: y_mean,
            feature_means: means,
            feature_stds: stds,
        }
    }

    /// Predict for a raw (unstandardized) feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + x.iter()
                .enumerate()
                .map(|(j, &v)| {
                    self.coefficients[j] * (v - self.feature_means[j]) / self.feature_stds[j]
                })
                .sum::<f64>()
    }

    /// Indices of non-zero-coefficient features, by descending |coef|.
    pub fn selected_features(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.coefficients.len())
            .filter(|&j| self.coefficients[j] != 0.0)
            .collect();
        idx.sort_by(|&a, &b| {
            self.coefficients[b]
                .abs()
                .total_cmp(&self.coefficients[a].abs())
        });
        idx
    }
}

fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// OtterTune-style knob ranking: run a lasso path (decreasing λ) and rank
/// knobs by the order in which their coefficients become non-zero.
pub fn rank_knobs(x: &[Vec<f64>], y: &[f64], path_len: usize) -> Vec<usize> {
    let d = x.first().map(|r| r.len()).unwrap_or(0);
    let mut order: Vec<usize> = Vec::with_capacity(d);
    let mut seen = vec![false; d];
    // From strong penalty (nothing survives) to weak (everything does).
    for k in 0..path_len {
        // CAST-SAFETY: k is a small path index (bounded by the path
        // length constant), far below i32::MAX.
        let lambda = 1.0 * (0.5f64).powi(k as i32);
        let model = Lasso::fit(x, y, lambda, 60);
        for &j in &model.selected_features() {
            if !seen[j] {
                seen[j] = true;
                order.push(j);
            }
        }
    }
    // Anything never selected goes last, in index order.
    for j in 0..d {
        if !seen[j] {
            order.push(j);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(n: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 5·x0 − 3·x2 + noise; x1, x3, x4 irrelevant.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..5).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 5.0 * r[0] - 3.0 * r[2] + 0.05 * rng.gen::<f64>())
            .collect();
        (x, y)
    }

    #[test]
    fn soft_threshold_shapes() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn lasso_recovers_sparse_signal() {
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = synthetic(200, &mut rng);
        let model = Lasso::fit(&x, &y, 0.05, 100);
        let sel = model.selected_features();
        assert!(sel.contains(&0), "x0 must be selected: {sel:?}");
        assert!(sel.contains(&2), "x2 must be selected: {sel:?}");
        // Irrelevant features should be zeroed or tiny.
        for &j in &[1usize, 3, 4] {
            assert!(
                model.coefficients[j].abs() < 0.2,
                "coef[{j}] = {}",
                model.coefficients[j]
            );
        }
    }

    #[test]
    fn strong_penalty_zeroes_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = synthetic(100, &mut rng);
        let model = Lasso::fit(&x, &y, 100.0, 50);
        assert!(model.coefficients.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn prediction_tracks_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = synthetic(300, &mut rng);
        let model = Lasso::fit(&x, &y, 0.01, 150);
        let rmse: f64 = (x
            .iter()
            .zip(&y)
            .map(|(r, &t)| (model.predict(r) - t).powi(2))
            .sum::<f64>()
            / x.len() as f64)
            .sqrt();
        assert!(rmse < 0.3, "rmse {rmse}");
    }

    #[test]
    fn rank_knobs_puts_strong_knob_first() {
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = synthetic(200, &mut rng);
        let order = rank_knobs(&x, &y, 10);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], 0, "strongest knob x0 first: {order:?}");
        assert!(order[1] == 2, "then x2: {order:?}");
    }
}
