//! Acquisition functions for Bayesian optimization. OtterTune uses
//! Expected Improvement over its GP surrogate; for a minimization target
//! (execution time) EI is computed against the incumbent best (lowest)
//! observation.

use crate::gp::GaussianProcess;

/// Standard normal probability density.
pub fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution via the Abramowitz–Stegun
/// erf approximation (max abs error ≈ 1.5e-7).
pub fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // A&S 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement *below* the incumbent `best` (minimization):
/// `EI(x) = (best − μ − ξ)·Φ(z) + σ·φ(z)`, `z = (best − μ − ξ)/σ`.
pub fn expected_improvement(gp: &GaussianProcess, q: &[f64], best: f64, xi: f64) -> f64 {
    let (mu, var) = gp.predict(q);
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best - mu - xi).max(0.0);
    }
    let imp = best - mu - xi;
    let z = imp / sigma;
    (imp * big_phi(z) + sigma * phi(z)).max(0.0)
}

/// Lower-confidence bound for minimization: `LCB(x) = μ(x) − κ·σ(x)`.
/// Smaller is better; an alternative acquisition to EI used in the
/// acquisition ablation bench.
pub fn lower_confidence_bound(gp: &GaussianProcess, q: &[f64], kappa: f64) -> f64 {
    let (mu, var) = gp.predict(q);
    mu - kappa * var.sqrt()
}

/// Minimize LCB by random search (counterpart to [`maximize_ei`]).
pub fn minimize_lcb(
    gp: &GaussianProcess,
    dim: usize,
    kappa: f64,
    candidates: usize,
    rng: &mut impl rand::Rng,
) -> Vec<f64> {
    let mut best_x = vec![0.5; dim];
    let mut best_v = f64::INFINITY;
    for _ in 0..candidates {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
        let v = lower_confidence_bound(gp, &x, kappa);
        if v < best_v {
            best_v = v;
            best_x = x;
        }
    }
    best_x
}

/// Maximize EI by pure random search plus local Gaussian refinement around
/// the incumbent top candidates — the cheap, derivative-free strategy
/// ML-pipeline tuners use in practice.
pub fn maximize_ei(
    gp: &GaussianProcess,
    dim: usize,
    best: f64,
    candidates: usize,
    rng: &mut impl rand::Rng,
) -> Vec<f64> {
    let mut best_x = vec![0.5; dim];
    let mut best_ei = f64::MIN;
    // Global random phase.
    let mut top: Vec<(f64, Vec<f64>)> = Vec::new();
    for _ in 0..candidates {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
        let ei = expected_improvement(gp, &x, best, 0.01);
        if top.len() < 8 {
            top.push((ei, x));
            top.sort_by(|a, b| b.0.total_cmp(&a.0));
        } else if top.last().is_some_and(|worst| ei > worst.0) {
            top.pop();
            top.push((ei, x));
            top.sort_by(|a, b| b.0.total_cmp(&a.0));
        }
    }
    // Local refinement around the top global candidates.
    for (ei0, x0) in top {
        if ei0 > best_ei {
            best_ei = ei0;
            best_x = x0.clone();
        }
        for _ in 0..32 {
            let x: Vec<f64> = x0
                .iter()
                .map(|&v| (v + 0.05 * (rng.gen::<f64>() - 0.5) * 2.0).clamp(0.0, 1.0))
                .collect();
            let ei = expected_improvement(gp, &x, best, 0.01);
            if ei > best_ei {
                best_ei = ei;
                best_x = x;
            }
        }
    }
    best_x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::{KernelKind, RbfKernel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_cdf_sanity() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-7);
        assert!((big_phi(1.96) - 0.975).abs() < 1e-3);
        assert!((big_phi(-1.96) - 0.025).abs() < 1e-3);
        assert!((phi(0.0) - 0.39894).abs() < 1e-4);
    }

    fn toy_gp() -> GaussianProcess {
        // y = (x−0.3)², minimum at 0.3.
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] - 0.3) * (p[0] - 0.3)).collect();
        GaussianProcess::fit(
            x,
            &y,
            RbfKernel {
                signal_variance: 0.2,
                length_scale: 0.25,
                noise: 1e-6,
                kind: KernelKind::Rbf,
            },
        )
        .unwrap()
    }

    #[test]
    fn ei_is_nonnegative() {
        let gp = toy_gp();
        for i in 0..20 {
            let q = [i as f64 / 19.0];
            assert!(expected_improvement(&gp, &q, 0.05, 0.0) >= 0.0);
        }
    }

    #[test]
    fn ei_prefers_region_near_the_minimum() {
        let gp = toy_gp();
        let ei_near = expected_improvement(&gp, &[0.32], 0.02, 0.0);
        let ei_far = expected_improvement(&gp, &[0.95], 0.02, 0.0);
        assert!(ei_near >= ei_far, "{ei_near} vs {ei_far}");
    }

    #[test]
    fn lcb_decreases_with_kappa() {
        let gp = toy_gp();
        let q = [0.5];
        assert!(lower_confidence_bound(&gp, &q, 2.0) < lower_confidence_bound(&gp, &q, 0.5));
    }

    #[test]
    fn minimize_lcb_prefers_low_mean_regions() {
        let gp = toy_gp();
        let mut rng = StdRng::seed_from_u64(9);
        let x = minimize_lcb(&gp, 1, 1.0, 400, &mut rng);
        assert!((x[0] - 0.3).abs() < 0.3, "{x:?}");
    }

    #[test]
    fn maximize_ei_survives_non_finite_incumbent() {
        // A NaN or infinite incumbent turns every EI into NaN/0 — the
        // candidate sort must stay total (pre-total_cmp this panicked on
        // `partial_cmp().unwrap()`) and the proposal must stay in-bounds.
        let gp = toy_gp();
        let mut rng = StdRng::seed_from_u64(7);
        for best in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let x = maximize_ei(&gp, 1, best, 200, &mut rng);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "{best}: {x:?}");
        }
    }

    #[test]
    fn minimize_lcb_survives_non_finite_values() {
        let gp = toy_gp();
        let mut rng = StdRng::seed_from_u64(8);
        let x = minimize_lcb(&gp, 1, f64::INFINITY, 100, &mut rng);
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "{x:?}");
    }

    #[test]
    fn maximize_ei_finds_good_candidates() {
        let gp = toy_gp();
        let mut rng = StdRng::seed_from_u64(1);
        let x = maximize_ei(&gp, 1, 0.02, 500, &mut rng);
        // Should propose near the predicted optimum.
        assert!((x[0] - 0.3).abs() < 0.25, "proposed {x:?}");
    }
}
