//! Gaussian-process regression with an RBF (squared-exponential) kernel —
//! the surrogate model at the core of the OtterTune baseline.

use crate::linalg::{cholesky, cholesky_solve, log_det_from_cholesky, solve_lower};
use tensor_nn::Matrix;

/// Kernel family for the GP surrogate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Squared-exponential (infinitely smooth).
    Rbf,
    /// Matérn 5/2 — the standard choice for configuration surfaces, which
    /// are less smooth than RBF assumes (used by the kernel ablation bench).
    Matern52,
}

/// RBF kernel `k(x, x') = σ_f² · exp(−‖x−x'‖² / (2ℓ²))` plus observation
/// noise `σ_n²` on the diagonal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RbfKernel {
    /// Signal variance σ_f².
    pub signal_variance: f64,
    /// Length scale ℓ.
    pub length_scale: f64,
    /// Observation-noise variance σ_n².
    pub noise: f64,
    /// Kernel family (RBF by default).
    pub kind: KernelKind,
}

impl Default for RbfKernel {
    fn default() -> Self {
        Self {
            signal_variance: 1.0,
            length_scale: 1.0,
            noise: 1e-2,
            kind: KernelKind::Rbf,
        }
    }
}

impl RbfKernel {
    /// A Matérn-5/2 kernel with the same hyper-parameter layout.
    pub fn matern52(signal_variance: f64, length_scale: f64, noise: f64) -> Self {
        Self {
            signal_variance,
            length_scale,
            noise,
            kind: KernelKind::Matern52,
        }
    }

    /// Kernel value between two points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        match self.kind {
            KernelKind::Rbf => {
                self.signal_variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
            }
            KernelKind::Matern52 => {
                let r = d2.sqrt() / self.length_scale;
                let s5 = 5.0f64.sqrt();
                self.signal_variance * (1.0 + s5 * r + 5.0 * r * r / 3.0) * (-s5 * r).exp()
            }
        }
    }
}

/// A fitted Gaussian process.
///
/// ```
/// use surrogate::{GaussianProcess, RbfKernel};
/// let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
/// let gp = GaussianProcess::fit(x, &y, RbfKernel::default()).unwrap();
/// let (mean, var) = gp.predict(&[0.5]);
/// assert!((mean - 0.25).abs() < 0.1);
/// assert!(var >= 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct GaussianProcess {
    kernel: RbfKernel,
    x: Vec<Vec<f64>>,
    /// Cholesky factor of `K + σ_n² I`.
    chol: Matrix,
    /// `α = (K + σ_n² I)⁻¹ (y − μ)`.
    alpha: Vec<f64>,
    /// Constant prior mean (the training-target mean).
    mean: f64,
}

/// Error fitting a GP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpError {
    /// Fewer than 2 training points.
    TooFewPoints,
    /// The kernel matrix was numerically singular even after jitter.
    Singular,
}

impl GaussianProcess {
    /// Fit to data. `x` are feature rows, `y` targets; the prior mean is
    /// the empirical mean of `y`.
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], kernel: RbfKernel) -> Result<Self, GpError> {
        if x.len() < 2 || x.len() != y.len() {
            return Err(GpError::TooFewPoints);
        }
        let n = x.len();
        let mean = y.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = y.iter().map(|v| v - mean).collect();
        let mut jitter = kernel.noise.max(1e-10);
        for _attempt in 0..6 {
            let k = Matrix::from_fn(n, n, |i, j| {
                kernel.eval(&x[i], &x[j]) + if i == j { jitter } else { 0.0 }
            });
            if let Ok(chol) = cholesky(&k) {
                let alpha = cholesky_solve(&chol, &centered);
                return Ok(Self {
                    kernel,
                    x,
                    chol,
                    alpha,
                    mean,
                });
            }
            jitter *= 10.0;
        }
        Err(GpError::Singular)
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Posterior predictive mean and variance at `q`.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, q)).collect();
        let mean = self.mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        // var = k(q,q) − vᵀv with v = L⁻¹ k*
        let v = solve_lower(&self.chol, &kstar);
        let var = self.kernel.eval(q, q) - v.iter().map(|vi| vi * vi).sum::<f64>();
        (mean, var.max(1e-12))
    }

    /// Log marginal likelihood of the training data (used for
    /// hyper-parameter selection).
    pub fn log_marginal_likelihood(&self, y: &[f64]) -> f64 {
        let n = self.x.len() as f64;
        let centered: Vec<f64> = y.iter().map(|v| v - self.mean).collect();
        let fit: f64 = centered.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        -0.5 * fit
            - 0.5 * log_det_from_cholesky(&self.chol)
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Fit with a small grid search over length scale and noise, keeping
    /// the hyper-parameters with the best log marginal likelihood —
    /// a lightweight stand-in for OtterTune's gradient-based GP training.
    pub fn fit_with_model_selection(x: Vec<Vec<f64>>, y: &[f64]) -> Result<Self, GpError> {
        let mut best: Option<(f64, GaussianProcess)> = None;
        let y_var = {
            let m = y.iter().sum::<f64>() / y.len().max(1) as f64;
            (y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / y.len().max(1) as f64).max(1e-6)
        };
        for &ls in &[0.5, 1.0, 2.0, 4.0] {
            for &noise_frac in &[1e-3, 1e-2, 5e-2] {
                let kernel = RbfKernel {
                    signal_variance: y_var,
                    length_scale: ls,
                    noise: noise_frac * y_var,
                    kind: KernelKind::Rbf,
                };
                if let Ok(gp) = GaussianProcess::fit(x.clone(), y, kernel) {
                    let lml = gp.log_marginal_likelihood(y);
                    if best.as_ref().map(|(b, _)| lml > *b).unwrap_or(true) {
                        best = Some((lml, gp));
                    }
                }
            }
        }
        best.map(|(_, gp)| gp).ok_or(GpError::Singular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin()).collect();
        let gp = GaussianProcess::fit(
            x.clone(),
            &y,
            RbfKernel {
                signal_variance: 1.0,
                length_scale: 0.3,
                noise: 1e-8,
                kind: KernelKind::Rbf,
            },
        )
        .unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-3, "{m} vs {yi}");
            assert!(v < 1e-3);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = grid_1d(5);
        let y = vec![0.0; 5];
        let gp = GaussianProcess::fit(
            x,
            &y,
            RbfKernel {
                signal_variance: 1.0,
                length_scale: 0.1,
                noise: 1e-6,
                kind: KernelKind::Rbf,
            },
        )
        .unwrap();
        let (_, v_near) = gp.predict(&[0.5]);
        let (_, v_far) = gp.predict(&[3.0]);
        assert!(v_far > v_near * 10.0, "{v_far} vs {v_near}");
    }

    #[test]
    fn reverts_to_prior_mean_far_away() {
        let x = grid_1d(5);
        let y = vec![10.0, 11.0, 9.0, 10.5, 9.5];
        let gp = GaussianProcess::fit(
            x,
            &y,
            RbfKernel {
                signal_variance: 1.0,
                length_scale: 0.2,
                noise: 1e-4,
                kind: KernelKind::Rbf,
            },
        )
        .unwrap();
        let (m, _) = gp.predict(&[100.0]);
        assert!(
            (m - 10.0).abs() < 0.2,
            "far prediction {m} should be ≈ prior mean 10"
        );
    }

    #[test]
    fn too_few_points_is_error() {
        assert_eq!(
            GaussianProcess::fit(vec![vec![0.0]], &[1.0], RbfKernel::default()).unwrap_err(),
            GpError::TooFewPoints
        );
    }

    #[test]
    fn model_selection_prefers_sensible_fit() {
        // Smooth function: model selection should give low error at held-out
        // points.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0 * 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0].sin()).collect();
        let gp = GaussianProcess::fit_with_model_selection(x, &y).unwrap();
        let (m, _) = gp.predict(&[2.1]);
        assert!((m - 2.1f64.sin()).abs() < 0.1, "{m}");
    }

    #[test]
    fn matern_kernel_is_valid_and_less_smooth() {
        let rbf = RbfKernel {
            signal_variance: 1.0,
            length_scale: 1.0,
            noise: 0.0,
            kind: KernelKind::Rbf,
        };
        let mat = RbfKernel::matern52(1.0, 1.0, 0.0);
        let a = [0.0];
        assert!(
            (mat.eval(&a, &a) - 1.0).abs() < 1e-12,
            "unit at zero distance"
        );
        for &d in &[0.1, 0.5, 1.0, 2.0, 3.0] {
            let b = [d];
            let km = mat.eval(&a, &b);
            assert!(km > 0.0 && km < 1.0);
            // Matérn's polynomial-times-exponential tail eventually sits
            // above the RBF's Gaussian tail (crossover near d ≈ 2ℓ).
            if d >= 2.5 {
                assert!(km >= rbf.eval(&a, &b) - 1e-12, "d={d}");
            }
        }
    }

    #[test]
    fn matern_gp_fits_data() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).cos()).collect();
        let gp = GaussianProcess::fit(x.clone(), &y, RbfKernel::matern52(1.0, 0.3, 1e-6)).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 0.05, "{m} vs {yi}");
        }
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5], vec![1.0]];
        let y = vec![1.0, 1.1, 0.9, 2.0];
        let gp = GaussianProcess::fit(
            x,
            &y,
            RbfKernel {
                signal_variance: 1.0,
                length_scale: 1.0,
                noise: 0.0,
                kind: KernelKind::Rbf,
            },
        );
        assert!(gp.is_ok(), "jitter must rescue duplicated rows");
    }
}
