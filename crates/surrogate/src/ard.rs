//! Automatic-relevance-determination (ARD) Gaussian process: a per-
//! dimension lengthscale RBF kernel, so irrelevant knobs stop inflating
//! distances in the 32-dimensional configuration space. OtterTune's real
//! pipeline feeds its Lasso knob ranking into exactly this kind of
//! relevance weighting; [`ArdGp::fit_with_lasso_relevance`] reproduces
//! that coupling.

use crate::lasso::Lasso;
use crate::linalg::{cholesky, cholesky_solve, solve_lower};
use tensor_nn::Matrix;

/// RBF kernel with one lengthscale per input dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct ArdKernel {
    pub signal_variance: f64,
    /// ℓ_d per dimension; larger ⇒ the dimension matters less.
    pub length_scales: Vec<f64>,
    pub noise: f64,
}

impl ArdKernel {
    /// Isotropic construction (all lengthscales equal).
    pub fn isotropic(dim: usize, length_scale: f64, noise: f64) -> Self {
        Self {
            signal_variance: 1.0,
            length_scales: vec![length_scale; dim],
            noise,
        }
    }

    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.length_scales.len());
        let d2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.length_scales)
            .map(|((x, y), l)| {
                let d = (x - y) / l.max(1e-9);
                d * d
            })
            .sum();
        self.signal_variance * (-0.5 * d2).exp()
    }
}

/// A fitted ARD Gaussian process.
#[derive(Clone, Debug)]
pub struct ArdGp {
    kernel: ArdKernel,
    x: Vec<Vec<f64>>,
    chol: Matrix,
    alpha: Vec<f64>,
    mean: f64,
}

impl ArdGp {
    /// Fit with a given kernel (jitter-rescued Cholesky like the isotropic
    /// GP).
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], kernel: ArdKernel) -> Option<Self> {
        if x.len() < 2 || x.len() != y.len() {
            return None;
        }
        let n = x.len();
        let mean = y.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = y.iter().map(|v| v - mean).collect();
        let mut jitter = kernel.noise.max(1e-10);
        for _ in 0..6 {
            let k = Matrix::from_fn(n, n, |i, j| {
                kernel.eval(&x[i], &x[j]) + if i == j { jitter } else { 0.0 }
            });
            if let Ok(chol) = cholesky(&k) {
                let alpha = cholesky_solve(&chol, &centered);
                return Some(Self {
                    kernel,
                    x,
                    chol,
                    alpha,
                    mean,
                });
            }
            jitter *= 10.0;
        }
        None
    }

    /// Fit with lengthscales derived from a Lasso model's coefficients:
    /// `ℓ_d = base / (|β_d| / max|β| + floor)`, so strong knobs get short
    /// scales (high relevance) and zeroed knobs get long scales.
    pub fn fit_with_lasso_relevance(
        x: Vec<Vec<f64>>,
        y: &[f64],
        lasso: &Lasso,
        base_scale: f64,
        noise: f64,
    ) -> Option<Self> {
        let max_coef = lasso
            .coefficients
            .iter()
            .map(|c| c.abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let y_var = {
            let m = y.iter().sum::<f64>() / y.len().max(1) as f64;
            (y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / y.len().max(1) as f64).max(1e-6)
        };
        let length_scales = lasso
            .coefficients
            .iter()
            .map(|c| base_scale / (c.abs() / max_coef + 0.1))
            .collect();
        let kernel = ArdKernel {
            signal_variance: y_var,
            length_scales,
            noise: noise * y_var,
        };
        Self::fit(x, y, kernel)
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    pub fn kernel(&self) -> &ArdKernel {
        &self.kernel
    }

    /// Posterior predictive mean and variance.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, q)).collect();
        let mean = self.mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = solve_lower(&self.chol, &kstar);
        let var = self.kernel.eval(q, q) - v.iter().map(|vi| vi * vi).sum::<f64>();
        (mean, var.max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y depends on x0 only; x1 is noise.
    fn data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin()).collect();
        (x, y)
    }

    #[test]
    fn isotropic_matches_expected_shape() {
        let k = ArdKernel::isotropic(3, 2.0, 1e-3);
        assert_eq!(k.length_scales, vec![2.0; 3]);
        let a = [0.0, 0.0, 0.0];
        let b = [2.0, 0.0, 0.0];
        assert!((k.eval(&a, &b) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn ard_with_long_irrelevant_scale_beats_isotropic() {
        let (x, y) = data(60, 1);
        let (xt, yt) = data(40, 2);
        let iso = ArdGp::fit(x.clone(), &y, ArdKernel::isotropic(2, 0.3, 1e-4)).unwrap();
        let ard = ArdGp::fit(
            x,
            &y,
            ArdKernel {
                signal_variance: 1.0,
                length_scales: vec![0.3, 10.0],
                noise: 1e-4,
            },
        )
        .unwrap();
        let rmse = |gp: &ArdGp| {
            (xt.iter()
                .zip(&yt)
                .map(|(q, &t)| (gp.predict(q).0 - t).powi(2))
                .sum::<f64>()
                / xt.len() as f64)
                .sqrt()
        };
        assert!(
            rmse(&ard) < rmse(&iso),
            "ARD {:.4} should beat isotropic {:.4}",
            rmse(&ard),
            rmse(&iso)
        );
    }

    #[test]
    fn lasso_relevance_shortens_important_dimensions() {
        let (x, y) = data(120, 3);
        let lasso = Lasso::fit(&x, &y, 0.01, 120);
        let gp = ArdGp::fit_with_lasso_relevance(x, &y, &lasso, 1.0, 1e-3).unwrap();
        let ls = &gp.kernel().length_scales;
        assert!(
            ls[0] < ls[1],
            "x0 (relevant) must get the shorter scale: {ls:?}"
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(ArdGp::fit(vec![vec![0.0]], &[1.0], ArdKernel::isotropic(1, 1.0, 1e-3)).is_none());
    }
}
