//! Dense linear algebra needed by Gaussian-process regression: Cholesky
//! factorization and triangular solves on [`tensor_nn::Matrix`].

use tensor_nn::Matrix;

/// Error from a failed factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite;

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix; returns lower-triangular `L`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky needs a square matrix");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(NotPositiveDefinite);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve `L·x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Solve `Lᵀ·x = b` for lower-triangular `L` (backward substitution).
pub fn solve_upper_transpose(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Solve `A·x = b` given the Cholesky factor `L` of `A`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    solve_upper_transpose(l, &solve_lower(l, b))
}

/// Log-determinant of `A` from its Cholesky factor: `2·Σ log L_ii`.
pub fn log_det_from_cholesky(l: &Matrix) -> f64 {
    (0..l.rows()).map(|i| l.get(i, i).ln()).sum::<f64>() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I for B full-rank → SPD.
        Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let rec = l.matmul_transpose_b(&l);
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_recovers_known_x() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        // b = A·x
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // indefinite
        assert_eq!(cholesky(&a), Err(NotPositiveDefinite));
    }

    #[test]
    fn log_det_matches_direct() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        // det from cofactor expansion for 3x3
        let d = a.get(0, 0) * (a.get(1, 1) * a.get(2, 2) - a.get(1, 2) * a.get(2, 1))
            - a.get(0, 1) * (a.get(1, 0) * a.get(2, 2) - a.get(1, 2) * a.get(2, 0))
            + a.get(0, 2) * (a.get(1, 0) * a.get(2, 1) - a.get(1, 1) * a.get(2, 0));
        assert!((log_det_from_cholesky(&l) - d.ln()).abs() < 1e-10);
    }

    #[test]
    fn triangular_solves_are_inverses() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let b = [0.3, 1.2, -0.7];
        let y = solve_lower(&l, &b);
        // L·y must equal b
        for i in 0..3 {
            let s: f64 = (0..=i).map(|k| l.get(i, k) * y[k]).sum();
            assert!((s - b[i]).abs() < 1e-12);
        }
    }
}
