//! OtterTune's workload repository and workload mapping: match the target
//! workload to the most similar previously-seen workload by comparing the
//! internal metrics observed under the same configurations, then merge the
//! mapped workload's history into the GP training set.

use serde::{Deserialize, Serialize};

/// One observed sample: configuration (normalized), internal metrics and
/// the measured execution time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Observation {
    pub config: Vec<f64>,
    pub metrics: Vec<f64>,
    pub exec_time_s: f64,
}

/// The history of one workload in the repository.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkloadHistory {
    pub name: String,
    pub observations: Vec<Observation>,
}

/// Repository of per-workload tuning histories (OtterTune's "data
/// repository" fed from offline sample collection).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Repository {
    pub workloads: Vec<WorkloadHistory>,
}

impl Repository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or extend) a workload's history.
    pub fn add(&mut self, name: &str, observations: Vec<Observation>) {
        if let Some(w) = self.workloads.iter_mut().find(|w| w.name == name) {
            w.observations.extend(observations);
        } else {
            self.workloads.push(WorkloadHistory {
                name: name.to_string(),
                observations,
            });
        }
    }

    pub fn get(&self, name: &str) -> Option<&WorkloadHistory> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// Map the target (a set of fresh observations) to the most similar
    /// stored workload, excluding `exclude` (usually the target itself).
    ///
    /// Distance: for each target observation, find the stored observation
    /// with the nearest configuration and accumulate the Euclidean distance
    /// between their (per-dimension standardized) metric vectors — a
    /// faithful small-scale version of OtterTune's binned workload mapping.
    pub fn map_workload(
        &self,
        target: &[Observation],
        exclude: Option<&str>,
    ) -> Option<&WorkloadHistory> {
        if target.is_empty() {
            return None;
        }
        let scales = self.metric_scales();
        let mut best: Option<(f64, &WorkloadHistory)> = None;
        for w in &self.workloads {
            if Some(w.name.as_str()) == exclude || w.observations.is_empty() {
                continue;
            }
            let mut dist = 0.0;
            for t in target {
                let nearest = w
                    .observations
                    .iter()
                    .min_by(|a, b| {
                        sq_dist(&a.config, &t.config).total_cmp(&sq_dist(&b.config, &t.config))
                    })
                    // PANIC-SAFETY: workloads with empty observation sets
                    // are skipped by the `continue` above.
                    .expect("non-empty observation set");
                dist += scaled_metric_dist(&nearest.metrics, &t.metrics, &scales);
            }
            if best.as_ref().map(|(d, _)| dist < *d).unwrap_or(true) {
                best = Some((dist, w));
            }
        }
        best.map(|(_, w)| w)
    }

    /// Per-dimension metric standard deviations across the repository.
    fn metric_scales(&self) -> Vec<f64> {
        let all: Vec<&Observation> = self
            .workloads
            .iter()
            .flat_map(|w| w.observations.iter())
            .collect();
        let Some(first) = all.first() else {
            return Vec::new();
        };
        let d = first.metrics.len();
        let n = all.len() as f64;
        (0..d)
            .map(|j| {
                let m: f64 = all.iter().map(|o| o.metrics[j]).sum::<f64>() / n;
                let v: f64 = all.iter().map(|o| (o.metrics[j] - m).powi(2)).sum::<f64>() / n;
                v.sqrt().max(1e-9)
            })
            .collect()
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn scaled_metric_dist(a: &[f64], b: &[f64], scales: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .zip(scales)
        .map(|((x, y), s)| ((x - y) / s).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(cfg: f64, metric: f64, t: f64) -> Observation {
        Observation {
            config: vec![cfg, cfg],
            metrics: vec![metric, metric * 0.5],
            exec_time_s: t,
        }
    }

    fn repo() -> Repository {
        let mut r = Repository::new();
        // Workload A: metrics around 1.0; B: metrics around 10.0.
        r.add(
            "A",
            (0..10)
                .map(|i| obs(i as f64 / 10.0, 1.0 + 0.01 * i as f64, 50.0))
                .collect(),
        );
        r.add(
            "B",
            (0..10)
                .map(|i| obs(i as f64 / 10.0, 10.0 + 0.01 * i as f64, 80.0))
                .collect(),
        );
        r
    }

    #[test]
    fn add_extends_existing_history() {
        let mut r = repo();
        r.add("A", vec![obs(0.5, 1.0, 42.0)]);
        assert_eq!(r.get("A").unwrap().observations.len(), 11);
        assert_eq!(r.workloads.len(), 2);
    }

    #[test]
    fn maps_to_metrically_similar_workload() {
        let r = repo();
        let target = vec![obs(0.3, 1.05, 60.0), obs(0.7, 0.98, 55.0)];
        let mapped = r.map_workload(&target, None).unwrap();
        assert_eq!(mapped.name, "A");
        let target_b = vec![obs(0.3, 9.8, 60.0)];
        assert_eq!(r.map_workload(&target_b, None).unwrap().name, "B");
    }

    #[test]
    fn exclude_removes_self_matches() {
        let r = repo();
        let target = vec![obs(0.2, 1.0, 50.0)];
        let mapped = r.map_workload(&target, Some("A")).unwrap();
        assert_eq!(mapped.name, "B");
    }

    #[test]
    fn empty_target_maps_to_none() {
        let r = repo();
        assert!(r.map_workload(&[], None).is_none());
    }

    #[test]
    fn empty_repository_maps_to_none() {
        let r = Repository::new();
        let target = vec![obs(0.1, 1.0, 10.0)];
        assert!(r.map_workload(&target, None).is_none());
    }
}
