//! # surrogate
//!
//! The machine-learning substrate for the OtterTune baseline in the DeepCAT
//! reproduction: Gaussian-process regression with RBF kernels and Cholesky
//! solves, Expected-Improvement acquisition, Lasso knob ranking by cyclic
//! coordinate descent, and an OtterTune-style workload repository with
//! metric-distance workload mapping.

pub mod acquisition;
pub mod ard;
pub mod gp;
pub mod lasso;
pub mod linalg;
pub mod mapping;

pub use acquisition::{expected_improvement, lower_confidence_bound, maximize_ei, minimize_lcb};
pub use ard::{ArdGp, ArdKernel};
pub use gp::{GaussianProcess, GpError, KernelKind, RbfKernel};
pub use lasso::{rank_knobs, Lasso};
pub use mapping::{Observation, Repository, WorkloadHistory};
