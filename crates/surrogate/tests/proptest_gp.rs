//! Property-based tests of the GP/Lasso math in the OtterTune substrate.

use proptest::prelude::*;
use surrogate::{expected_improvement, GaussianProcess, KernelKind, Lasso, RbfKernel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gp_posterior_variance_is_nonnegative(
        ys in proptest::collection::vec(-5.0f64..5.0, 4..20),
        q in -2.0f64..3.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| vec![i as f64 / ys.len() as f64])
            .collect();
        let gp = GaussianProcess::fit(
            xs, &ys,
            RbfKernel { signal_variance: 1.0, length_scale: 0.5, noise: 1e-4, kind: KernelKind::Rbf },
        ).unwrap();
        let (m, v) = gp.predict(&[q]);
        prop_assert!(m.is_finite());
        prop_assert!(v >= 0.0);
    }

    #[test]
    fn ei_is_nonnegative_and_finite(
        ys in proptest::collection::vec(-3.0f64..3.0, 4..16),
        best in -3.0f64..3.0,
        q in -1.0f64..2.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| vec![i as f64 * 0.17])
            .collect();
        let gp = GaussianProcess::fit(
            xs, &ys,
            RbfKernel { signal_variance: 1.0, length_scale: 1.0, noise: 1e-3, kind: KernelKind::Rbf },
        ).unwrap();
        let ei = expected_improvement(&gp, &[q], best, 0.01);
        prop_assert!(ei.is_finite());
        prop_assert!(ei >= 0.0);
    }

    #[test]
    fn lasso_shrinks_with_stronger_penalty(
        seed_ys in proptest::collection::vec(0.0f64..1.0, 30..60),
    ) {
        let xs: Vec<Vec<f64>> = seed_ys
            .iter()
            .enumerate()
            .map(|(i, &v)| vec![v, (i as f64 * 0.37).sin().abs(), 1.0 - v])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0] - r[2]).collect();
        let weak = Lasso::fit(&xs, &ys, 0.01, 80);
        let strong = Lasso::fit(&xs, &ys, 1.0, 80);
        let l1 = |m: &Lasso| m.coefficients.iter().map(|c| c.abs()).sum::<f64>();
        prop_assert!(l1(&strong) <= l1(&weak) + 1e-9);
    }
}
