//! Fig. 6 — speedup of best recommended configurations over the default,
//! for all 12 workload-input pairs and all three tuners.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::comparison(&cfg);
    println!("\n=== Figure 6: speedup over default configuration ===");
    bench::print_table(
        &["Workload", "Tuner", "Default (s)", "Best (s)", "Speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.tuner.clone(),
                    bench::secs(r.default_s),
                    bench::secs(r.best_s),
                    bench::ratio(r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nMean speedups:");
    for (tuner, s) in deepcat::experiments::mean_speedups(&rows) {
        println!("  {tuner:10} {s:.2}x");
    }
    bench::save_json("fig6", &rows);
}
