//! Ablation beyond the paper: algorithm (TD3 / DDPG) × replay (uniform /
//! TD-error PER / RDPER) matrix on TeraSort-D1, Twin-Q disabled — how much
//! of DeepCAT's win comes from each ingredient.

fn main() {
    let cfg = bench::profile();
    let cells = deepcat::experiments::ablation_matrix(&cfg);
    println!("\n=== Ablation: algorithm x replay (TS-D1, no Twin-Q) ===");
    bench::print_table(
        &["Algorithm", "Replay", "Best exec (s)", "Total cost (s)"],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.algorithm.clone(),
                    c.replay.clone(),
                    bench::secs(c.best_s),
                    bench::secs(c.total_cost_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("ablation_matrix", &cells);
}
