//! Fig. 12 — DeepCAT performance under different Twin-Q thresholds Q_th.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::fig12(&cfg);
    println!("\n=== Figure 12: Twin-Q threshold Q_th sweep (TS-D1) ===");
    bench::print_table(
        &["Q_th", "Best exec (s)", "Total tuning cost (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.q_th),
                    bench::secs(r.best_s),
                    bench::secs(r.total_cost_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("fig12", &rows);
}
