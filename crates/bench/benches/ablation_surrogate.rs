//! Ablation of the OtterTune substrate: kernel (RBF / Matérn-5/2 / ARD) ×
//! acquisition (EI / LCB) on a 20-evaluation Bayesian-optimization run
//! against TeraSort-D1 — which surrogate choices matter for configuration
//! tuning.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spark_sim::{Cluster, InputSize, SparkEnv, Workload, WorkloadKind};
use surrogate::{maximize_ei, minimize_lcb, ArdGp, GaussianProcess, KernelKind, Lasso, RbfKernel};

const WARMUP: usize = 10;
const BO_STEPS: usize = 20;

fn bo_run(variant: &str, seed: u64) -> f64 {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = SparkEnv::new(Cluster::cluster_a(), w, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0);
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for _ in 0..WARMUP {
        let a = env.space().random_action(&mut rng);
        let t = env.evaluate_action(&a).exec_time_s;
        xs.push(a);
        ys.push(t.ln());
    }
    for _ in 0..BO_STEPS {
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let action = match variant {
            "rbf-ei" | "rbf-lcb" | "matern-ei" => {
                let kind = if variant.starts_with("matern") {
                    KernelKind::Matern52
                } else {
                    KernelKind::Rbf
                };
                let y_var = variance(&ys);
                let kernel = RbfKernel {
                    signal_variance: y_var,
                    length_scale: 2.0,
                    noise: 0.01 * y_var,
                    kind,
                };
                let gp = GaussianProcess::fit(xs.clone(), &ys, kernel).expect("fit");
                if variant.ends_with("lcb") {
                    minimize_lcb(&gp, 32, 2.0, 1500, &mut rng)
                } else {
                    maximize_ei(&gp, 32, best, 1500, &mut rng)
                }
            }
            "ard-ei" => {
                let lasso = Lasso::fit(&xs, &ys, 0.02, 80);
                match ArdGp::fit_with_lasso_relevance(xs.clone(), &ys, &lasso, 2.0, 0.01) {
                    Some(gp) => {
                        // EI over the ARD posterior by random search.
                        let mut best_x = env.space().random_action(&mut rng);
                        let mut best_v = f64::INFINITY;
                        for _ in 0..1500 {
                            let x = env.space().random_action(&mut rng);
                            let (mu, var) = gp.predict(&x);
                            let v = mu - 2.0 * var.sqrt();
                            if v < best_v {
                                best_v = v;
                                best_x = x;
                            }
                        }
                        best_x
                    }
                    None => env.space().random_action(&mut rng),
                }
            }
            _ => unreachable!(),
        };
        let t = env.evaluate_action(&action).exec_time_s;
        xs.push(action);
        ys.push(t.ln());
    }
    ys.iter().cloned().fold(f64::INFINITY, f64::min).exp()
}

fn variance(v: &[f64]) -> f64 {
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).max(1e-6)
}

fn main() {
    println!(
        "\n=== Ablation: surrogate kernel x acquisition (TS-D1, {WARMUP}+{BO_STEPS} evals) ==="
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for variant in ["rbf-ei", "rbf-lcb", "matern-ei", "ard-ei"] {
        let best: f64 = (0..3).map(|s| bo_run(variant, 500 + s)).sum::<f64>() / 3.0;
        rows.push(vec![variant.to_string(), bench::secs(best)]);
        results.push((variant.to_string(), best));
    }
    bench::print_table(&["Variant", "Best exec (s, mean of 3 seeds)"], &rows);
    bench::save_json("ablation_surrogate", &results);
}
