//! Fig. 9 — adaptability to workload change: DeepCAT models trained on
//! other workloads tune PageRank, versus baselines trained on PageRank.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::fig9(&cfg);
    println!("\n=== Figure 9: workload adaptability (target: PageRank-D1) ===");
    bench::print_table(
        &["Model", "Best exec (s)", "Total tuning cost (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    bench::secs(r.best_s),
                    bench::secs(r.total_cost_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("fig9", &rows);
}
