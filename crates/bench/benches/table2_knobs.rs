//! Table 2 — number of tuned parameters in the pipeline.

fn main() {
    let rows = deepcat::experiments::table2();
    println!("\n=== Table 2: Number of tuned parameters ===");
    bench::print_table(
        &["Component", "Parameters"],
        &rows
            .iter()
            .map(|r| vec![r.component.clone(), r.parameters.to_string()])
            .collect::<Vec<_>>(),
    );
    let total: usize = rows.iter().map(|r| r.parameters).sum();
    println!("Total: {total}");
    bench::save_json("table2", &rows);
}
