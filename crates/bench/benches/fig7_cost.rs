//! Fig. 7 — total online tuning cost (evaluation + recommendation time)
//! per workload-input pair and tuner, with the recommendation-time
//! breakdown the paper marks in black.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::comparison(&cfg);
    println!("\n=== Figure 7: total online tuning cost ===");
    bench::print_table(
        &[
            "Workload",
            "Tuner",
            "Eval (s)",
            "Recommend (s)",
            "Total (s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.tuner.clone(),
                    bench::secs(r.total_eval_s),
                    format!("{:.3}", r.total_rec_s),
                    bench::secs(r.total_eval_s + r.total_rec_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let total = |t: &str| -> (f64, f64) {
        rows.iter()
            .filter(|r| r.tuner == t)
            .fold((0.0, 0.0), |(e, c), r| {
                (e + r.total_eval_s + r.total_rec_s, c + r.total_rec_s)
            })
    };
    let (d, dr) = total("DeepCAT");
    let (c, cr) = total("CDBTune");
    let (o, or_) = total("OtterTune");
    println!("\nTotals — DeepCAT {d:.0}s, CDBTune {c:.0}s, OtterTune {o:.0}s");
    println!(
        "DeepCAT saves {:.1}% vs CDBTune and {:.1}% vs OtterTune",
        100.0 * (c - d) / c,
        100.0 * (o - d) / o
    );
    println!("Recommendation time totals: DeepCAT {dr:.3}s, CDBTune {cr:.3}s, OtterTune {or_:.3}s");
    bench::save_json("fig7", &rows);
}
