//! Fig. 10 — adaptability to hardware change: models trained on Cluster-A
//! tune WordCount/PageRank on the VM Cluster-B.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::fig10(&cfg);
    println!("\n=== Figure 10: hardware adaptability (Cluster-A -> Cluster-B) ===");
    bench::print_table(
        &[
            "Workload",
            "Tuner",
            "Speedup over default",
            "Total cost (s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.tuner.clone(),
                    bench::ratio(r.speedup_over_default_b),
                    bench::secs(r.total_cost_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("fig10", &rows);
}
