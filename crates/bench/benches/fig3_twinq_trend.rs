//! Fig. 3 — trend of the smaller twin-Q value versus the real reward
//! during offline training.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::fig3(&cfg);
    println!("\n=== Figure 3: min twin-Q vs real reward (offline training, TS-D1) ===");
    let table: Vec<Vec<String>> = rows
        .iter()
        .step_by((rows.len() / 25).max(1))
        .map(|r| {
            vec![
                r.iteration.to_string(),
                format!("{:.3}", r.reward_smoothed),
                format!("{:.3}", r.min_q_smoothed),
            ]
        })
        .collect();
    bench::print_table(
        &["iteration", "reward (smoothed)", "min twin-Q (smoothed)"],
        &table,
    );
    // Correlation between the two series — the figure's point.
    let n = rows.len() as f64;
    let mr = rows.iter().map(|r| r.reward_smoothed).sum::<f64>() / n;
    let mq = rows.iter().map(|r| r.min_q_smoothed).sum::<f64>() / n;
    let cov: f64 = rows
        .iter()
        .map(|r| (r.reward_smoothed - mr) * (r.min_q_smoothed - mq))
        .sum();
    let vr: f64 = rows.iter().map(|r| (r.reward_smoothed - mr).powi(2)).sum();
    let vq: f64 = rows.iter().map(|r| (r.min_q_smoothed - mq).powi(2)).sum();
    println!(
        "Pearson correlation(reward, minQ) = {:.3}",
        cov / (vr * vq).sqrt()
    );
    bench::save_json("fig3", &rows);
}
