//! Fig. 8 — best-so-far execution time and accumulated tuning cost along
//! the 5 online tuning steps, per workload (D1 inputs) and tuner.

use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn main() {
    let cfg = bench::profile();
    let cluster = Cluster::cluster_a();
    println!("\n=== Figure 8: best-so-far exec time / accumulated cost per step ===");
    let mut all = Vec::new();
    for kind in WorkloadKind::all() {
        let w = Workload::new(kind, InputSize::D1);
        let rows = deepcat::experiments::compare_on(w, &cluster, &cfg);
        for r in &rows {
            let series: Vec<String> = r
                .best_so_far_s
                .iter()
                .zip(&r.accumulated_cost_s)
                .map(|(b, c)| format!("{b:.0}s@{c:.0}s"))
                .collect();
            println!("{:6} {:10} {}", r.workload, r.tuner, series.join("  "));
        }
        all.extend(rows);
    }
    println!("(format: best-so-far @ accumulated-cost, one entry per online step)");
    bench::save_json("fig8", &all);
}
