//! Table 1 — workload characteristics.

fn main() {
    let rows = deepcat::experiments::table1();
    println!("\n=== Table 1: Workload characteristics ===");
    bench::print_table(
        &["Workload", "Category", "D1", "D2", "D3"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.category.clone(),
                    r.inputs[0].clone(),
                    r.inputs[1].clone(),
                    r.inputs[2].clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("table1", &rows);
}
