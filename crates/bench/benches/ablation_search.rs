//! Ablation beyond the paper: search-based tuning (BestConfig, random
//! search) vs DeepCAT — how many evaluations search needs to match a
//! 5-step DRL session (the paper's stated reason for excluding them).

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::search_comparison(&cfg);
    println!("\n=== Ablation: search-based baselines vs DeepCAT (TS-D1) ===");
    bench::print_table(
        &["Tuner", "Evaluations", "Best exec (s)", "Total cost (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tuner.clone(),
                    r.steps.to_string(),
                    bench::secs(r.best_s),
                    bench::secs(r.total_cost_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("ablation_search", &rows);
}
