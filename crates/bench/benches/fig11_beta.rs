//! Fig. 11 — DeepCAT performance under different RDPER high-reward ratios β.

fn main() {
    let cfg = bench::profile();
    let rows = deepcat::experiments::fig11(&cfg);
    println!("\n=== Figure 11: RDPER ratio beta sweep (TS-D1) ===");
    bench::print_table(
        &["beta", "Best exec (s)", "Total tuning cost (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.beta),
                    bench::secs(r.best_s),
                    bench::secs(r.total_cost_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("fig11", &rows);
}
