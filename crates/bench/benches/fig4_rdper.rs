//! Fig. 4 — best online execution time from TD3 vs TD3+RDPER models
//! trained for increasing numbers of offline iterations.

fn main() {
    let cfg = bench::profile();
    let checkpoints: Vec<usize> = if cfg.offline_iterations <= 1000 {
        vec![200, 400, 600, 800, 1000]
    } else {
        vec![400, 800, 1200, 1600, 2000, 2400, 2800, 3200, 3600]
    };
    let rows = deepcat::experiments::fig4(&cfg, &checkpoints);
    println!("\n=== Figure 4: TD3 vs TD3+RDPER over offline iterations (TS-D1) ===");
    bench::print_table(
        &["iterations", "TD3 best (s)", "TD3+RDPER best (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.iterations.to_string(),
                    bench::secs(r.td3_best_s),
                    bench::secs(r.td3_rdper_best_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    bench::save_json("fig4", &rows);
}
