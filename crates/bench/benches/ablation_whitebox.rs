//! Ablation implementing the paper's future work (§7): white-box
//! bottleneck analysis focusing the Twin-Q Optimizer's search. Compares
//! plain DeepCAT, DeepCAT with the white-box optimizer, and no optimizer.

use deepcat::experiments::SWEEP_SEEDS;
use deepcat::{
    online_tune_td3, online_tune_whitebox, train_td3, AgentConfig, OfflineConfig, OnlineConfig,
    TuningEnv,
};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn main() {
    let cfg = bench::profile();
    let mut results = Vec::new();
    for kind in [WorkloadKind::TeraSort, WorkloadKind::KMeans] {
        let w = Workload::new(kind, InputSize::D1);
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, cfg.seed);
        let ac = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        let (agent, _, _) = train_td3(
            &mut env,
            ac,
            &OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed),
            &[],
        );
        let live = Cluster::cluster_a().with_background_load(0.15);
        let mut rows: Vec<Vec<String>> = Vec::new();
        for variant in ["no-optimizer", "twin-q", "twin-q+whitebox"] {
            let n = SWEEP_SEEDS as f64;
            let (mut best, mut cost) = (0.0, 0.0);
            for session in 0..SWEEP_SEEDS {
                let mut a = agent.clone();
                let mut oenv =
                    TuningEnv::for_workload(live.clone(), w, cfg.seed ^ 0xF00D ^ (session << 16));
                let oc = OnlineConfig {
                    steps: cfg.online_steps,
                    use_twinq: variant != "no-optimizer",
                    seed: cfg.seed ^ session,
                    ..OnlineConfig::deepcat(cfg.seed)
                };
                let r = if variant == "twin-q+whitebox" {
                    online_tune_whitebox(&mut a, &mut oenv, &oc).0
                } else {
                    online_tune_td3(&mut a, &mut oenv, &oc, "DeepCAT")
                };
                best += r.best_exec_time_s / n;
                cost += r.total_cost_s() / n;
            }
            rows.push(vec![
                variant.to_string(),
                bench::secs(best),
                bench::secs(cost),
            ]);
            results.push((w.to_string(), variant.to_string(), best, cost));
        }
        println!("\n=== Ablation: white-box bottleneck focus ({w}) ===");
        bench::print_table(&["Variant", "Best exec (s)", "Total cost (s)"], &rows);
    }
    bench::save_json("ablation_whitebox", &results);
}
