//! Fig. 2 — CDF of 200 random configurations for TeraSort-D1, relative to
//! the found-optimal configuration.

fn main() {
    let cfg = bench::profile();
    let result = deepcat::experiments::fig2(&cfg);
    println!("\n=== Figure 2: CDF of 200 random configurations (TS-D1) ===");
    println!(
        "default exec = {:.1}s, found-optimal = {:.1}s",
        result.default_exec_s, result.best_exec_s
    );
    println!(
        "better than default: {:.1}%   within 10% of optimal: {:.1}%",
        100.0 * result.frac_better_than_default,
        100.0 * result.frac_within_10pct_of_best
    );
    // Print the CDF at decile resolution.
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .step_by(result.rows.len() / 20)
        .map(|r| {
            vec![
                format!("{:.3}", r.relative_performance),
                format!("{:.2}", r.cumulative_probability),
            ]
        })
        .collect();
    bench::print_table(&["rel. performance", "cum. probability"], &rows);
    bench::save_json("fig2", &result);
}
