//! Criterion micro-benchmarks of the substrates: simulator evaluation
//! throughput, neural-network training steps, replay-memory sampling and
//! GP fitting — the per-operation costs behind the paper-scale experiments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepcat::{AgentConfig, Td3Agent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Batch, PrioritizedReplay, RdPer, ReplayMemory, Transition, UniformReplay};
use spark_sim::{Cluster, InputSize, SparkEnv, Workload, WorkloadKind};
use surrogate::{GaussianProcess, RbfKernel};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("spark-sim");
    for kind in WorkloadKind::all() {
        let w = Workload::new(kind, InputSize::D1);
        let mut env = SparkEnv::new(Cluster::cluster_a(), w, 1);
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(format!("evaluate-{kind}"), |b| {
            b.iter(|| {
                let a = env.space().random_action(&mut rng);
                std::hint::black_box(env.evaluate_action(&a).exec_time_s)
            })
        });
    }
    group.finish();
}

fn random_transition(rng: &mut StdRng) -> Transition {
    use rand::Rng;
    Transition::new(
        (0..9).map(|_| rng.gen()).collect(),
        (0..32).map(|_| rng.gen()).collect(),
        rng.gen::<f64>() * 2.0 - 1.0,
        (0..9).map(|_| rng.gen()).collect(),
        rng.gen_bool(0.2),
    )
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    let mut rng = StdRng::seed_from_u64(3);
    let mut uniform = UniformReplay::new(100_000);
    let mut per = PrioritizedReplay::new(100_000);
    let mut rdper = RdPer::with_paper_defaults(100_000);
    for _ in 0..50_000 {
        let t = random_transition(&mut rng);
        uniform.push(t.clone());
        per.push(t.clone());
        rdper.push(t);
    }
    group.bench_function("uniform-sample-64", |b| {
        b.iter(|| std::hint::black_box(uniform.sample(64, &mut rng)))
    });
    group.bench_function("td-per-sample-64", |b| {
        b.iter(|| std::hint::black_box(per.sample(64, &mut rng)))
    });
    group.bench_function("rdper-sample-64", |b| {
        b.iter(|| std::hint::black_box(rdper.sample(64, &mut rng)))
    });
    group.bench_function("push", |b| {
        b.iter_batched(
            || random_transition(&mut rng),
            |t| uniform.push(t),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_agent(c: &mut Criterion) {
    let mut group = c.benchmark_group("td3");
    let mut agent = Td3Agent::new(AgentConfig::for_dims(9, 32), 4);
    let mut rng = StdRng::seed_from_u64(5);
    let transitions: Vec<Transition> = (0..64).map(|_| random_transition(&mut rng)).collect();
    let batch = Batch {
        weights: vec![1.0; transitions.len()],
        indices: vec![0; transitions.len()],
        transitions,
    };
    let state = vec![0.3; 9];
    group.bench_function("select-action", |b| {
        b.iter(|| std::hint::black_box(agent.select_action(&state)))
    });
    group.bench_function("train-step-batch64", |b| {
        b.iter(|| std::hint::black_box(agent.train_step(&batch)))
    });
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(6);
    use rand::Rng;
    let x: Vec<Vec<f64>> = (0..250)
        .map(|_| (0..32).map(|_| rng.gen()).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r.iter().sum::<f64>()).collect();
    group.bench_function("fit-250x32", |b| {
        b.iter(|| {
            std::hint::black_box(GaussianProcess::fit(x.clone(), &y, RbfKernel::default()).unwrap())
        })
    });
    let gp = GaussianProcess::fit(x.clone(), &y, RbfKernel::default()).unwrap();
    let q = vec![0.5; 32];
    group.bench_function("predict", |b| {
        b.iter(|| std::hint::black_box(gp.predict(&q)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_replay,
    bench_agent,
    bench_gp
);
criterion_main!(benches);
