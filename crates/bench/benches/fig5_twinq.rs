//! Fig. 5 — per-step execution times of DeepCAT with and without the
//! Twin-Q Optimizer, from the same offline model.

fn main() {
    let cfg = bench::profile();
    let r = deepcat::experiments::fig5(&cfg);
    println!("\n=== Figure 5: Twin-Q Optimizer ablation (TS-D1, 5 online steps) ===");
    let rows: Vec<Vec<String>> = (0..r.with_twinq_step_s.len())
        .map(|i| {
            vec![
                format!("{}", i + 1),
                bench::secs(r.with_twinq_step_s[i]),
                bench::secs(r.without_twinq_step_s[i]),
            ]
        })
        .collect();
    bench::print_table(&["step", "with Twin-Q (s)", "without Twin-Q (s)"], &rows);
    println!(
        "total: {:.1}s vs {:.1}s  ({:.1}% less with Twin-Q)",
        r.with_total_s,
        r.without_total_s,
        100.0 * (r.without_total_s - r.with_total_s) / r.without_total_s
    );
    println!(
        "best config: {:.1}s vs {:.1}s  ({:.1}% better with Twin-Q)",
        r.with_best_s,
        r.without_best_s,
        100.0 * (r.without_best_s - r.with_best_s) / r.without_best_s
    );
    bench::save_json("fig5", &r);
}
