//! Shared plumbing for the paper-reproduction bench targets: text-table
//! rendering, JSON result persistence, and the experiment profile.
//!
//! Every table and figure of the paper has its own bench target under
//! `benches/` (run them all with `cargo bench`, or one with
//! `cargo bench --bench fig6_speedup`). Each prints the rows/series the
//! paper reports and writes a machine-readable copy under
//! `target/paper-results/`.

use deepcat::experiments::ExperimentConfig;
use serde::Serialize;
use std::path::PathBuf;

/// Resolve the experiment profile from `DEEPCAT_BENCH_PROFILE`
/// (`quick` | `full`, default `full`).
pub fn profile() -> ExperimentConfig {
    match std::env::var("DEEPCAT_BENCH_PROFILE").as_deref() {
        Ok("quick") => ExperimentConfig::quick(),
        _ => ExperimentConfig::default(),
    }
}

/// Directory where bench targets persist their JSON results:
/// `DEEPCAT_RESULTS_DIR` when set, else `target/paper-results/`.
pub fn results_dir() -> PathBuf {
    let dir = resolve_results_dir(std::env::var_os("DEEPCAT_RESULTS_DIR"));
    // PANIC-SAFETY: bench harness — a result directory we cannot create
    // should abort the run loudly, not drop data silently.
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn resolve_results_dir(overridden: Option<std::ffi::OsString>) -> PathBuf {
    match overridden {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results"),
    }
}

/// Persist a serializable result next to the printed table.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    // PANIC-SAFETY: bench harness — losing a paper-results artifact is
    // worse than aborting the bench run.
    let body = serde_json::to_string_pretty(value).expect("serialize result");
    // PANIC-SAFETY: same rationale — abort loudly rather than drop results.
    std::fs::write(&path, body.as_bytes()).expect("write result");
    println!("[saved {}]", path.display());
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row);
    }
}

/// Format seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a ratio with two decimals and a trailing ×.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_default_is_full() {
        if std::env::var("DEEPCAT_BENCH_PROFILE").is_err() {
            assert_eq!(
                profile().offline_iterations,
                ExperimentConfig::default().offline_iterations
            );
        }
    }

    #[test]
    fn save_json_writes_file() {
        save_json("selftest", &vec![1, 2, 3]);
        let p = results_dir().join("selftest.json");
        assert!(p.exists());
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.contains('1'));
    }

    #[test]
    fn results_dir_honors_env_override() {
        // Exercised through the internal resolver so the test does not
        // mutate process-global env state (races with parallel tests).
        let dflt = resolve_results_dir(None);
        assert!(dflt.ends_with("target/paper-results"));
        let over = resolve_results_dir(Some("/tmp/deepcat-results-x".into()));
        assert_eq!(over, PathBuf::from("/tmp/deepcat-results-x"));
        // Empty override falls back to the default.
        assert_eq!(resolve_results_dir(Some("".into())), dflt);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1.25), "1.2");
        assert_eq!(ratio(4.656), "4.66x");
    }
}
