//! `deepcat-bench` — perf-regression baselines for the tuning stack.
//!
//! ```text
//! deepcat-bench baseline                      # run suite, write BENCH_10.json
//! deepcat-bench baseline --out cur.json       # write elsewhere
//! deepcat-bench compare --baseline BENCH_10.json --current cur.json
//! deepcat-bench compare ... --tolerance 0.5   # allowed fractional slowdown
//! deepcat-bench compare ... --metric NAME     # gate one metric only
//! deepcat-bench overhead --current cur.json   # sharded-vs-mutex gate (>= 5x)
//! ```
//!
//! `baseline` executes a pinned quick-profile workload suite (offline TD3
//! training plus one Twin-Q online session on TeraSort-D1, seed 2022)
//! under a capturing telemetry sink, aggregates per-phase self time with
//! the [`telemetry::Profiler`], measures hot-path throughput with
//! standalone micro-loops, and writes the result as JSON. The telemetry
//! suite measures the event hot path four ways — sharded pipeline with a
//! real JSONL sink, sharded with a null sink, telemetry disabled, and a
//! replica of the retired single-global-mutex emit path — so the
//! pipeline's producer-side advantage is captured as a ratio on the same
//! machine in the same run.
//!
//! `compare` diffs a fresh run against a committed baseline: any
//! throughput metric that drops below `baseline * (1 - tolerance)` fails
//! the comparison loudly, naming the regressed metric. Phase self-times
//! are reported for context but never gate (they shift with machine load
//! far more than the throughput ratios do).
//!
//! `overhead` gates on a single run's telemetry ratio: the sharded
//! hot-path rate must be at least `--min-ratio` (default 5) times the
//! global-mutex replica's rate, proving emits no longer serialize on one
//! lock.

use deepcat::{
    online_tune_td3, shared_storage, train_td3, AgentConfig, ChaosSessionConfig, Commitlog,
    CommitlogPolicy, MemStorage, OfflineConfig, OnlineCheckpoint, OnlineConfig, ResiliencePolicy,
    ResilienceSnapshot, ResilientEnv, ServiceConfig, SessionSpec, StepDelta, StepRecord, Td3Agent,
    TuningEnv, TuningService,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{PrioritizedReplay, ReplayMemory, Transition};
use serde::Serialize;
use spark_sim::{Cluster, InputSize, SparkEnv, Workload, WorkloadKind};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use telemetry::{Event, FieldValue, JsonlSink, NullSink, Profiler, Sink, SpanRecord, TestSink};
use tensor_nn::{Activation, Matrix, Mlp};

/// Format version of the baseline file.
const SCHEMA: &str = "deepcat-bench/1";
/// Everything in the suite is pinned to the paper's seed.
const SEED: u64 = 2022;
/// Default allowed fractional slowdown before `compare` fails. Generous:
/// the committed baseline and CI run on the same container class but not
/// the same machine-load conditions.
const DEFAULT_TOLERANCE: f64 = 0.6;
/// Default minimum sharded-vs-global-mutex hot-path ratio for `overhead`.
const DEFAULT_MIN_RATIO: f64 = 5.0;
/// Producer threads for the telemetry throughput suites. Oversubscribed
/// on purpose: a multi-tenant service emits from more threads than cores.
const EMIT_THREADS: usize = 16;
/// Events emitted per producer thread; kept under the shard capacity so
/// the sharded runs lose nothing.
const EMIT_PER_THREAD: usize = 10_000;

#[derive(Serialize)]
struct PhaseRow {
    name: String,
    count: u64,
    total_s: f64,
    self_s: f64,
}

#[derive(Serialize)]
struct ThroughputRow {
    metric: String,
    ops_per_s: f64,
}

#[derive(Serialize)]
struct Baseline {
    schema: String,
    suite: String,
    seed: u64,
    /// Fraction of instrumented wall time attributed to named spans.
    coverage_pct: f64,
    wall_s: f64,
    phases: Vec<PhaseRow>,
    throughput: Vec<ThroughputRow>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-bench baseline [--out PATH]\n\
         \x20      deepcat-bench compare --baseline PATH --current PATH \
         [--tolerance FLOAT] [--metric NAME]\n\
         \x20      deepcat-bench overhead --current PATH [--min-ratio FLOAT]"
    );
    ExitCode::from(2)
}

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json")
}

/// Run the pinned quick-profile workload under a capturing sink and
/// aggregate the span stream into a profile report.
fn run_profile_suite() -> telemetry::ProfileReport {
    let sink = Arc::new(TestSink::new());
    telemetry::install(sink.clone());
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, SEED);
    let cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    let (mut agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(300, SEED), &[]);
    let oc = OnlineConfig {
        steps: 5,
        ..OnlineConfig::deepcat(SEED)
    };
    let mut live_env = TuningEnv::for_workload(
        Cluster::cluster_a().with_background_load(0.15),
        workload,
        SEED ^ 0xFACE,
    );
    let _ = online_tune_td3(&mut agent, &mut live_env, &oc, "DeepCAT");
    telemetry::shutdown();

    let mut profiler = Profiler::new();
    let events = sink.take_events();
    profiler.add_all(events.iter().filter_map(SpanRecord::from_event));
    profiler.report()
}

/// Transitions sampled per second from a filled TD-error PER buffer.
fn replay_samples_per_s() -> f64 {
    let mut buffer = PrioritizedReplay::new(4096);
    let mut rng = StdRng::seed_from_u64(SEED);
    for i in 0..2048u64 {
        let x = (i % 97) as f64 / 97.0;
        buffer.push(Transition::new(
            vec![x; 9],
            vec![1.0 - x; 8],
            x - 0.5,
            vec![x; 9],
            i % 5 == 4,
        ));
    }
    let batch = 64usize;
    let iters = 2000usize;
    let t0 = Instant::now();
    let mut sampled = 0usize;
    for _ in 0..iters {
        if let Some(b) = buffer.sample(batch, &mut rng) {
            sampled += b.len();
        }
    }
    sampled as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Forward+backward passes per second through the paper-sized MLP.
fn mlp_fwd_bwd_per_s() -> f64 {
    let mut rng = StdRng::seed_from_u64(SEED);
    let net = Mlp::new(
        &[41, 64, 64, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let batch = Matrix::from_fn(64, 41, |r, c| ((r * 41 + c) % 31) as f64 / 31.0 - 0.5);
    let grad = Matrix::full(64, 1, 1.0 / 64.0);
    let iters = 300usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let cache = net.forward(&batch);
        let _ = net.backward(&cache, &grad);
    }
    iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Field set shaped like the hottest real event (`online.step`): mostly
/// floats, whose serialization dominates the synchronous sink cost.
fn emit_fields(i: usize, t: usize) -> Vec<(&'static str, FieldValue)> {
    vec![
        ("step", FieldValue::U64(i as u64)),
        ("thread", FieldValue::U64(t as u64)),
        ("reward", FieldValue::F64(0.125 + i as f64 * 1e-6)),
        ("exec_time_s", FieldValue::F64(42.75 - i as f64 * 1e-6)),
        ("recommendation_s", FieldValue::F64(0.0625)),
        ("failed", FieldValue::Bool(i % 97 == 0)),
        ("twinq_iterations", FieldValue::U64((i % 7) as u64)),
        ("q_estimate", FieldValue::F64(-0.5 + t as f64 * 0.01)),
    ]
}

/// Best of three runs: throughput micro-loops gate CI, so keep the
/// scheduler's worst moods out of the committed numbers.
fn best_of_3(mut f: impl FnMut() -> f64) -> f64 {
    (0..3).map(|_| f()).fold(f64::MIN, f64::max)
}

/// Producer-side (hot path) events/s through the sharded pipeline with a
/// real JSONL sink attached. The timer covers only what the tuning loop
/// pays per emit — buffered events are drained (and verified complete)
/// after the clock stops, exactly as the loop amortizes drains at step
/// boundaries.
fn telemetry_sharded_events_per_s(sink: Arc<dyn Sink>, end_to_end: bool) -> f64 {
    telemetry::install_sharded(sink, 1 << 15);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..EMIT_THREADS {
            s.spawn(move || {
                for i in 0..EMIT_PER_THREAD {
                    telemetry::emit("bench.emit", emit_fields(i, t));
                }
            });
        }
    });
    let fill_s = t0.elapsed().as_secs_f64();
    let delivered = telemetry::drain();
    let total_s = t0.elapsed().as_secs_f64();
    telemetry::shutdown();
    assert_eq!(
        delivered,
        (EMIT_THREADS * EMIT_PER_THREAD) as u64,
        "sharded suite must not drop below the shard bound"
    );
    let elapsed = if end_to_end { total_s } else { fill_s };
    delivered as f64 / elapsed.max(1e-9)
}

/// Events/s with telemetry fully disabled — the `event!` macro must not
/// even build its field vector, so this approximates a function call.
fn telemetry_disabled_events_per_s() -> f64 {
    telemetry::shutdown();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..EMIT_THREADS {
            s.spawn(move || {
                for i in 0..EMIT_PER_THREAD {
                    telemetry::event!("bench.emit", step = i, thread = t);
                }
            });
        }
    });
    (EMIT_THREADS * EMIT_PER_THREAD) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Replica of the retired emit path: every producer takes the global sink
/// lock and serializes its event synchronously into the JSONL sink. This
/// is the in-run baseline the `overhead` gate divides by.
fn telemetry_global_mutex_events_per_s(sink: Arc<dyn Sink>) -> f64 {
    let global: Mutex<Arc<dyn Sink>> = Mutex::new(sink);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..EMIT_THREADS {
            let global = &global;
            s.spawn(move || {
                for i in 0..EMIT_PER_THREAD {
                    let event = Event::new("bench.emit", emit_fields(i, t));
                    let sink = Arc::clone(&*global.lock().expect("bench mutex"));
                    sink.record(&event);
                }
            });
        }
    });
    (EMIT_THREADS * EMIT_PER_THREAD) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// The four-way telemetry throughput suite (see module docs).
fn telemetry_throughput_rows() -> Result<Vec<ThroughputRow>, String> {
    let jsonl = || -> Result<Arc<dyn Sink>, String> {
        Ok(Arc::new(JsonlSink::create("/dev/null").map_err(|e| {
            format!("cannot open /dev/null for the telemetry suite: {e}")
        })?))
    };
    // Untimed warmup: the first sharded cycle in a process pays one-off
    // costs (thread-local registration, allocator growth, page faults on
    // the shard buffers) that would otherwise land inside the first
    // timed sample.
    let _ = telemetry_sharded_events_per_s(Arc::new(NullSink), true);
    // The `overhead` gate divides `enabled` by `global_mutex`, so sample
    // them interleaved: adjacent rounds share whatever mood the machine
    // is in, keeping the ratio stable even when absolute rates drift.
    let mut enabled = f64::MIN;
    let mut global_mutex = f64::MIN;
    for _ in 0..5 {
        enabled = enabled.max(telemetry_sharded_events_per_s(jsonl()?, false));
        global_mutex = global_mutex.max(telemetry_global_mutex_events_per_s(jsonl()?));
    }
    let null_sink = best_of_3(|| telemetry_sharded_events_per_s(Arc::new(NullSink), true));
    let disabled = best_of_3(telemetry_disabled_events_per_s);
    Ok(vec![
        ThroughputRow {
            metric: "telemetry_events_per_s_enabled".to_string(),
            ops_per_s: enabled,
        },
        ThroughputRow {
            metric: "telemetry_events_per_s_null_sink".to_string(),
            ops_per_s: null_sink,
        },
        ThroughputRow {
            metric: "telemetry_events_per_s_disabled".to_string(),
            ops_per_s: disabled,
        },
        ThroughputRow {
            metric: "telemetry_events_per_s_global_mutex".to_string(),
            ops_per_s: global_mutex,
        },
    ])
}

/// Concurrent inserts per second into the striped quantile sketch — the
/// per-step `observe_sketch` hot path behind the live p50/p95/p99
/// rollups. Oversubscribed like the emit suites, so stripe contention
/// (not single-lock serialization) is what gets measured.
fn sketch_inserts_per_s() -> f64 {
    let sketch = telemetry::ConcurrentSketch::new(telemetry::DEFAULT_SKETCH_ALPHA);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..EMIT_THREADS {
            let sketch = &sketch;
            s.spawn(move || {
                for i in 0..EMIT_PER_THREAD {
                    // Spread values over several orders of magnitude so
                    // inserts touch many buckets, as real latencies do.
                    sketch.insert(1e-4 * (1.0 + ((i * 7919 + t) % 10_000) as f64));
                }
            });
        }
    });
    let total = (EMIT_THREADS * EMIT_PER_THREAD) as u64;
    assert_eq!(sketch.count(), total, "sketch suite must not lose inserts");
    total as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Step-delta appends (frame + CRC + fsync discipline) per second into a
/// memory-backed commitlog — the per-step durability cost the resilient
/// online session pays. MemStorage keeps the metric about the framing,
/// checksumming, and serialization hot path rather than disk latency.
fn commitlog_appends_per_s() -> f64 {
    let mut cfg = AgentConfig::for_dims(2, 3);
    cfg.hidden = vec![4, 4];
    let agent = Td3Agent::new(cfg, SEED);
    let checkpoint = OnlineCheckpoint {
        tuner: "bench".to_string(),
        next_step: 0,
        total_steps: 4096,
        agent: agent.checkpoint(),
        agent_rng: agent.rng_state().to_vec(),
        loop_rng: vec![1, 2, 3, 4],
        replay: Vec::new(),
        steps: Vec::new(),
        spent_s: 0.0,
        eval_count: 0,
        env_state: vec![0.1, 0.2],
        step_in_episode: 0,
        resilience: ResilienceSnapshot {
            last_good_action: None,
            last_state: vec![0.1, 0.2],
            consecutive_failures: 0,
        },
        guardrail: None,
    };
    let storage = shared_storage(MemStorage::new());
    let dir = PathBuf::from("/bench/commitlog");
    let mut log = Commitlog::create(&dir, storage, CommitlogPolicy::default())
        .expect("bench commitlog create");
    log.snapshot(&checkpoint).expect("bench initial snapshot");
    let delta = |seq: u64| StepDelta {
        seq,
        record: StepRecord {
            step: seq as usize,
            exec_time_s: 120.0,
            failed: false,
            reward: 0.5,
            recommendation_s: 0.0,
            q_estimate: Some(0.4),
            twinq_iterations: 3,
            action: vec![0.5; 32],
            resilience: Default::default(),
            guardrail: Default::default(),
        },
        transition: Transition::new(vec![0.1; 9], vec![0.5; 32], 0.5, vec![0.1; 9], true),
        loop_rng_pre_train: vec![seq, 1, 2, 3],
        loop_rng_post: vec![seq, 2, 3, 4],
        agent_rng_post: vec![seq, 3, 4, 5],
        spent_s: seq as f64,
        eval_count: seq,
        env_state: vec![0.1; 9],
        step_in_episode: seq as usize,
        resilience: ResilienceSnapshot {
            last_good_action: Some(vec![0.5; 32]),
            last_state: vec![0.1; 9],
            consecutive_failures: 0,
        },
        guardrail: None,
    };
    let iters = 2000u64;
    let t0 = Instant::now();
    for seq in 0..iters {
        log.append(&delta(seq)).expect("bench append");
    }
    iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Simulated Spark application runs per second.
fn sim_steps_per_s() -> f64 {
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = SparkEnv::new(Cluster::cluster_a(), workload, SEED);
    let action = vec![0.5; env.action_dim()];
    let iters = 200usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = env.evaluate_action(&action);
    }
    iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Engine steps per second driven through the multi-tenant
/// [`TuningService`]: several small sessions multiplexed over a sharded
/// worker pool, so actor dispatch, mailbox handling, and supervisor
/// bookkeeping are all on the measured path — not just the engine.
fn service_steps_per_s() -> f64 {
    const SESSIONS: usize = 4;
    const STEPS: usize = 6;
    let service = TuningService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for i in 0..SESSIONS {
        let seed = SEED + i as u64;
        let env = ResilientEnv::new(
            TuningEnv::for_workload(
                Cluster::cluster_a(),
                Workload::new(WorkloadKind::TeraSort, InputSize::D1),
                seed,
            ),
            ResiliencePolicy::default(),
        );
        let mut agent_cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        agent_cfg.hidden = vec![8, 8];
        agent_cfg.warmup_steps = 4;
        agent_cfg.batch_size = 4;
        let mut cfg = OnlineConfig::deepcat(seed);
        cfg.steps = STEPS;
        cfg.use_twinq = false;
        cfg.fine_tune_steps = 1;
        service
            .admit(SessionSpec {
                name: format!("bench-{i}"),
                agent: Td3Agent::new(agent_cfg, seed),
                env,
                cfg,
                session: ChaosSessionConfig::default(),
                tuner_name: "bench".to_string(),
            })
            .expect("bench admission");
    }
    let t0 = Instant::now();
    service.run();
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let steps: usize = service
        .take_results()
        .iter()
        .map(|r| r.completed_steps)
        .sum();
    assert_eq!(steps, SESSIONS * STEPS, "bench service lost steps");
    steps as f64 / elapsed
}

fn run_baseline(out: &PathBuf) -> Result<(), String> {
    println!("running pinned quick-profile suite (TeraSort-D1, seed {SEED})...");
    let report = run_profile_suite();
    println!("{}", report.render());
    println!("measuring hot-path throughput...");
    let mut throughput = vec![
        ThroughputRow {
            metric: "replay_samples_per_s".to_string(),
            ops_per_s: replay_samples_per_s(),
        },
        ThroughputRow {
            metric: "mlp_fwd_bwd_per_s".to_string(),
            ops_per_s: mlp_fwd_bwd_per_s(),
        },
        ThroughputRow {
            metric: "sim_steps_per_s".to_string(),
            ops_per_s: sim_steps_per_s(),
        },
        ThroughputRow {
            metric: "sketch_inserts_per_s".to_string(),
            ops_per_s: best_of_3(sketch_inserts_per_s),
        },
        ThroughputRow {
            metric: "commitlog_appends_per_s".to_string(),
            ops_per_s: best_of_3(commitlog_appends_per_s),
        },
        ThroughputRow {
            metric: "service_steps_per_s".to_string(),
            ops_per_s: best_of_3(service_steps_per_s),
        },
    ];
    println!(
        "measuring telemetry pipeline throughput ({EMIT_THREADS} threads x \
         {EMIT_PER_THREAD} events)..."
    );
    throughput.extend(telemetry_throughput_rows()?);
    for t in &throughput {
        println!("  {:<36} {:>14.1} ops/s", t.metric, t.ops_per_s);
    }
    let baseline = Baseline {
        schema: SCHEMA.to_string(),
        suite: "quick-profile/terasort-d1".to_string(),
        seed: SEED,
        coverage_pct: report.coverage_pct(),
        wall_s: report.total_wall_s,
        phases: report
            .rows
            .iter()
            .map(|r| PhaseRow {
                name: r.name.clone(),
                count: r.count,
                total_s: r.total_s,
                self_s: r.self_s,
            })
            .collect(),
        throughput,
    };
    let body = serde_json::to_string_pretty(&baseline)
        .map_err(|e| format!("serialize baseline: {e:?}"))?;
    std::fs::write(out, body.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("[saved {}]", out.display());
    Ok(())
}

/// One parsed baseline file, reduced to what `compare` needs.
struct Loaded {
    throughput: Vec<(String, f64)>,
    phases: Vec<(String, f64)>,
}

fn load_baseline(path: &PathBuf) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = serde_json::parse_value(&text)
        .map_err(|e| format!("{}: invalid JSON: {e:?}", path.display()))?;
    let schema = value.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "{}: schema {schema:?}, expected {SCHEMA:?}",
            path.display()
        ));
    }
    let rows = |key: &str, field: &str| -> Vec<(String, f64)> {
        value
            .get(key)
            .and_then(|v| v.as_seq())
            .unwrap_or(&[])
            .iter()
            .filter_map(|row| {
                let name = row
                    .get("metric")
                    .or_else(|| row.get("name"))
                    .and_then(|v| v.as_str())?
                    .to_string();
                Some((name, row.get(field).and_then(|v| v.as_f64())?))
            })
            .collect()
    };
    Ok(Loaded {
        throughput: rows("throughput", "ops_per_s"),
        phases: rows("phases", "self_s"),
    })
}

fn run_compare(
    baseline: &PathBuf,
    current: &PathBuf,
    tolerance: f64,
    metric_filter: Option<&str>,
) -> Result<bool, String> {
    let mut base = load_baseline(baseline)?;
    let cur = load_baseline(current)?;
    if let Some(filter) = metric_filter {
        base.throughput.retain(|(m, _)| m == filter);
        if base.throughput.is_empty() {
            return Err(format!(
                "{}: no metric named {filter:?} to gate on",
                baseline.display()
            ));
        }
        // A single-metric gate compares files from different schema
        // generations; the phase rows are noise there.
        base.phases.clear();
    }
    if base.throughput.is_empty() {
        return Err(format!("{}: no throughput metrics", baseline.display()));
    }
    println!(
        "== compare: {} vs {} (tolerance {:.0}%) ==",
        current.display(),
        baseline.display(),
        tolerance * 100.0
    );
    let mut ok = true;
    for (metric, base_v) in &base.throughput {
        let Some((_, cur_v)) = cur.throughput.iter().find(|(m, _)| m == metric) else {
            println!("REGRESSION {metric}: missing from current run");
            ok = false;
            continue;
        };
        let floor = base_v * (1.0 - tolerance);
        let ratio = cur_v / base_v.max(1e-9);
        if *cur_v < floor {
            println!(
                "REGRESSION {metric}: {cur_v:.1} ops/s vs baseline {base_v:.1} \
                 ({ratio:.2}x, floor {floor:.1})"
            );
            ok = false;
        } else {
            println!("ok {metric}: {cur_v:.1} ops/s vs baseline {base_v:.1} ({ratio:.2}x)");
        }
    }
    // Informational: where did the self-time shares move?
    for (name, base_s) in &base.phases {
        if let Some((_, cur_s)) = cur.phases.iter().find(|(n, _)| n == name) {
            println!("   phase {name}: self {base_s:.4}s -> {cur_s:.4}s");
        }
    }
    Ok(ok)
}

/// Gate the sharded hot path against the global-mutex replica measured
/// in the same `baseline` run.
fn run_overhead(current: &PathBuf, min_ratio: f64) -> Result<bool, String> {
    let cur = load_baseline(current)?;
    let rate = |metric: &str| -> Result<f64, String> {
        cur.throughput
            .iter()
            .find(|(m, _)| m == metric)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("{}: missing metric {metric}", current.display()))
    };
    let enabled = rate("telemetry_events_per_s_enabled")?;
    let mutex = rate("telemetry_events_per_s_global_mutex")?;
    let disabled = rate("telemetry_events_per_s_disabled")?;
    let ratio = enabled / mutex.max(1e-9);
    println!(
        "== telemetry overhead: {} ==\n\
         \x20 sharded hot path {enabled:.0} ev/s vs global mutex {mutex:.0} ev/s \
         -> {ratio:.1}x (floor {min_ratio:.1}x)\n\
         \x20 disabled path {disabled:.0} ev/s",
        current.display()
    );
    if ratio < min_ratio {
        println!(
            "REGRESSION telemetry hot path: {ratio:.1}x < required {min_ratio:.1}x \
             over the single-global-mutex baseline"
        );
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        return usage();
    };
    let mut out = default_out();
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut min_ratio = DEFAULT_MIN_RATIO;
    let mut metric_filter: Option<String> = None;
    while let Some(flag) = argv.next() {
        let Some(value) = argv.next() else {
            eprintln!("error: {flag} needs a value");
            return usage();
        };
        match flag.as_str() {
            "--out" => out = PathBuf::from(value),
            "--baseline" => baseline = Some(PathBuf::from(value)),
            "--current" => current = Some(PathBuf::from(value)),
            "--tolerance" => match value.parse() {
                Ok(t) => tolerance = t,
                Err(e) => {
                    eprintln!("error: --tolerance: {e}");
                    return usage();
                }
            },
            "--metric" => metric_filter = Some(value),
            "--min-ratio" => match value.parse() {
                Ok(r) => min_ratio = r,
                Err(e) => {
                    eprintln!("error: --min-ratio: {e}");
                    return usage();
                }
            },
            other => {
                eprintln!("error: unknown flag {other}");
                return usage();
            }
        }
    }
    match command.as_str() {
        "baseline" => match run_baseline(&out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "compare" => {
            let (Some(baseline), Some(current)) = (baseline, current) else {
                eprintln!("error: compare needs --baseline PATH and --current PATH");
                return usage();
            };
            match run_compare(&baseline, &current, tolerance, metric_filter.as_deref()) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => {
                    eprintln!("perf-regression check FAILED (see REGRESSION lines above)");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "overhead" => {
            let Some(current) = current else {
                eprintln!("error: overhead needs --current PATH");
                return usage();
            };
            match run_overhead(&current, min_ratio) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => {
                    eprintln!("telemetry overhead gate FAILED");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
