//! `deepcat-bench` — perf-regression baselines for the tuning stack.
//!
//! ```text
//! deepcat-bench baseline                      # run suite, write BENCH_3.json
//! deepcat-bench baseline --out cur.json       # write elsewhere
//! deepcat-bench compare --baseline BENCH_3.json --current cur.json
//! deepcat-bench compare ... --tolerance 0.5   # allowed fractional slowdown
//! ```
//!
//! `baseline` executes a pinned quick-profile workload suite (offline TD3
//! training plus one Twin-Q online session on TeraSort-D1, seed 2022)
//! under a capturing telemetry sink, aggregates per-phase self time with
//! the [`telemetry::Profiler`], measures hot-path throughput with
//! standalone micro-loops, and writes the result as JSON.
//!
//! `compare` diffs a fresh run against a committed baseline: any
//! throughput metric that drops below `baseline * (1 - tolerance)` fails
//! the comparison loudly, naming the regressed metric. Phase self-times
//! are reported for context but never gate (they shift with machine load
//! far more than the throughput ratios do).

use deepcat::{online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, TuningEnv};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{PrioritizedReplay, ReplayMemory, Transition};
use serde::Serialize;
use spark_sim::{Cluster, InputSize, SparkEnv, Workload, WorkloadKind};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use telemetry::{Profiler, SpanRecord, TestSink};
use tensor_nn::{Activation, Matrix, Mlp};

/// Format version of the baseline file.
const SCHEMA: &str = "deepcat-bench/1";
/// Everything in the suite is pinned to the paper's seed.
const SEED: u64 = 2022;
/// Default allowed fractional slowdown before `compare` fails. Generous:
/// the committed baseline and CI run on the same container class but not
/// the same machine-load conditions.
const DEFAULT_TOLERANCE: f64 = 0.6;

#[derive(Serialize)]
struct PhaseRow {
    name: String,
    count: u64,
    total_s: f64,
    self_s: f64,
}

#[derive(Serialize)]
struct ThroughputRow {
    metric: String,
    ops_per_s: f64,
}

#[derive(Serialize)]
struct Baseline {
    schema: String,
    suite: String,
    seed: u64,
    /// Fraction of instrumented wall time attributed to named spans.
    coverage_pct: f64,
    wall_s: f64,
    phases: Vec<PhaseRow>,
    throughput: Vec<ThroughputRow>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-bench baseline [--out PATH]\n\
         \x20      deepcat-bench compare --baseline PATH --current PATH \
         [--tolerance FLOAT]"
    );
    ExitCode::from(2)
}

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_3.json")
}

/// Run the pinned quick-profile workload under a capturing sink and
/// aggregate the span stream into a profile report.
fn run_profile_suite() -> telemetry::ProfileReport {
    let sink = Arc::new(TestSink::new());
    telemetry::install(sink.clone());
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, SEED);
    let cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    let (mut agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(300, SEED), &[]);
    let oc = OnlineConfig {
        steps: 5,
        ..OnlineConfig::deepcat(SEED)
    };
    let mut live_env = TuningEnv::for_workload(
        Cluster::cluster_a().with_background_load(0.15),
        workload,
        SEED ^ 0xFACE,
    );
    let _ = online_tune_td3(&mut agent, &mut live_env, &oc, "DeepCAT");
    telemetry::shutdown();

    let mut profiler = Profiler::new();
    profiler.add_all(sink.events().iter().filter_map(SpanRecord::from_event));
    profiler.report()
}

/// Transitions sampled per second from a filled TD-error PER buffer.
fn replay_samples_per_s() -> f64 {
    let mut buffer = PrioritizedReplay::new(4096);
    let mut rng = StdRng::seed_from_u64(SEED);
    for i in 0..2048u64 {
        let x = (i % 97) as f64 / 97.0;
        buffer.push(Transition::new(
            vec![x; 9],
            vec![1.0 - x; 8],
            x - 0.5,
            vec![x; 9],
            i % 5 == 4,
        ));
    }
    let batch = 64usize;
    let iters = 2000usize;
    let t0 = Instant::now();
    let mut sampled = 0usize;
    for _ in 0..iters {
        if let Some(b) = buffer.sample(batch, &mut rng) {
            sampled += b.len();
        }
    }
    sampled as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Forward+backward passes per second through the paper-sized MLP.
fn mlp_fwd_bwd_per_s() -> f64 {
    let mut rng = StdRng::seed_from_u64(SEED);
    let net = Mlp::new(
        &[41, 64, 64, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let batch = Matrix::from_fn(64, 41, |r, c| ((r * 41 + c) % 31) as f64 / 31.0 - 0.5);
    let grad = Matrix::full(64, 1, 1.0 / 64.0);
    let iters = 300usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let cache = net.forward(&batch);
        let _ = net.backward(&cache, &grad);
    }
    iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Simulated Spark application runs per second.
fn sim_steps_per_s() -> f64 {
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = SparkEnv::new(Cluster::cluster_a(), workload, SEED);
    let action = vec![0.5; env.action_dim()];
    let iters = 200usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = env.evaluate_action(&action);
    }
    iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn run_baseline(out: &PathBuf) -> Result<(), String> {
    println!("running pinned quick-profile suite (TeraSort-D1, seed {SEED})...");
    let report = run_profile_suite();
    println!("{}", report.render());
    println!("measuring hot-path throughput...");
    let throughput = vec![
        ThroughputRow {
            metric: "replay_samples_per_s".to_string(),
            ops_per_s: replay_samples_per_s(),
        },
        ThroughputRow {
            metric: "mlp_fwd_bwd_per_s".to_string(),
            ops_per_s: mlp_fwd_bwd_per_s(),
        },
        ThroughputRow {
            metric: "sim_steps_per_s".to_string(),
            ops_per_s: sim_steps_per_s(),
        },
    ];
    for t in &throughput {
        println!("  {:<24} {:>14.1} ops/s", t.metric, t.ops_per_s);
    }
    let baseline = Baseline {
        schema: SCHEMA.to_string(),
        suite: "quick-profile/terasort-d1".to_string(),
        seed: SEED,
        coverage_pct: report.coverage_pct(),
        wall_s: report.total_wall_s,
        phases: report
            .rows
            .iter()
            .map(|r| PhaseRow {
                name: r.name.clone(),
                count: r.count,
                total_s: r.total_s,
                self_s: r.self_s,
            })
            .collect(),
        throughput,
    };
    let body = serde_json::to_string_pretty(&baseline)
        .map_err(|e| format!("serialize baseline: {e:?}"))?;
    std::fs::write(out, body.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("[saved {}]", out.display());
    Ok(())
}

/// One parsed baseline file, reduced to what `compare` needs.
struct Loaded {
    throughput: Vec<(String, f64)>,
    phases: Vec<(String, f64)>,
}

fn load_baseline(path: &PathBuf) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = serde_json::parse_value(&text)
        .map_err(|e| format!("{}: invalid JSON: {e:?}", path.display()))?;
    let schema = value.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "{}: schema {schema:?}, expected {SCHEMA:?}",
            path.display()
        ));
    }
    let rows = |key: &str, field: &str| -> Vec<(String, f64)> {
        value
            .get(key)
            .and_then(|v| v.as_seq())
            .unwrap_or(&[])
            .iter()
            .filter_map(|row| {
                let name = row
                    .get("metric")
                    .or_else(|| row.get("name"))
                    .and_then(|v| v.as_str())?
                    .to_string();
                Some((name, row.get(field).and_then(|v| v.as_f64())?))
            })
            .collect()
    };
    Ok(Loaded {
        throughput: rows("throughput", "ops_per_s"),
        phases: rows("phases", "self_s"),
    })
}

fn run_compare(baseline: &PathBuf, current: &PathBuf, tolerance: f64) -> Result<bool, String> {
    let base = load_baseline(baseline)?;
    let cur = load_baseline(current)?;
    if base.throughput.is_empty() {
        return Err(format!("{}: no throughput metrics", baseline.display()));
    }
    println!(
        "== compare: {} vs {} (tolerance {:.0}%) ==",
        current.display(),
        baseline.display(),
        tolerance * 100.0
    );
    let mut ok = true;
    for (metric, base_v) in &base.throughput {
        let Some((_, cur_v)) = cur.throughput.iter().find(|(m, _)| m == metric) else {
            println!("REGRESSION {metric}: missing from current run");
            ok = false;
            continue;
        };
        let floor = base_v * (1.0 - tolerance);
        let ratio = cur_v / base_v.max(1e-9);
        if *cur_v < floor {
            println!(
                "REGRESSION {metric}: {cur_v:.1} ops/s vs baseline {base_v:.1} \
                 ({ratio:.2}x, floor {floor:.1})"
            );
            ok = false;
        } else {
            println!("ok {metric}: {cur_v:.1} ops/s vs baseline {base_v:.1} ({ratio:.2}x)");
        }
    }
    // Informational: where did the self-time shares move?
    for (name, base_s) in &base.phases {
        if let Some((_, cur_s)) = cur.phases.iter().find(|(n, _)| n == name) {
            println!("   phase {name}: self {base_s:.4}s -> {cur_s:.4}s");
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        return usage();
    };
    let mut out = default_out();
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    while let Some(flag) = argv.next() {
        let Some(value) = argv.next() else {
            eprintln!("error: {flag} needs a value");
            return usage();
        };
        match flag.as_str() {
            "--out" => out = PathBuf::from(value),
            "--baseline" => baseline = Some(PathBuf::from(value)),
            "--current" => current = Some(PathBuf::from(value)),
            "--tolerance" => match value.parse() {
                Ok(t) => tolerance = t,
                Err(e) => {
                    eprintln!("error: --tolerance: {e}");
                    return usage();
                }
            },
            other => {
                eprintln!("error: unknown flag {other}");
                return usage();
            }
        }
    }
    match command.as_str() {
        "baseline" => match run_baseline(&out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "compare" => {
            let (Some(baseline), Some(current)) = (baseline, current) else {
                eprintln!("error: compare needs --baseline PATH and --current PATH");
                return usage();
            };
            match run_compare(&baseline, &current, tolerance) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => {
                    eprintln!("perf-regression check FAILED (see REGRESSION lines above)");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
