//! BestConfig (Zhu et al., SoCC 2017) — the search-based baseline the
//! paper's related-work section discusses (and excludes from the main
//! comparison because it "needs a large number of time-consuming
//! configuration evaluations and restarts from scratch whenever a new
//! tuning request comes"). Implemented here so that claim is measurable:
//! divide-and-diverge sampling (DDS) plus recursive bound-and-search (RBS).

use super::Tuner;
use crate::envwrap::TuningEnv;
use crate::online::{finish_report, StepGuardrail, StepRecord, StepResilience, TuningReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// BestConfig search tuner.
#[derive(Clone, Debug)]
pub struct BestConfig {
    pub seed: u64,
    /// Samples per RBS round (the paper's DDS set size).
    pub samples_per_round: usize,
    /// Shrink factor of the bounded subspace per recursion.
    pub shrink: f64,
}

impl BestConfig {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            samples_per_round: 6,
            shrink: 0.5,
        }
    }

    /// Divide-and-diverge sampling in the box `[lo, hi]^d`: each dimension
    /// is split into `n` intervals and the interval indices are permuted
    /// independently per dimension (a latin hypercube), so every interval
    /// of every dimension is covered exactly once.
    pub fn dds(&self, lo: &[f64], hi: &[f64], n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let d = lo.len();
        assert_eq!(hi.len(), d);
        // One shuffled interval order per dimension.
        let mut orders: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            orders.push(idx);
        }
        (0..n)
            .map(|s| {
                (0..d)
                    .map(|j| {
                        let cell = orders[j][s] as f64;
                        let u: f64 = rng.gen();
                        let frac = (cell + u) / n as f64;
                        (lo[j] + frac * (hi[j] - lo[j])).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect()
    }
}

impl Tuner for BestConfig {
    fn name(&self) -> &'static str {
        "BestConfig"
    }

    /// Search-based approaches cannot exploit offline experience — every
    /// request starts from scratch.
    fn offline_train(&mut self, _env: &mut TuningEnv) {}

    /// RBS: evaluate a DDS sample set, bound a shrunken subspace around the
    /// incumbent best, and recurse until the step budget is exhausted.
    fn online_tune(&mut self, env: &mut TuningEnv, steps: usize) -> TuningReport {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xBE57);
        let d = env.action_dim();
        let (mut lo, mut hi) = (vec![0.0; d], vec![1.0; d]);
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut records = Vec::with_capacity(steps);
        let mut step = 0;
        while step < steps {
            let round = self.samples_per_round.min(steps - step);
            let t0 = telemetry::Stopwatch::start();
            let candidates = self.dds(&lo, &hi, round.max(1), &mut rng);
            let recommendation_s = t0.elapsed_s() / round.max(1) as f64;
            for action in candidates {
                let out = env.step(&action);
                if best
                    .as_ref()
                    .map(|(_, t)| out.exec_time_s < *t)
                    .unwrap_or(true)
                    && !out.failed
                {
                    best = Some((action.clone(), out.exec_time_s));
                }
                records.push(StepRecord {
                    step,
                    exec_time_s: out.exec_time_s,
                    failed: out.failed,
                    reward: out.reward,
                    recommendation_s,
                    q_estimate: None,
                    twinq_iterations: 0,
                    action,
                    resilience: StepResilience::default(),
                    guardrail: StepGuardrail::default(),
                });
                step += 1;
                if step >= steps {
                    break;
                }
            }
            // Bound-and-search: shrink the box around the incumbent.
            if let Some((center, _)) = &best {
                for j in 0..d {
                    let half = 0.5 * (hi[j] - lo[j]) * self.shrink;
                    lo[j] = (center[j] - half).max(0.0);
                    hi[j] = (center[j] + half).min(1.0);
                }
            }
        }
        finish_report("BestConfig", env, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    #[test]
    fn dds_covers_every_interval_once_per_dimension() {
        let bc = BestConfig::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 8;
        let samples = bc.dds(&vec![0.0; 4], &vec![1.0; 4], n, &mut rng);
        assert_eq!(samples.len(), n);
        for j in 0..4 {
            let mut cells: Vec<usize> = samples
                .iter()
                .map(|s| ((s[j] * n as f64) as usize).min(n - 1))
                .collect();
            cells.sort_unstable();
            assert_eq!(
                cells,
                (0..n).collect::<Vec<_>>(),
                "dimension {j} not covered"
            );
        }
    }

    #[test]
    fn dds_respects_bounds() {
        let bc = BestConfig::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let lo = vec![0.2; 5];
        let hi = vec![0.6; 5];
        for s in bc.dds(&lo, &hi, 10, &mut rng) {
            assert!(s.iter().all(|&v| (0.2..=0.6).contains(&v)), "{s:?}");
        }
    }

    #[test]
    fn search_improves_with_budget() {
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let mut small_env = TuningEnv::for_workload(Cluster::cluster_a(), w, 61);
        let mut big_env = TuningEnv::for_workload(Cluster::cluster_a(), w, 61);
        let mut bc_small = BestConfig::new(5);
        let mut bc_big = BestConfig::new(5);
        let small = bc_small.online_tune(&mut small_env, 5);
        let big = bc_big.online_tune(&mut big_env, 30);
        assert!(big.best_exec_time_s <= small.best_exec_time_s * 1.05);
        assert_eq!(big.steps.len(), 30);
    }

    #[test]
    fn restarts_from_scratch_each_request() {
        // The paper's criticism: no memory across requests. Two sessions
        // with the same seed produce identical searches.
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let mut env1 = TuningEnv::for_workload(Cluster::cluster_a(), w, 62);
        let mut env2 = TuningEnv::for_workload(Cluster::cluster_a(), w, 62);
        let mut bc = BestConfig::new(7);
        let r1 = bc.online_tune(&mut env1, 6);
        let r2 = bc.online_tune(&mut env2, 6);
        let a1: Vec<&Vec<f64>> = r1.steps.iter().map(|s| &s.action).collect();
        let a2: Vec<&Vec<f64>> = r2.steps.iter().map(|s| &s.action).collect();
        assert_eq!(a1, a2, "no learned state carries over");
    }
}
