//! Random search — the search-based reference the paper omits from the
//! main comparison (BestConfig-style approaches restart from scratch per
//! request). Used here to locate the "found optimal" configuration for the
//! Fig. 2 CDF and as a sanity floor in tests.

use super::Tuner;
use crate::envwrap::TuningEnv;
use crate::online::{finish_report, StepGuardrail, StepRecord, StepResilience, TuningReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random search over the normalized knob space.
#[derive(Clone, Debug)]
pub struct RandomSearch {
    pub seed: u64,
}

impl RandomSearch {
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Evaluate `budget` random configurations and return
    /// `(best_action, best_exec_time_s)` — the "found optimal" reference
    /// used to normalize Fig. 2.
    pub fn search(&self, env: &mut TuningEnv, budget: usize) -> (Vec<f64>, f64) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best_t = f64::INFINITY;
        let mut best_a = vec![0.5; env.action_dim()];
        for _ in 0..budget {
            let a = env.spark().space().random_action(&mut rng);
            let out = env.step(&a);
            if !out.failed && out.exec_time_s < best_t {
                best_t = out.exec_time_s;
                best_a = a;
            }
        }
        (best_a, best_t)
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn offline_train(&mut self, _env: &mut TuningEnv) {
        // Search-based approaches cannot exploit offline experience —
        // exactly the weakness the paper cites for omitting them.
    }

    fn online_tune(&mut self, env: &mut TuningEnv, steps: usize) -> TuningReport {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5);
        let mut records = Vec::with_capacity(steps);
        for step in 0..steps {
            let t0 = telemetry::Stopwatch::start();
            let action = env.spark().space().random_action(&mut rng);
            let recommendation_s = t0.elapsed_s();
            let out = env.step(&action);
            records.push(StepRecord {
                step,
                exec_time_s: out.exec_time_s,
                failed: out.failed,
                reward: out.reward,
                recommendation_s,
                q_estimate: None,
                twinq_iterations: 0,
                action,
                resilience: StepResilience::default(),
                guardrail: StepGuardrail::default(),
            });
        }
        finish_report("Random", env, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    #[test]
    fn search_finds_better_than_default() {
        let mut env = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            55,
        );
        let rs = RandomSearch::new(1);
        let (_, best) = rs.search(&mut env, 120);
        assert!(best < env.default_exec_time());
    }

    #[test]
    fn online_tune_records_steps() {
        let mut env = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::WordCount, InputSize::D1),
            56,
        );
        let mut rs = RandomSearch::new(2);
        let report = rs.online_tune(&mut env, 5);
        assert_eq!(report.steps.len(), 5);
        assert_eq!(report.tuner, "Random");
    }
}
