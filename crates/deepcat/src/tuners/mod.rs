//! The three tuners compared throughout the paper's evaluation, behind one
//! [`Tuner`] trait: **DeepCAT** (TD3 + RDPER + Twin-Q Optimizer),
//! **CDBTune** (DDPG + TD-error PER) and **OtterTune** (GP + EI with
//! workload mapping), plus a random-search reference.

mod bestconfig;
mod cdbtune;
mod deepcat_tuner;
mod ottertune;
mod random_search;

pub use bestconfig::BestConfig;
pub use cdbtune::CdbTune;
pub use deepcat_tuner::DeepCat;
pub use ottertune::{build_repository, OtterTune};
pub use random_search::RandomSearch;

use crate::envwrap::TuningEnv;
use crate::online::TuningReport;

/// A configuration auto-tuner with an offline training stage and an online
/// tuning stage (Figure 1 of the paper).
pub trait Tuner {
    /// Display name used in reports ("DeepCAT", "CDBTune", "OtterTune").
    fn name(&self) -> &'static str;

    /// Offline stage: learn from the standard environment. Called once; the
    /// resulting model serves all subsequent online requests.
    fn offline_train(&mut self, env: &mut TuningEnv);

    /// Online stage: `steps` sequential tuning steps against the live
    /// target environment.
    fn online_tune(&mut self, env: &mut TuningEnv, steps: usize) -> TuningReport;
}
