//! The full DeepCAT tuner: TD3 trained offline with RDPER, online tuning
//! with the Twin-Q Optimizer.

use super::Tuner;
use crate::config::AgentConfig;
use crate::envwrap::TuningEnv;
use crate::offline::{train_td3, OfflineConfig};
use crate::online::{online_tune_td3, OnlineConfig, TuningReport};
use crate::td3::Td3Agent;

/// DeepCAT (Section 3 of the paper).
#[derive(Clone, Debug)]
pub struct DeepCat {
    pub agent_cfg: AgentConfig,
    pub offline_cfg: OfflineConfig,
    pub online_cfg: OnlineConfig,
    agent: Option<Td3Agent>,
}

impl DeepCat {
    /// Standard construction for a given environment shape.
    pub fn new(state_dim: usize, action_dim: usize, offline_iterations: usize, seed: u64) -> Self {
        Self {
            agent_cfg: AgentConfig::for_dims(state_dim, action_dim),
            offline_cfg: OfflineConfig::deepcat(offline_iterations, seed),
            online_cfg: OnlineConfig::deepcat(seed),
            agent: None,
        }
    }

    /// Construct for `env`'s dimensions.
    pub fn for_env(env: &TuningEnv, offline_iterations: usize, seed: u64) -> Self {
        Self::new(env.state_dim(), env.action_dim(), offline_iterations, seed)
    }

    /// The trained agent, if `offline_train` has run.
    pub fn agent(&self) -> Option<&Td3Agent> {
        self.agent.as_ref()
    }

    /// Install an externally-trained agent (e.g. a snapshot from a
    /// convergence study, or a model trained on a different workload for
    /// the adaptability experiments).
    pub fn with_agent(mut self, agent: Td3Agent) -> Self {
        self.agent = Some(agent);
        self
    }
}

impl Tuner for DeepCat {
    fn name(&self) -> &'static str {
        "DeepCAT"
    }

    fn offline_train(&mut self, env: &mut TuningEnv) {
        let (agent, _, _) = train_td3(env, self.agent_cfg.clone(), &self.offline_cfg, &[]);
        self.agent = Some(agent);
    }

    fn online_tune(&mut self, env: &mut TuningEnv, steps: usize) -> TuningReport {
        // PANIC-SAFETY: Tuner trait contract — callers run offline_train
        // before online_tune (enforced by the harness drivers).
        let agent = self.agent.as_mut().expect("offline_train must run first");
        let cfg = OnlineConfig {
            steps,
            ..self.online_cfg.clone()
        };
        online_tune_td3(agent, env, &cfg, "DeepCAT")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    #[test]
    fn end_to_end_beats_default() {
        let mut env = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::WordCount, InputSize::D1),
            31,
        );
        let mut tuner = DeepCat::for_env(&env, 700, 1);
        tuner.agent_cfg.hidden = vec![32, 32];
        tuner.agent_cfg.warmup_steps = 96;
        tuner.offline_train(&mut env);
        let report = tuner.online_tune(&mut env, 5);
        assert_eq!(report.tuner, "DeepCAT");
        assert!(report.speedup() > 1.5, "speedup {}", report.speedup());
    }

    #[test]
    #[should_panic(expected = "offline_train must run first")]
    fn online_without_offline_panics() {
        let mut env = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::WordCount, InputSize::D1),
            32,
        );
        let mut tuner = DeepCat::for_env(&env, 10, 1);
        tuner.online_tune(&mut env, 5);
    }
}
