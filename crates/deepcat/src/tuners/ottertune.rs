//! The OtterTune baseline (Van Aken et al., SIGMOD 2017): a machine-learning
//! pipeline — Lasso knob ranking, workload mapping against a repository of
//! previously-observed workloads, a Gaussian-process surrogate and Expected
//! Improvement — re-trained at every online step, which is exactly why its
//! recommendation time dwarfs the DRL approaches' (paper §5.2.2).

use super::Tuner;
use crate::envwrap::TuningEnv;
use crate::online::{finish_report, StepGuardrail, StepRecord, StepResilience, TuningReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spark_sim::{Cluster, SparkEnv, Workload};

use surrogate::{maximize_ei, rank_knobs, GaussianProcess, Observation, Repository};

/// Cap on merged GP training points (mapped history + online samples).
const MAX_GP_POINTS: usize = 250;

/// Build an OtterTune repository by sampling `samples_per` random
/// configurations on each of `workloads` (the offline data-collection
/// phase the paper runs for 3–4 days on the real cluster).
pub fn build_repository(
    cluster: &Cluster,
    workloads: &[Workload],
    samples_per: usize,
    seed: u64,
) -> Repository {
    let mut repo = Repository::new();
    for (wi, &w) in workloads.iter().enumerate() {
        let mut env = SparkEnv::new(cluster.clone(), w, seed ^ (wi as u64) << 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED ^ wi as u64);
        let mut obs = Vec::with_capacity(samples_per);
        for _ in 0..samples_per {
            let action = env.space().random_action(&mut rng);
            let result = env.evaluate_action(&action);
            obs.push(Observation {
                config: action,
                metrics: result.metrics.metric_vector(),
                exec_time_s: result.exec_time_s,
            });
        }
        repo.add(&w.to_string(), obs);
    }
    repo
}

/// OtterTune baseline tuner.
#[derive(Clone, Debug)]
pub struct OtterTune {
    repository: Repository,
    /// Lasso-ranked knob importance (computed during offline training).
    knob_ranking: Vec<usize>,
    seed: u64,
    /// Candidate count for EI maximization.
    pub ei_candidates: usize,
}

impl OtterTune {
    /// Build with a pre-collected repository.
    pub fn with_repository(repository: Repository, seed: u64) -> Self {
        Self {
            repository,
            knob_ranking: Vec::new(),
            seed,
            ei_candidates: 2000,
        }
    }

    /// The Lasso knob ranking (most important first); empty before
    /// `offline_train`.
    pub fn knob_ranking(&self) -> &[usize] {
        &self.knob_ranking
    }

    pub fn repository(&self) -> &Repository {
        &self.repository
    }
}

impl Tuner for OtterTune {
    fn name(&self) -> &'static str {
        "OtterTune"
    }

    /// OtterTune's offline stage with a pre-collected repository: rank knobs
    /// with Lasso over all repository observations.
    fn offline_train(&mut self, _env: &mut TuningEnv) {
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for w in &self.repository.workloads {
            for o in &w.observations {
                xs.push(o.config.clone());
                ys.push(o.exec_time_s.ln());
            }
        }
        if xs.len() >= 16 {
            self.knob_ranking = rank_knobs(&xs, &ys, 8);
        }
    }

    fn online_tune(&mut self, env: &mut TuningEnv, steps: usize) -> TuningReport {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x07E2);
        let dim = env.action_dim();
        let mut online: Vec<Observation> = Vec::new();
        let mut records = Vec::with_capacity(steps);
        for step in 0..steps {
            let t0 = telemetry::Stopwatch::start();
            // 1. Workload mapping: find the most similar stored workload
            //    given the online observations so far. Before any online
            //    sample exists, fall back to pooling the whole repository.
            let mapped = self.repository.map_workload(&online, None);
            let mut xs: Vec<Vec<f64>> = Vec::new();
            let mut ys: Vec<f64> = Vec::new();
            match mapped {
                Some(w) => {
                    for o in &w.observations {
                        xs.push(o.config.clone());
                        ys.push(o.exec_time_s);
                    }
                }
                None => {
                    for w in &self.repository.workloads {
                        for o in &w.observations {
                            xs.push(o.config.clone());
                            ys.push(o.exec_time_s);
                        }
                    }
                }
            }
            if xs.len() > MAX_GP_POINTS {
                // Keep an even subsample to bound the Cholesky cost.
                let stride = xs.len().div_ceil(MAX_GP_POINTS);
                xs = xs.iter().step_by(stride).cloned().collect();
                ys = ys.iter().step_by(stride).cloned().collect();
            }
            // Online samples always included (and never subsampled away).
            for o in &online {
                xs.push(o.config.clone());
                ys.push(o.exec_time_s);
            }
            // 2. GP surrogate on log execution time + EI proposal.
            let ys_log: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
            let best_y = ys_log.iter().cloned().fold(f64::INFINITY, f64::min);
            let action = match GaussianProcess::fit_with_model_selection(xs, &ys_log) {
                Ok(gp) => maximize_ei(&gp, dim, best_y, self.ei_candidates, &mut rng),
                Err(_) => env.spark().space().random_action(&mut rng),
            };
            let recommendation_s = t0.elapsed_s();

            // 3. Evaluate on the target.
            let out = env.step(&action);
            online.push(Observation {
                config: action.clone(),
                metrics: out.metrics.metric_vector(),
                exec_time_s: out.exec_time_s,
            });
            records.push(StepRecord {
                step,
                exec_time_s: out.exec_time_s,
                failed: out.failed,
                reward: out.reward,
                recommendation_s,
                q_estimate: None,
                twinq_iterations: 0,
                action,
                resilience: StepResilience::default(),
                guardrail: StepGuardrail::default(),
            });
        }
        finish_report("OtterTune", env, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{InputSize, WorkloadKind};

    fn small_repo(target: Workload) -> Repository {
        // Repository of *other* workloads, like the paper's setting where
        // the online request is a new workload.
        let workloads: Vec<Workload> = Workload::all_pairs()
            .into_iter()
            .filter(|w| *w != target && w.input == InputSize::D1)
            .collect();
        build_repository(&Cluster::cluster_a(), &workloads, 60, 9)
    }

    #[test]
    fn repository_contains_requested_workloads() {
        let target = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let repo = small_repo(target);
        assert_eq!(repo.workloads.len(), 3);
        assert!(repo.workloads.iter().all(|w| w.observations.len() == 60));
    }

    #[test]
    fn end_to_end_beats_default() {
        let target = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), target, 77);
        let mut tuner = OtterTune::with_repository(small_repo(target), 3);
        tuner.ei_candidates = 500;
        tuner.offline_train(&mut env);
        let report = tuner.online_tune(&mut env, 5);
        assert_eq!(report.tuner, "OtterTune");
        assert_eq!(report.steps.len(), 5);
        assert!(report.speedup() > 1.0, "speedup {}", report.speedup());
    }

    #[test]
    fn knob_ranking_is_computed_offline() {
        let target = Workload::new(WorkloadKind::PageRank, InputSize::D1);
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), target, 78);
        let mut tuner = OtterTune::with_repository(small_repo(target), 4);
        assert!(tuner.knob_ranking().is_empty());
        tuner.offline_train(&mut env);
        assert_eq!(tuner.knob_ranking().len(), 32);
        // Resource knobs should rank among the most important.
        let top8 = &tuner.knob_ranking()[..8];
        let resource_knobs = [
            spark_sim::idx::EXECUTOR_CORES,
            spark_sim::idx::EXECUTOR_MEMORY_MB,
            spark_sim::idx::EXECUTOR_INSTANCES,
            spark_sim::idx::DEFAULT_PARALLELISM,
        ];
        assert!(
            resource_knobs.iter().any(|k| top8.contains(k)),
            "at least one resource knob in the top 8: {top8:?}"
        );
    }

    #[test]
    fn recommendation_time_is_recorded() {
        let target = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), target, 79);
        let mut tuner = OtterTune::with_repository(small_repo(target), 5);
        tuner.ei_candidates = 200;
        tuner.offline_train(&mut env);
        let report = tuner.online_tune(&mut env, 3);
        assert!(report.total_rec_s > 0.0);
        assert!(report.steps.iter().all(|s| s.recommendation_s > 0.0));
    }
}
