//! The CDBTune baseline (Zhang et al., SIGMOD 2019): DDPG with TD-error
//! prioritized experience replay, online fine-tuning without any
//! pre-evaluation filtering of actions.

use super::Tuner;
use crate::config::AgentConfig;
use crate::ddpg::DdpgAgent;
use crate::envwrap::TuningEnv;
use crate::offline::{train_ddpg, OfflineConfig};
use crate::online::{online_tune_ddpg, OnlineConfig, TuningReport};

/// CDBTune baseline tuner.
#[derive(Clone, Debug)]
pub struct CdbTune {
    pub agent_cfg: AgentConfig,
    pub offline_cfg: OfflineConfig,
    pub online_cfg: OnlineConfig,
    agent: Option<DdpgAgent>,
}

impl CdbTune {
    pub fn new(state_dim: usize, action_dim: usize, offline_iterations: usize, seed: u64) -> Self {
        Self {
            agent_cfg: AgentConfig::for_dims(state_dim, action_dim),
            offline_cfg: OfflineConfig::cdbtune(offline_iterations, seed),
            online_cfg: OnlineConfig::without_twinq(seed),
            agent: None,
        }
    }

    pub fn for_env(env: &TuningEnv, offline_iterations: usize, seed: u64) -> Self {
        Self::new(env.state_dim(), env.action_dim(), offline_iterations, seed)
    }

    pub fn agent(&self) -> Option<&DdpgAgent> {
        self.agent.as_ref()
    }

    /// Install an externally-trained agent (adaptability experiments).
    pub fn with_agent(mut self, agent: DdpgAgent) -> Self {
        self.agent = Some(agent);
        self
    }
}

impl Tuner for CdbTune {
    fn name(&self) -> &'static str {
        "CDBTune"
    }

    fn offline_train(&mut self, env: &mut TuningEnv) {
        let (agent, _) = train_ddpg(env, self.agent_cfg.clone(), &self.offline_cfg);
        self.agent = Some(agent);
    }

    fn online_tune(&mut self, env: &mut TuningEnv, steps: usize) -> TuningReport {
        // PANIC-SAFETY: Tuner trait contract — callers run offline_train
        // before online_tune (enforced by the harness drivers).
        let agent = self.agent.as_mut().expect("offline_train must run first");
        let cfg = OnlineConfig {
            steps,
            ..self.online_cfg.clone()
        };
        online_tune_ddpg(agent, env, &cfg, "CDBTune")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    #[test]
    fn end_to_end_beats_default() {
        let mut env = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::WordCount, InputSize::D1),
            33,
        );
        let mut tuner = CdbTune::for_env(&env, 700, 2);
        tuner.agent_cfg.hidden = vec![32, 32];
        tuner.agent_cfg.warmup_steps = 96;
        tuner.offline_train(&mut env);
        let report = tuner.online_tune(&mut env, 5);
        assert_eq!(report.tuner, "CDBTune");
        assert!(report.speedup() > 1.2, "speedup {}", report.speedup());
        // No Twin-Q Optimizer ⇒ no optimization rounds recorded.
        assert!(report.steps.iter().all(|s| s.twinq_iterations == 0));
    }
}
