//! Deep Deterministic Policy Gradient (Lillicrap et al. 2015) — the agent
//! inside the CDBTune baseline. Single critic, per-step actor updates, no
//! target smoothing: exactly the algorithm whose value overestimation TD3
//! (and hence DeepCAT) corrects.

use crate::config::AgentConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Batch, GaussianNoise};
use tensor_nn::{loss, Activation, Adam, Matrix, Mlp};

/// Diagnostics from one DDPG gradient step.
#[derive(Clone, Copy, Debug, Default)]
pub struct DdpgStats {
    pub critic_loss: f64,
    pub actor_loss: f64,
    /// Mean Q(s, μ(s)) over the batch.
    pub mean_q: f64,
}

/// The DDPG agent.
#[derive(Clone, Debug)]
pub struct DdpgAgent {
    pub cfg: AgentConfig,
    actor: Mlp,
    actor_target: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    explore: GaussianNoise,
    rng: StdRng,
    train_steps: u64,
}

fn layer_sizes(input: usize, hidden: &[usize], output: usize) -> Vec<usize> {
    let mut v = Vec::with_capacity(hidden.len() + 2);
    v.push(input);
    v.extend_from_slice(hidden);
    v.push(output);
    v
}

impl DdpgAgent {
    pub fn new(cfg: AgentConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(
            &layer_sizes(cfg.state_dim, &cfg.hidden, cfg.action_dim),
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let critic = Mlp::new(
            &layer_sizes(cfg.state_dim + cfg.action_dim, &cfg.hidden, 1),
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let explore = GaussianNoise::new(cfg.action_dim, cfg.exploration_noise);
        Self {
            actor_target: actor.clone(),
            critic_target: critic.clone(),
            actor_opt: Adam::new(cfg.actor_lr),
            critic_opt: Adam::new(cfg.critic_lr),
            actor,
            critic,
            explore,
            rng,
            cfg,
            train_steps: 0,
        }
    }

    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Deterministic policy action.
    pub fn select_action(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.cfg.state_dim);
        self.actor
            .infer(&Matrix::row_vector(state))
            .as_slice()
            .to_vec()
    }

    /// Policy action plus exploration noise.
    pub fn select_action_noisy(&mut self, state: &[f64]) -> Vec<f64> {
        let a = self.select_action(state);
        self.explore.perturb(&a, &mut self.rng)
    }

    /// Single-critic Q estimate.
    pub fn q_value(&self, state: &[f64], action: &[f64]) -> f64 {
        let sa = Matrix::row_vector(state).hconcat(&Matrix::row_vector(action));
        self.critic.infer(&sa).get(0, 0)
    }

    /// One DDPG gradient step; returns diagnostics and per-sample TD errors
    /// (CDBTune pairs DDPG with TD-error prioritized replay).
    pub fn train_step(&mut self, batch: &Batch) -> (DdpgStats, Vec<f64>) {
        let m = batch.len();
        assert!(m > 0);
        let states = Matrix::from_rows(
            &batch
                .transitions
                .iter()
                .map(|t| t.state.as_slice())
                .collect::<Vec<_>>(),
        );
        let actions = Matrix::from_rows(
            &batch
                .transitions
                .iter()
                .map(|t| t.action.as_slice())
                .collect::<Vec<_>>(),
        );
        let next_states = Matrix::from_rows(
            &batch
                .transitions
                .iter()
                .map(|t| t.next_state.as_slice())
                .collect::<Vec<_>>(),
        );

        // Target: y = r + γ(1−done)·Q'(s', μ'(s')). No twin minimum, no
        // smoothing — the overestimation-prone original.
        let next_actions = self.actor_target.infer(&next_states);
        let sa_next = next_states.hconcat(&next_actions);
        let q_t = self.critic_target.infer(&sa_next);
        let y = Matrix::from_fn(m, 1, |r, _| {
            let t = &batch.transitions[r];
            let not_done = if t.done { 0.0 } else { 1.0 };
            self.cfg.clip_reward(t.reward) + self.cfg.gamma * not_done * q_t.get(r, 0)
        });

        // Critic update.
        let sa = states.hconcat(&actions);
        let cache = self.critic.forward(&sa);
        let td_errors: Vec<f64> = (0..m)
            .map(|r| cache.output.get(r, 0) - y.get(r, 0))
            .collect();
        let grad = loss::weighted_mse_grad(&cache.output, &y, &batch.weights);
        let critic_loss = loss::mse(&cache.output, &y);
        let (_, mut c_grads) = self.critic.backward(&cache, &grad);
        c_grads.clip_global_norm(10.0);
        self.critic_opt.step(&mut self.critic, &c_grads);

        // Actor update every step.
        let a_cache = self.actor.forward(&states);
        let sa_pi = states.hconcat(&a_cache.output);
        let q_cache = self.critic.forward(&sa_pi);
        let mean_q = q_cache.output.mean();
        let gq = Matrix::full(m, 1, -1.0 / m as f64);
        let (grad_sa, _) = self.critic.backward(&q_cache, &gq);
        let (_, grad_a) = grad_sa.hsplit(self.cfg.state_dim);
        let (_, mut a_grads) = self.actor.backward(&a_cache, &grad_a);
        a_grads.clip_global_norm(10.0);
        self.actor_opt.step(&mut self.actor, &a_grads);

        self.actor_target
            .soft_update_from(&self.actor, self.cfg.tau);
        self.critic_target
            .soft_update_from(&self.critic, self.cfg.tau);
        self.train_steps += 1;

        (
            DdpgStats {
                critic_loss,
                actor_loss: -mean_q,
                mean_q,
            },
            td_errors,
        )
    }

    pub fn diverged(&self) -> bool {
        self.actor.has_non_finite() || self.critic.has_non_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl::Transition;

    fn toy_cfg() -> AgentConfig {
        let mut c = AgentConfig::for_dims(2, 3);
        c.hidden = vec![16, 16];
        c
    }

    fn bandit_batch(agent: &mut DdpgAgent, n: usize) -> Batch {
        let target = [0.3, 0.7, 0.9];
        let mut transitions = Vec::with_capacity(n);
        for _ in 0..n {
            let s = vec![0.0, 0.5];
            let a = agent.select_action_noisy(&s);
            let d2: f64 = a.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum();
            transitions.push(Transition::new(s.clone(), a, 1.0 - d2, s, true));
        }
        let n = transitions.len();
        Batch {
            transitions,
            weights: vec![1.0; n],
            indices: vec![0; n],
        }
    }

    #[test]
    fn learns_a_deterministic_bandit() {
        let mut agent = DdpgAgent::new(toy_cfg(), 7);
        let target = [0.3, 0.7, 0.9];
        for _ in 0..1500 {
            let b = bandit_batch(&mut agent, 16);
            agent.train_step(&b);
        }
        assert!(!agent.diverged());
        let a = agent.select_action(&[0.0, 0.5]);
        let d2: f64 = a.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum();
        assert!(d2 < 0.1, "d² = {d2}, a = {a:?}");
    }

    #[test]
    fn actions_bounded() {
        let mut agent = DdpgAgent::new(toy_cfg(), 8);
        for _ in 0..10 {
            let a = agent.select_action_noisy(&[0.1, 0.1]);
            assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn td_errors_returned_per_sample() {
        let mut agent = DdpgAgent::new(toy_cfg(), 9);
        let b = bandit_batch(&mut agent, 8);
        let (_, tds) = agent.train_step(&b);
        assert_eq!(tds.len(), 8);
    }

    #[test]
    fn actor_updates_every_step() {
        let mut agent = DdpgAgent::new(toy_cfg(), 10);
        let b = bandit_batch(&mut agent, 8);
        let before = agent.select_action(&[0.0, 0.5]);
        agent.train_step(&b);
        let after = agent.select_action(&[0.0, 0.5]);
        assert_ne!(before, after, "one step must move the policy");
    }
}
