//! Segmented, checksummed commitlog for online tuning sessions
//! (DESIGN.md §15).
//!
//! Layout of a session's log directory:
//!
//! ```text
//! <dir>/snapshot-000000000004.json   compacted OnlineCheckpoint at step 4
//! <dir>/segment-000000000004.log     step records with seq >= 4
//! ```
//!
//! Each record in a segment is framed as
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][seq: u64 LE][payload: len bytes]
//! ```
//!
//! where `crc` is CRC-32 (IEEE) over `seq || payload` and `seq` is the
//! step index, strictly monotonic across segments. The payload is the
//! JSON-encoded [`StepDelta`] for that step.
//!
//! Write discipline: every record append is followed by an `fsync` of
//! the segment before the session continues; snapshots are written to a
//! `.tmp` sibling, fsynced, atomically renamed into place, and the
//! directory is fsynced so the rename itself is durable. Compaction
//! (rolling a fresh segment at the snapshot step and deleting everything
//! older) runs only after the snapshot rename is durable, so there is no
//! instant at which the directory lacks a recoverable state.
//!
//! Recovery loads the newest parseable snapshot and replays the segment
//! tail, truncating at the first torn, short, corrupt, or out-of-order
//! record instead of failing — everything before that point is provably
//! intact (length + CRC + contiguous sequence numbers).

use crate::persist::OnlineCheckpoint;
use crate::storage::{SharedStorage, Storage, StorageError};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

use crate::guardrail::GuardrailSnapshot;
use crate::online::StepRecord;
use crate::resilience::ResilienceSnapshot;
use rl::Transition;

/// Frame header size: len (4) + crc (4) + seq (8).
pub const RECORD_HEADER_BYTES: usize = 16;
/// Sanity bound on a single record payload; anything larger is treated
/// as a torn length field during recovery.
pub const MAX_RECORD_BYTES: u32 = 1 << 26;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; no external crates.
// ---------------------------------------------------------------------------

const fn make_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // PANIC-SAFETY: i < 256 by the loop condition.
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = make_crc32_table();

fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        // PANIC-SAFETY: the index is masked to 8 bits, always < 256.
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE) of `seq || payload`, the integrity check of one record.
pub fn record_crc(seq: u64, payload: &[u8]) -> u32 {
    let state = crc32_update(0xFFFF_FFFF, &seq.to_le_bytes());
    !crc32_update(state, payload)
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// Frame one record for appending to a segment.
pub fn frame_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn read_u32(bytes: &[u8], off: usize) -> Option<u32> {
    bytes
        .get(off..off.checked_add(4)?)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
}

fn read_u64(bytes: &[u8], off: usize) -> Option<u64> {
    bytes
        .get(off..off.checked_add(8)?)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_le_bytes)
}

/// One well-formed frame pulled out of a segment.
struct Frame<'a> {
    seq: u64,
    payload: &'a [u8],
    /// Total frame size in bytes (header + payload).
    size: usize,
}

/// Parse the frame starting at `off`. `Ok(None)` means a clean end of
/// segment; `Err(reason)` means the bytes from `off` on are torn or
/// corrupt and must be truncated.
fn parse_frame(bytes: &[u8], off: usize) -> Result<Option<Frame<'_>>, &'static str> {
    if off == bytes.len() {
        return Ok(None);
    }
    let len = match read_u32(bytes, off) {
        Some(len) => len,
        None => return Err("torn_header"),
    };
    if len > MAX_RECORD_BYTES {
        return Err("bad_length");
    }
    let crc = match read_u32(bytes, off + 4) {
        Some(crc) => crc,
        None => return Err("torn_header"),
    };
    let seq = match read_u64(bytes, off + 8) {
        Some(seq) => seq,
        None => return Err("torn_header"),
    };
    let start = off + RECORD_HEADER_BYTES;
    let payload = match bytes.get(start..start + len as usize) {
        Some(p) => p,
        None => return Err("torn_payload"),
    };
    if record_crc(seq, payload) != crc {
        return Err("crc_mismatch");
    }
    Ok(Some(Frame {
        seq,
        payload,
        size: RECORD_HEADER_BYTES + len as usize,
    }))
}

// ---------------------------------------------------------------------------
// Step deltas
// ---------------------------------------------------------------------------

/// Everything appended to the log for one completed online step. Small
/// (one transition + RNG states + bookkeeping) compared to the full
/// [`OnlineCheckpoint`], which is only written at snapshot boundaries.
///
/// Recovery rebuilds agent weights by replaying these deltas on top of
/// the snapshot: push the transition, restore the loop RNG to
/// `loop_rng_pre_train`, re-run the (deterministic) fine-tune loop, and
/// verify both RNG streams land exactly on the recorded post states —
/// any divergence is detected, not silently absorbed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepDelta {
    /// Step index == record sequence number.
    pub seq: u64,
    /// The fully-resolved step record (what reports are made of).
    pub record: StepRecord,
    /// The transition pushed into the replay buffer this step.
    pub transition: Transition,
    /// Loop RNG state captured right before the fine-tune loop.
    pub loop_rng_pre_train: Vec<u64>,
    /// Loop RNG state after the fine-tune loop (replay verification).
    pub loop_rng_post: Vec<u64>,
    /// Agent RNG state after the fine-tune loop (replay verification).
    pub agent_rng_post: Vec<u64>,
    /// Cumulative virtual seconds spent after this step.
    pub spent_s: f64,
    /// Simulator evaluation counter after this step.
    pub eval_count: u64,
    /// Observed environment state after this step.
    pub env_state: Vec<f64>,
    /// Episode position after this step.
    pub step_in_episode: usize,
    /// Resilience-wrapper state after this step.
    pub resilience: ResilienceSnapshot,
    /// Guardrail state after this step (when guardrails are on).
    pub guardrail: Option<GuardrailSnapshot>,
}

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// Compaction and segmentation knobs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitlogPolicy {
    /// Write a compacted snapshot every this many steps (0 = only the
    /// initial snapshot).
    pub snapshot_every: usize,
    /// Roll to a new segment file after this many records.
    pub segment_max_records: u64,
}

impl Default for CommitlogPolicy {
    fn default() -> Self {
        Self {
            snapshot_every: 8,
            segment_max_records: 64,
        }
    }
}

// ---------------------------------------------------------------------------
// File naming
// ---------------------------------------------------------------------------

fn segment_name(start_seq: u64) -> String {
    format!("segment-{start_seq:012}.log")
}

fn snapshot_name(step: u64) -> String {
    format!("snapshot-{step:012}.json")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() == 12 && digits.bytes().all(|b| b.is_ascii_digit()) {
        digits.parse().ok()
    } else {
        None
    }
}

fn parse_segment(name: &str) -> Option<u64> {
    parse_numbered(name, "segment-", ".log")
}

fn parse_snapshot(name: &str) -> Option<u64> {
    parse_numbered(name, "snapshot-", ".json")
}

fn is_log_file(name: &str) -> bool {
    parse_segment(name).is_some() || parse_snapshot(name).is_some() || name.ends_with(".tmp")
}

// ---------------------------------------------------------------------------
// Recovery result
// ---------------------------------------------------------------------------

/// What [`Commitlog::open`] reconstructed from a log directory.
#[derive(Debug)]
pub struct Recovered {
    /// The newest parseable snapshot.
    pub checkpoint: OnlineCheckpoint,
    /// Step at which the snapshot was taken (== `checkpoint.next_step`).
    pub snapshot_step: u64,
    /// Valid records after the snapshot, contiguous from `snapshot_step`.
    pub tail: Vec<StepDelta>,
    /// Torn/corrupt records dropped at the truncation point (1 per
    /// truncation event; later unreachable segments count as bytes only).
    pub truncated_records: u64,
    /// Total bytes physically discarded during recovery.
    pub truncated_bytes: u64,
    /// Snapshots that failed to parse and were skipped over.
    pub corrupt_snapshots: u64,
}

// ---------------------------------------------------------------------------
// Commitlog
// ---------------------------------------------------------------------------

/// Append-side handle to a session's log directory. All I/O goes through
/// the shared [`crate::storage::Storage`] handle so faults can be
/// injected; telemetry is emitted only after the storage lock is
/// released.
#[derive(Debug)]
pub struct Commitlog {
    dir: PathBuf,
    storage: SharedStorage,
    policy: CommitlogPolicy,
    next_seq: u64,
    segment_start: u64,
    segment_records: u64,
}

fn invalid_data(msg: String) -> StorageError {
    StorageError::Io(io::Error::new(io::ErrorKind::InvalidData, msg))
}

fn encode_json<T: Serialize>(value: &T) -> Result<Vec<u8>, StorageError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| invalid_data(format!("commitlog serialization failed: {e}")))
}

/// Decode a JSON payload; any UTF-8 or parse failure yields `None`
/// (recovery treats it as corrupt and truncates).
fn decode_json<T: Deserialize>(bytes: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(bytes).ok()?;
    serde_json::from_str(text).ok()
}

impl Commitlog {
    /// Start a fresh log in `dir`, wiping any leftover log files from a
    /// previous session (a fresh session must not resurrect stale state).
    pub fn create(
        dir: &Path,
        storage: SharedStorage,
        policy: CommitlogPolicy,
    ) -> Result<Self, StorageError> {
        let res = (|| {
            let mut s = storage.lock();
            s.create_dir_all(dir)?;
            let names = s.list(dir)?;
            for name in &names {
                if is_log_file(name) {
                    s.remove(&dir.join(name))?;
                }
            }
            s.sync_dir(dir)
        })();
        emit_injected(&storage);
        res?;
        Ok(Self {
            dir: dir.to_path_buf(),
            storage,
            policy,
            next_seq: 0,
            segment_start: 0,
            segment_records: 0,
        })
    }

    /// Open an existing log and recover its durable state. Returns
    /// `None` for the recovery when nothing durable exists (e.g. the
    /// process died before the initial snapshot became durable) — the
    /// caller should then start the session from scratch.
    pub fn open(
        dir: &Path,
        storage: SharedStorage,
        policy: CommitlogPolicy,
    ) -> Result<(Self, Option<Recovered>), StorageError> {
        let res = {
            let mut s = storage.lock();
            // GUARD-EMIT: scan_dir only buffers injected faults in the
            // shim; their telemetry is emitted after the guard drops.
            scan_dir(&mut **s, dir)
        };
        emit_injected(&storage);
        let scan = res?;
        match scan.recovered {
            Some(state) => {
                let next_seq = state.snapshot_step + state.tail.len() as u64;
                telemetry::event!(
                    "commitlog.recovery",
                    snapshot_step = state.snapshot_step,
                    tail_records = state.tail.len(),
                    truncated = state.truncated_records,
                    truncated_bytes = state.truncated_bytes,
                    corrupt_snapshots = scan.corrupt_snapshots
                );
                if state.truncated_records > 0 {
                    telemetry::inc("commitlog.truncated_records", state.truncated_records);
                }
                let log = Self {
                    dir: dir.to_path_buf(),
                    storage,
                    policy,
                    next_seq,
                    segment_start: state.segment_start,
                    segment_records: state.segment_records,
                };
                let recovered = Recovered {
                    checkpoint: state.checkpoint,
                    snapshot_step: state.snapshot_step,
                    tail: state.tail,
                    truncated_records: state.truncated_records,
                    truncated_bytes: state.truncated_bytes,
                    corrupt_snapshots: scan.corrupt_snapshots,
                };
                Ok((log, Some(recovered)))
            }
            None => {
                telemetry::event!(
                    "commitlog.recovery",
                    snapshot_step = -1i64,
                    tail_records = 0usize,
                    truncated = 0u64,
                    truncated_bytes = 0u64,
                    corrupt_snapshots = scan.corrupt_snapshots
                );
                Ok((
                    Self {
                        dir: dir.to_path_buf(),
                        storage,
                        policy,
                        next_seq: 0,
                        segment_start: 0,
                        segment_records: 0,
                    },
                    None,
                ))
            }
        }
    }

    /// Next sequence number the log expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub fn policy(&self) -> &CommitlogPolicy {
        &self.policy
    }

    fn segment_path(&self) -> PathBuf {
        self.dir.join(segment_name(self.segment_start))
    }

    /// Append one step delta and fsync it. `delta.seq` must equal
    /// [`Self::next_seq`].
    pub fn append(&mut self, delta: &StepDelta) -> Result<(), StorageError> {
        if delta.seq != self.next_seq {
            return Err(invalid_data(format!(
                "commitlog append out of order: got seq {}, expected {}",
                delta.seq, self.next_seq
            )));
        }
        if self.segment_records >= self.policy.segment_max_records {
            self.roll_segment();
        }
        let payload = encode_json(delta)?;
        let frame = frame_record(delta.seq, &payload);
        let path = self.segment_path();
        let res = (|| {
            let mut s = self.storage.lock();
            s.append(&path, &frame)?;
            s.fsync(&path)
        })();
        emit_injected(&self.storage);
        res?;
        self.next_seq += 1;
        self.segment_records += 1;
        telemetry::event!("commitlog.append", seq = delta.seq, bytes = frame.len());
        telemetry::inc("commitlog.fsync", 1);
        Ok(())
    }

    fn roll_segment(&mut self) {
        let from = self.segment_start;
        self.segment_start = self.next_seq;
        self.segment_records = 0;
        telemetry::event!(
            "commitlog.segment_rolled",
            from_start = from,
            new_start = self.next_seq
        );
    }

    /// Write a compacted snapshot at the current sequence position, then
    /// delete every older segment and snapshot. `cp.next_step` must
    /// equal [`Self::next_seq`].
    pub fn snapshot(&mut self, cp: &OnlineCheckpoint) -> Result<(), StorageError> {
        let step = cp.next_step as u64;
        if step != self.next_seq {
            return Err(invalid_data(format!(
                "commitlog snapshot out of position: checkpoint at step {}, log at seq {}",
                step, self.next_seq
            )));
        }
        let bytes = encode_json(cp)?;
        let final_path = self.dir.join(snapshot_name(step));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(step)));
        let res = (|| {
            let mut s = self.storage.lock();
            s.write_all(&tmp_path, &bytes)?;
            s.fsync(&tmp_path)?;
            s.rename(&tmp_path, &final_path)?;
            s.sync_dir(&self.dir)
        })();
        emit_injected(&self.storage);
        res?;
        telemetry::event!("commitlog.snapshot", step = step, bytes = bytes.len());

        // Compaction: everything before the snapshot is now redundant.
        // The snapshot is already durable, so a crash anywhere in here
        // only leaves extra files for the next recovery to skip.
        if self.segment_records > 0 || self.segment_start != step {
            self.roll_segment();
        }
        let res = (|| {
            let mut s = self.storage.lock();
            let names = s.list(&self.dir)?;
            let mut removed = 0u64;
            for name in &names {
                let stale = parse_segment(name).is_some_and(|start| start < step)
                    || parse_snapshot(name).is_some_and(|idx| idx < step);
                if stale {
                    s.remove(&self.dir.join(name))?;
                    removed += 1;
                }
            }
            s.sync_dir(&self.dir)?;
            Ok::<u64, StorageError>(removed)
        })();
        emit_injected(&self.storage);
        let removed = res?;
        if removed > 0 {
            telemetry::event!("commitlog.compacted", step = step, removed_files = removed);
        }
        Ok(())
    }
}

/// Durable state reconstructed by [`scan_dir`].
struct RecoveredState {
    checkpoint: OnlineCheckpoint,
    snapshot_step: u64,
    tail: Vec<StepDelta>,
    truncated_records: u64,
    truncated_bytes: u64,
    segment_start: u64,
    segment_records: u64,
}

struct ScanResult {
    recovered: Option<RecoveredState>,
    corrupt_snapshots: u64,
}

/// The recovery algorithm (DESIGN.md §15): newest parseable snapshot +
/// contiguous segment-tail replay, physically truncating at the first
/// torn/short/corrupt/out-of-order record and discarding everything
/// after it. Runs entirely under the caller's storage lock.
fn scan_dir(s: &mut dyn Storage, dir: &Path) -> Result<ScanResult, StorageError> {
    s.create_dir_all(dir)?;

    // Leftover temp files are by definition not durable state.
    let names = s.list(dir)?;
    for name in &names {
        if name.ends_with(".tmp") {
            s.remove(&dir.join(name))?;
        }
    }

    // Newest parseable snapshot wins; corrupt ones are skipped.
    let mut snapshots: Vec<(u64, &String)> = names
        .iter()
        .filter_map(|n| parse_snapshot(n).map(|idx| (idx, n)))
        .collect();
    snapshots.sort();
    let mut corrupt_snapshots = 0u64;
    let mut best: Option<(u64, OnlineCheckpoint)> = None;
    for (idx, name) in snapshots.iter().rev() {
        let bytes = s.read(&dir.join(name))?;
        match decode_json::<OnlineCheckpoint>(&bytes) {
            Some(cp) if cp.next_step as u64 == *idx => {
                best = Some((*idx, cp));
                break;
            }
            _ => corrupt_snapshots += 1,
        }
    }

    let (snapshot_step, checkpoint) = match best {
        Some(found) => found,
        None => {
            // Nothing durable: wipe whatever half-written files remain
            // and report a fresh start.
            for name in &names {
                if is_log_file(name) && !name.ends_with(".tmp") {
                    s.remove(&dir.join(name))?;
                }
            }
            s.sync_dir(dir)?;
            return Ok(ScanResult {
                recovered: None,
                corrupt_snapshots,
            });
        }
    };

    let mut segments: Vec<(u64, &String)> = names
        .iter()
        .filter_map(|n| parse_segment(n).map(|start| (start, n)))
        .collect();
    segments.sort();

    let mut expected = snapshot_step;
    let mut tail: Vec<StepDelta> = Vec::new();
    let mut truncated_records = 0u64;
    let mut truncated_bytes = 0u64;
    // Where appends continue: the last surviving segment, or a fresh one
    // at `expected` when none survives.
    let mut live_segment: Option<(u64, u64)> = None; // (start, records_in_it)
    let mut torn = false;

    for (start, name) in &segments {
        let path = dir.join(name);
        if torn || *start > expected {
            // Unreachable after a truncation or a sequence gap: discard
            // entirely.
            let bytes = s.read(&path)?;
            truncated_bytes += bytes.len() as u64;
            s.remove(&path)?;
            torn = true;
            continue;
        }
        let bytes = s.read(&path)?;
        let mut off = 0usize;
        loop {
            match parse_frame(&bytes, off) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    if frame.seq < expected {
                        // Superseded by the snapshot (compaction did not
                        // finish before the crash).
                        off += frame.size;
                        continue;
                    }
                    if frame.seq != expected {
                        // Sequence gap: nothing after this point can be
                        // trusted.
                        truncated_records += 1;
                        torn = true;
                        break;
                    }
                    match decode_json::<StepDelta>(frame.payload) {
                        Some(delta) if delta.seq == frame.seq => {
                            off += frame.size;
                            expected += 1;
                            tail.push(delta);
                        }
                        _ => {
                            // The frame is intact but the payload does
                            // not decode to a delta for this seq:
                            // treat as corrupt and truncate.
                            truncated_records += 1;
                            torn = true;
                            break;
                        }
                    }
                }
                Err(_reason) => {
                    truncated_records += 1;
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            truncated_bytes += (bytes.len() - off) as u64;
            if off == 0 && *start > snapshot_step {
                // Nothing valid in this segment at all.
                s.remove(&path)?;
            } else {
                s.truncate(&path, off as u64)?;
                s.fsync(&path)?;
                live_segment = Some((*start, expected.saturating_sub(*start)));
            }
        } else {
            live_segment = Some((*start, expected.saturating_sub(*start)));
        }
    }
    s.sync_dir(dir)?;
    let (segment_start, segment_records) = live_segment.unwrap_or((expected, 0));
    Ok(ScanResult {
        recovered: Some(RecoveredState {
            checkpoint,
            snapshot_step,
            tail,
            truncated_records,
            truncated_bytes,
            segment_start,
            segment_records,
        }),
        corrupt_snapshots,
    })
}

/// Drain fault records accumulated inside the storage shim and emit them
/// as telemetry — outside the lock, per `concurrency.guard_across_emit`.
fn emit_injected(storage: &SharedStorage) {
    let injected = storage.lock().take_injected();
    for fault in injected {
        telemetry::event!(
            "commitlog.fault_injected",
            at_op = fault.at_op,
            fault = fault.label,
            file = fault.file.as_str()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{shared_storage, MemStorage};

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(!crc32_update(0xFFFF_FFFF, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_round_trip() {
        let payload = br#"{"x":1}"#;
        let frame = frame_record(7, payload);
        assert_eq!(frame.len(), RECORD_HEADER_BYTES + payload.len());
        let parsed = parse_frame(&frame, 0)
            .expect("valid frame")
            .expect("present");
        assert_eq!(parsed.seq, 7);
        assert_eq!(parsed.payload, payload);
        assert_eq!(parsed.size, frame.len());
        assert!(parse_frame(&frame, frame.len())
            .expect("clean end")
            .is_none());
    }

    #[test]
    fn parse_frame_rejects_torn_and_corrupt() {
        let frame = frame_record(3, b"payload-bytes");
        // Torn header.
        assert!(parse_frame(&frame[..10], 0).is_err());
        // Torn payload.
        assert!(parse_frame(&frame[..frame.len() - 1], 0).is_err());
        // Bit flip in the payload.
        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert!(matches!(parse_frame(&flipped, 0), Err("crc_mismatch")));
        // Absurd length field.
        let mut bad_len = frame;
        bad_len[3] = 0xFF;
        assert!(parse_frame(&bad_len, 0).is_err());
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_segment(&segment_name(42)), Some(42));
        assert_eq!(parse_snapshot(&snapshot_name(7)), Some(7));
        assert_eq!(parse_segment("segment-12.log"), None);
        assert_eq!(parse_snapshot(&segment_name(1)), None);
        assert!(is_log_file("snapshot-000000000001.json.tmp"));
    }

    #[test]
    fn open_on_empty_dir_is_fresh() {
        let storage = shared_storage(MemStorage::new());
        let (log, rec) =
            Commitlog::open(Path::new("/log"), storage, CommitlogPolicy::default()).expect("open");
        assert!(rec.is_none());
        assert_eq!(log.next_seq(), 0);
    }
}
