//! Twin Delayed Deep Deterministic Policy Gradient (TD3, Fujimoto et al.
//! 2018) — the learning algorithm inside DeepCAT. Twin critics with
//! clipped double-Q targets, target-policy smoothing, and delayed actor
//! updates.

use crate::config::AgentConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use rl::{Batch, GaussianNoise};
use tensor_nn::{loss, Activation, Adam, Matrix, Mlp};

/// Diagnostics from one gradient step.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainStats {
    pub critic1_loss: f64,
    pub critic2_loss: f64,
    /// Actor objective `−E[Q1(s, μ(s))]` (only on delayed update steps).
    pub actor_loss: Option<f64>,
    /// Mean of `min(Q1, Q2)` over the batch under the current policy.
    pub mean_min_q: f64,
}

/// Serializable snapshot of a trained TD3 agent (networks + optimizer
/// moments + step counter) — what `deepcat` persists between the offline
/// and online stages.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Td3Checkpoint {
    pub cfg: AgentConfig,
    pub actor: Mlp,
    pub actor_target: Mlp,
    pub critic1: Mlp,
    pub critic2: Mlp,
    pub critic1_target: Mlp,
    pub critic2_target: Mlp,
    pub actor_opt: Adam,
    pub critic1_opt: Adam,
    pub critic2_opt: Adam,
    pub train_steps: u64,
}

/// The TD3 agent.
#[derive(Clone, Debug)]
pub struct Td3Agent {
    pub cfg: AgentConfig,
    actor: Mlp,
    actor_target: Mlp,
    critic1: Mlp,
    critic2: Mlp,
    critic1_target: Mlp,
    critic2_target: Mlp,
    actor_opt: Adam,
    critic1_opt: Adam,
    critic2_opt: Adam,
    explore: GaussianNoise,
    rng: StdRng,
    train_steps: u64,
}

fn layer_sizes(input: usize, hidden: &[usize], output: usize) -> Vec<usize> {
    let mut v = Vec::with_capacity(hidden.len() + 2);
    v.push(input);
    v.extend_from_slice(hidden);
    v.push(output);
    v
}

impl Td3Agent {
    pub fn new(cfg: AgentConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Actor: state → [0,1]^action (sigmoid head matches the paper's
        // normalized action space).
        let actor = Mlp::new(
            &layer_sizes(cfg.state_dim, &cfg.hidden, cfg.action_dim),
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        // Critics: [state | action] → scalar Q.
        let critic_sizes = layer_sizes(cfg.state_dim + cfg.action_dim, &cfg.hidden, 1);
        let critic1 = Mlp::new(
            &critic_sizes,
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let critic2 = Mlp::new(
            &critic_sizes,
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let explore = GaussianNoise::new(cfg.action_dim, cfg.exploration_noise);
        Self {
            actor_target: actor.clone(),
            critic1_target: critic1.clone(),
            critic2_target: critic2.clone(),
            actor_opt: Adam::new(cfg.actor_lr),
            critic1_opt: Adam::new(cfg.critic_lr),
            critic2_opt: Adam::new(cfg.critic_lr),
            actor,
            critic1,
            critic2,
            explore,
            rng,
            cfg,
            train_steps: 0,
        }
    }

    /// Gradient steps taken so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Snapshot the agent's internal RNG (target-policy smoothing noise)
    /// so a resumed run continues the exact same random stream.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore an RNG snapshot taken with [`rng_state`](Self::rng_state).
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Deterministic policy action for `state`.
    pub fn select_action(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.cfg.state_dim);
        let out = self.actor.infer(&Matrix::row_vector(state));
        out.as_slice().to_vec()
    }

    /// Policy action plus exploration noise, clamped to `[0,1]`.
    pub fn select_action_noisy(&mut self, state: &[f64]) -> Vec<f64> {
        let a = self.select_action(state);
        self.explore.perturb(&a, &mut self.rng)
    }

    /// Twin critic estimates `(Q1, Q2)` for a state-action pair — the
    /// signal the Twin-Q Optimizer thresholds on.
    pub fn q_values(&self, state: &[f64], action: &[f64]) -> (f64, f64) {
        let sa = Matrix::row_vector(state).hconcat(&Matrix::row_vector(action));
        (
            self.critic1.infer(&sa).get(0, 0),
            self.critic2.infer(&sa).get(0, 0),
        )
    }

    /// `min(Q1, Q2)` — the paper's sub-optimality indicator.
    pub fn min_q(&self, state: &[f64], action: &[f64]) -> f64 {
        let (q1, q2) = self.q_values(state, action);
        q1.min(q2)
    }

    /// One TD3 gradient step on a replay batch. Returns diagnostics and the
    /// per-sample TD errors (for priority updates).
    pub fn train_step(&mut self, batch: &Batch) -> (TrainStats, Vec<f64>) {
        let m = batch.len();
        assert!(m > 0, "empty batch");
        let states = Matrix::from_rows(
            &batch
                .transitions
                .iter()
                .map(|t| t.state.as_slice())
                .collect::<Vec<_>>(),
        );
        let actions = Matrix::from_rows(
            &batch
                .transitions
                .iter()
                .map(|t| t.action.as_slice())
                .collect::<Vec<_>>(),
        );
        let next_states = Matrix::from_rows(
            &batch
                .transitions
                .iter()
                .map(|t| t.next_state.as_slice())
                .collect::<Vec<_>>(),
        );

        // ---- targets: clipped double-Q with target policy smoothing ----
        // PANIC-SAFETY: AgentConfig keeps policy_noise finite and >= 0.
        let smooth = Normal::new(0.0, self.cfg.policy_noise).expect("valid noise");
        let mut next_actions = self.actor_target.infer(&next_states);
        {
            let clip = self.cfg.noise_clip;
            let rng = &mut self.rng;
            for v in next_actions.as_mut_slice() {
                let e = smooth.sample(rng).clamp(-clip, clip);
                *v = (*v + e).clamp(0.0, 1.0);
            }
        }
        let sa_next = next_states.hconcat(&next_actions);
        let q1_t = self.critic1_target.infer(&sa_next);
        let q2_t = self.critic2_target.infer(&sa_next);
        let y = Matrix::from_fn(m, 1, |r, _| {
            let t = &batch.transitions[r];
            let not_done = if t.done { 0.0 } else { 1.0 };
            let q_min = q1_t.get(r, 0).min(q2_t.get(r, 0));
            self.cfg.clip_reward(t.reward) + self.cfg.gamma * not_done * q_min
        });

        // ---- critic updates ----
        let critic_span = telemetry::span!("td3.critic_update");
        let sa = states.hconcat(&actions);
        let c1_cache = self.critic1.forward(&sa);
        let c2_cache = self.critic2.forward(&sa);
        let td_errors: Vec<f64> = (0..m)
            .map(|r| c1_cache.output.get(r, 0) - y.get(r, 0))
            .collect();
        let g1 = loss::weighted_mse_grad(&c1_cache.output, &y, &batch.weights);
        let g2 = loss::weighted_mse_grad(&c2_cache.output, &y, &batch.weights);
        let c1_loss = loss::mse(&c1_cache.output, &y);
        let c2_loss = loss::mse(&c2_cache.output, &y);
        let (_, mut c1_grads) = self.critic1.backward(&c1_cache, &g1);
        let (_, mut c2_grads) = self.critic2.backward(&c2_cache, &g2);
        c1_grads.clip_global_norm(10.0);
        c2_grads.clip_global_norm(10.0);
        self.critic1_opt.step(&mut self.critic1, &c1_grads);
        self.critic2_opt.step(&mut self.critic2, &c2_grads);
        drop(critic_span);

        self.train_steps += 1;
        let mut stats = TrainStats {
            critic1_loss: c1_loss,
            critic2_loss: c2_loss,
            actor_loss: None,
            mean_min_q: 0.0,
        };

        // ---- delayed policy + target updates ----
        if self.train_steps % self.cfg.policy_delay as u64 == 0 {
            let _span = telemetry::span!("td3.actor_update");
            let a_cache = self.actor.forward(&states);
            let sa_pi = states.hconcat(&a_cache.output);
            let q_cache = self.critic1.forward(&sa_pi);
            stats.actor_loss = Some(-q_cache.output.mean());
            // ∂(−mean Q)/∂Q = −1/m; propagate through critic1 to the action
            // inputs, then through the actor.
            let gq = Matrix::full(m, 1, -1.0 / m as f64);
            let (grad_sa, _) = self.critic1.backward(&q_cache, &gq);
            let (_, grad_a) = grad_sa.hsplit(self.cfg.state_dim);
            let (_, mut actor_grads) = self.actor.backward(&a_cache, &grad_a);
            actor_grads.clip_global_norm(10.0);
            self.actor_opt.step(&mut self.actor, &actor_grads);

            self.actor_target
                .soft_update_from(&self.actor, self.cfg.tau);
            self.critic1_target
                .soft_update_from(&self.critic1, self.cfg.tau);
            self.critic2_target
                .soft_update_from(&self.critic2, self.cfg.tau);
        }

        // Mean min-Q under the current policy (diagnostic, Fig. 3).
        let a_now = self.actor.infer(&states);
        let sa_now = states.hconcat(&a_now);
        let q1n = self.critic1.infer(&sa_now);
        let q2n = self.critic2.infer(&sa_now);
        stats.mean_min_q = (0..m)
            .map(|r| q1n.get(r, 0).min(q2n.get(r, 0)))
            .sum::<f64>()
            / m as f64;

        (stats, td_errors)
    }

    /// Immutable access to the actor network (tests/diagnostics).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// Snapshot all learnable state into a serializable checkpoint.
    pub fn checkpoint(&self) -> Td3Checkpoint {
        Td3Checkpoint {
            cfg: self.cfg.clone(),
            actor: self.actor.clone(),
            actor_target: self.actor_target.clone(),
            critic1: self.critic1.clone(),
            critic2: self.critic2.clone(),
            critic1_target: self.critic1_target.clone(),
            critic2_target: self.critic2_target.clone(),
            actor_opt: self.actor_opt.clone(),
            critic1_opt: self.critic1_opt.clone(),
            critic2_opt: self.critic2_opt.clone(),
            train_steps: self.train_steps,
        }
    }

    /// Restore an agent from a checkpoint. `seed` re-seeds only the
    /// exploration RNG (network and optimizer state are exact).
    pub fn from_checkpoint(cp: Td3Checkpoint, seed: u64) -> Self {
        let explore = GaussianNoise::new(cp.cfg.action_dim, cp.cfg.exploration_noise);
        Self {
            explore,
            rng: StdRng::seed_from_u64(seed),
            actor: cp.actor,
            actor_target: cp.actor_target,
            critic1: cp.critic1,
            critic2: cp.critic2,
            critic1_target: cp.critic1_target,
            critic2_target: cp.critic2_target,
            actor_opt: cp.actor_opt,
            critic1_opt: cp.critic1_opt,
            critic2_opt: cp.critic2_opt,
            train_steps: cp.train_steps,
            cfg: cp.cfg,
        }
    }

    /// True if any network parameter became non-finite.
    pub fn diverged(&self) -> bool {
        self.actor.has_non_finite()
            || self.critic1.has_non_finite()
            || self.critic2.has_non_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl::Transition;

    fn toy_cfg() -> AgentConfig {
        let mut c = AgentConfig::for_dims(2, 3);
        c.hidden = vec![16, 16];
        c.batch_size = 16;
        c
    }

    /// A deterministic bandit: reward = 1 − ‖a − a*‖² with a* = (0.8, 0.2, 0.5).
    fn bandit_batch(agent: &mut Td3Agent, n: usize) -> Batch {
        let target = [0.8, 0.2, 0.5];
        let mut transitions = Vec::with_capacity(n);
        for i in 0..n {
            let s = vec![0.1, 0.2];
            let a = agent.select_action_noisy(&s);
            let d2: f64 = a.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum();
            let r = 1.0 - d2;
            transitions.push(Transition::new(s.clone(), a, r, s, true));
            let _ = i;
        }
        let n = transitions.len();
        Batch {
            transitions,
            weights: vec![1.0; n],
            indices: vec![0; n],
        }
    }

    #[test]
    fn actions_are_in_unit_box() {
        let mut agent = Td3Agent::new(toy_cfg(), 0);
        let s = vec![0.3, -0.1];
        for _ in 0..20 {
            let a = agent.select_action_noisy(&s);
            assert_eq!(a.len(), 3);
            assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn learns_a_deterministic_bandit() {
        let mut agent = Td3Agent::new(toy_cfg(), 1);
        let target = [0.8, 0.2, 0.5];
        for _ in 0..1000 {
            let batch = bandit_batch(&mut agent, 16);
            agent.train_step(&batch);
        }
        assert!(!agent.diverged());
        let a = agent.select_action(&[0.1, 0.2]);
        let d2: f64 = a.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum();
        assert!(
            d2 < 0.05,
            "policy should approach the bandit optimum, d² = {d2}, a = {a:?}"
        );
    }

    #[test]
    fn q_values_track_bandit_reward_scale() {
        let mut agent = Td3Agent::new(toy_cfg(), 2);
        for _ in 0..1000 {
            let batch = bandit_batch(&mut agent, 16);
            agent.train_step(&batch);
        }
        let s = [0.1, 0.2];
        let a = agent.select_action(&s);
        let q = agent.min_q(&s, &a);
        // Optimal bandit reward ≈ 1.0 and episodes are single-step (done),
        // so Q should approach ≈ 1.0 (within critic error).
        assert!(q > 0.4 && q < 1.6, "min-Q = {q}");
    }

    #[test]
    fn min_q_is_min_of_twins() {
        let agent = Td3Agent::new(toy_cfg(), 3);
        let s = [0.0, 0.0];
        let a = [0.5, 0.5, 0.5];
        let (q1, q2) = agent.q_values(&s, &a);
        assert_eq!(agent.min_q(&s, &a), q1.min(q2));
    }

    #[test]
    fn delayed_updates_happen_on_schedule() {
        let mut agent = Td3Agent::new(toy_cfg(), 4);
        let b = bandit_batch(&mut agent, 16);
        let (s1, _) = agent.train_step(&b); // step 1: no actor update
        let (s2, _) = agent.train_step(&b); // step 2: actor update (delay=2)
        assert!(s1.actor_loss.is_none());
        assert!(s2.actor_loss.is_some());
    }

    #[test]
    fn td_errors_have_batch_len() {
        let mut agent = Td3Agent::new(toy_cfg(), 5);
        let b = bandit_batch(&mut agent, 16);
        let (_, tds) = agent.train_step(&b);
        assert_eq!(tds.len(), 16);
        assert!(tds.iter().all(|v| v.is_finite()));
    }
}
