//! Safe-exploration guardrails: the state machine between an agent's
//! recommendation and the paid evaluation.
//!
//! PR 4's resilience layer protects the tuner from the environment
//! (transient faults, stragglers, lost probes). This module is the
//! mirror image — it protects the environment from the tuner, in three
//! screens applied to every online step:
//!
//! 1. **Feasibility** — the recommended action is checked against the
//!    declarative constraint model ([`spark_sim::constraints`]). A
//!    violating recommendation is vetoed (`guardrail.veto`) and replaced
//!    by its repair projection (`guardrail.repaired`), so no infeasible
//!    configuration ever reaches [`spark_sim::SparkEnv::evaluate`].
//! 2. **Canary** — the evaluation doubles as a canary: if the measured
//!    time exceeds `canary_factor x` the last-known-good time, the full
//!    run is aborted at the `canary_fraction` mark. Only the canary
//!    slice is charged to the budget (`canary.abort`, mirroring the
//!    Twin-Q cost-skip accounting) and the session keeps its
//!    last-known-good configuration; otherwise the canary *is* the full
//!    run (`canary.pass`) and its full time is charged.
//! 3. **Watchdog** — a windowed reward trend across steps. Sustained
//!    degradation (`watchdog.triggered`) snaps the next recommendation
//!    back to the best-seen action and tightens the exploration
//!    envelope — the permitted per-knob distance from the last-known-
//!    good action — which relaxes again after clean steps
//!    (`watchdog.recovered`).
//!
//! Everything is deterministic and virtual-clock driven; the whole
//! mutable state serializes into [`GuardrailSnapshot`] next to PR 4's
//! `OnlineCheckpoint`, so a killed guarded session resumes
//! bit-identically. With [`GuardrailPolicy::enabled`] false every hook
//! is an exact no-op and the unguarded arithmetic is unchanged.

use crate::online::StepGuardrail;
use serde::{Deserialize, Serialize};
use spark_sim::constraints;
use spark_sim::KnobSpace;

/// Tunables of the guardrail layer. [`Default`] is **disabled** — the
/// no-guardrail path must stay arithmetically identical to PR 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GuardrailPolicy {
    /// Master switch; when false every guardrail hook is a no-op.
    pub enabled: bool,
    /// Fraction of a run treated as the canary slice: an aborted run is
    /// charged `canary_fraction x` its projected full time.
    pub canary_fraction: f64,
    /// Abort the full run when the canary projects worse than
    /// `canary_factor x` the last-known-good execution time.
    pub canary_factor: f64,
    /// Steps in the watchdog's reward window.
    pub watchdog_window: usize,
    /// Reward slack below the best windowed mean before the watchdog
    /// calls the trend a regression.
    pub watchdog_tolerance: f64,
    /// Envelope multiplier applied on a watchdog trigger (tightening).
    pub envelope_shrink: f64,
    /// Envelope floor — exploration is never squeezed below this
    /// per-knob distance from the anchor.
    pub min_envelope: f64,
    /// Clean steps required before the envelope relaxes one notch.
    pub recovery_steps: u32,
}

impl Default for GuardrailPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            canary_fraction: 0.25,
            canary_factor: 1.5,
            watchdog_window: 3,
            watchdog_tolerance: 0.5,
            envelope_shrink: 0.5,
            min_envelope: 0.05,
            recovery_steps: 2,
        }
    }
}

impl GuardrailPolicy {
    /// The default policy with guardrails switched on.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Session-level guardrail counters, for `chaos.row` / report surfaces.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GuardrailTotals {
    /// Recommendations rejected for feasibility violations.
    pub vetoed: u64,
    /// Recommendations replaced by their repair projection.
    pub repaired: u64,
    /// Full runs aborted at the canary mark.
    pub canary_aborts: u64,
    /// Steps snapped back to the best-seen action by the watchdog.
    pub rollbacks: u64,
    /// Evaluation seconds saved by canary aborts (uncharged remainders).
    pub saved_s: f64,
}

/// The complete mutable state of a [`Guardrail`], checkpointed alongside
/// the online session so kill/resume reproduces guardrail behaviour
/// bit-identically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuardrailSnapshot {
    pub baseline_exec_s: f64,
    pub best_reward: f64,
    pub best_action: Option<Vec<f64>>,
    pub anchor_action: Option<Vec<f64>>,
    pub reward_window: Vec<f64>,
    pub best_window_mean: f64,
    pub envelope: f64,
    pub recovery_left: u32,
    pub rollback_pending: bool,
    pub totals: GuardrailTotals,
}

/// What [`Guardrail::screen`] decided about one recommendation.
#[derive(Clone, Debug)]
pub struct Screened {
    /// The action to actually evaluate.
    pub action: Vec<f64>,
    /// Per-step accounting so far (veto/repair/rollback flags).
    pub record: StepGuardrail,
}

/// Verdict on the canary slice of one evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum CanaryVerdict {
    /// The canary passed; the evaluation is the full run, fully charged.
    Pass,
    /// The canary failed; the run was aborted at the canary mark.
    Abort {
        /// Seconds actually charged (the canary slice).
        charged_s: f64,
        /// Seconds saved by not finishing the run.
        saved_s: f64,
    },
}

/// Runtime guardrail state for one online session.
#[derive(Clone, Debug)]
pub struct Guardrail {
    policy: GuardrailPolicy,
    baseline_exec_s: f64,
    best_reward: f64,
    best_action: Option<Vec<f64>>,
    anchor_action: Option<Vec<f64>>,
    reward_window: Vec<f64>,
    best_window_mean: f64,
    envelope: f64,
    recovery_left: u32,
    rollback_pending: bool,
    totals: GuardrailTotals,
}

impl Guardrail {
    /// A fresh guardrail. `default_exec_s` seeds the canary baseline —
    /// until a recommendation succeeds, "last-known-good" is the
    /// framework default configuration.
    pub fn new(policy: GuardrailPolicy, default_exec_s: f64) -> Self {
        Self {
            policy,
            baseline_exec_s: default_exec_s,
            best_reward: f64::NEG_INFINITY,
            best_action: None,
            anchor_action: None,
            reward_window: Vec::new(),
            best_window_mean: f64::NEG_INFINITY,
            envelope: 1.0,
            recovery_left: 0,
            rollback_pending: false,
            totals: GuardrailTotals::default(),
        }
    }

    pub fn policy(&self) -> &GuardrailPolicy {
        &self.policy
    }

    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    /// Session-level counters accumulated so far.
    pub fn totals(&self) -> &GuardrailTotals {
        &self.totals
    }

    /// Serialize the mutable state for a checkpoint.
    pub fn snapshot(&self) -> GuardrailSnapshot {
        GuardrailSnapshot {
            baseline_exec_s: self.baseline_exec_s,
            best_reward: self.best_reward,
            best_action: self.best_action.clone(),
            anchor_action: self.anchor_action.clone(),
            reward_window: self.reward_window.clone(),
            best_window_mean: self.best_window_mean,
            envelope: self.envelope,
            recovery_left: self.recovery_left,
            rollback_pending: self.rollback_pending,
            totals: self.totals.clone(),
        }
    }

    /// Restore the mutable state from a checkpoint.
    pub fn restore(&mut self, snap: GuardrailSnapshot) {
        self.baseline_exec_s = snap.baseline_exec_s;
        self.best_reward = snap.best_reward;
        self.best_action = snap.best_action;
        self.anchor_action = snap.anchor_action;
        self.reward_window = snap.reward_window;
        self.best_window_mean = snap.best_window_mean;
        self.envelope = snap.envelope;
        self.recovery_left = snap.recovery_left;
        self.rollback_pending = snap.rollback_pending;
        self.totals = snap.totals;
    }

    /// Screen one recommendation before evaluation: watchdog rollback
    /// substitution, envelope clamp, feasibility veto, repair — in that
    /// order (repair runs last so the envelope can never clamp an action
    /// back into infeasibility; safety outranks the envelope).
    pub fn screen(&mut self, space: &KnobSpace, action: &[f64]) -> Screened {
        let mut record = StepGuardrail::default();
        if !self.policy.enabled {
            return Screened {
                action: action.to_vec(),
                record,
            };
        }
        let mut action = action.to_vec();

        if self.rollback_pending {
            if let Some(best) = &self.best_action {
                action = best.clone();
                record.rolled_back = true;
                self.totals.rollbacks += 1;
                telemetry::event!("guardrail.rollback", best_reward = self.best_reward);
            }
            self.rollback_pending = false;
        }

        if self.envelope < 1.0 && !record.rolled_back {
            if let Some(anchor) = &self.anchor_action {
                for (a, c) in action.iter_mut().zip(anchor) {
                    let v = if a.is_finite() { *a } else { *c };
                    *a = v.clamp((c - self.envelope).max(0.0), (c + self.envelope).min(1.0));
                }
            }
        }

        let violations = constraints::validate_action(space, &action);
        if !violations.is_empty() {
            record.vetoed = true;
            self.totals.vetoed += 1;
            let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
            telemetry::event!("guardrail.veto", rules = rules.join(","));
        }
        let repaired = constraints::repair(space, &action);
        if repaired.changed() {
            record.repaired = true;
            record.rules = repaired.applied.iter().map(|r| r.to_string()).collect();
            self.totals.repaired += 1;
            telemetry::event!(
                "guardrail.repaired",
                rules = repaired.applied.join(","),
                count = repaired.applied.len() as u64,
            );
        }
        Screened {
            action: repaired.action,
            record,
        }
    }

    /// Judge the evaluation as a canary against the last-known-good
    /// baseline. On [`CanaryVerdict::Abort`] the caller charges only
    /// `charged_s` and keeps its session state on the last-known-good
    /// configuration; on pass (and success) the evaluated action becomes
    /// the new last-known-good anchor.
    pub fn judge_canary(
        &mut self,
        exec_time_s: f64,
        failed: bool,
        evaluated_action: &[f64],
    ) -> CanaryVerdict {
        if !self.policy.enabled {
            return CanaryVerdict::Pass;
        }
        let threshold = self.policy.canary_factor * self.baseline_exec_s;
        if exec_time_s > threshold && self.baseline_exec_s.is_finite() {
            let charged_s = self.policy.canary_fraction * exec_time_s;
            let saved_s = exec_time_s - charged_s;
            self.totals.canary_aborts += 1;
            self.totals.saved_s += saved_s;
            telemetry::event!(
                "canary.abort",
                projected_s = exec_time_s,
                charged_s = charged_s,
                saved_s = saved_s,
                threshold_s = threshold,
            );
            return CanaryVerdict::Abort { charged_s, saved_s };
        }
        telemetry::event!(
            "canary.pass",
            exec_time_s = exec_time_s,
            threshold_s = threshold
        );
        if !failed {
            self.baseline_exec_s = exec_time_s;
            self.anchor_action = Some(evaluated_action.to_vec());
        }
        CanaryVerdict::Pass
    }

    /// Feed one completed step into the regression watchdog. Call after
    /// the canary verdict, with the reward that went into the replay
    /// buffer and the step's final flags.
    pub fn observe_step(
        &mut self,
        reward: f64,
        failed: bool,
        canary_aborted: bool,
        evaluated_action: &[f64],
    ) {
        if !self.policy.enabled {
            return;
        }
        let healthy = !failed && !canary_aborted;
        if healthy && reward > self.best_reward {
            self.best_reward = reward;
            self.best_action = Some(evaluated_action.to_vec());
        }

        self.reward_window.push(reward);
        let w = self.policy.watchdog_window.max(1);
        if self.reward_window.len() > w {
            self.reward_window.remove(0);
        }
        let mut triggered = false;
        if self.reward_window.len() == w {
            let mean: f64 = self.reward_window.iter().sum::<f64>() / w as f64;
            if mean < self.best_window_mean - self.policy.watchdog_tolerance {
                triggered = true;
                self.envelope =
                    (self.envelope * self.policy.envelope_shrink).max(self.policy.min_envelope);
                self.recovery_left = self.policy.recovery_steps;
                self.rollback_pending = self.best_action.is_some();
                self.reward_window.clear();
                telemetry::event!(
                    "watchdog.triggered",
                    window_mean = mean,
                    best_mean = self.best_window_mean,
                    envelope = self.envelope,
                );
            } else if mean > self.best_window_mean {
                self.best_window_mean = mean;
            }
        }

        // Envelope recovery: after enough clean steps whose reward is
        // back within tolerance of the best trend, relax one notch.
        let recovered_step =
            healthy && reward + self.policy.watchdog_tolerance >= self.best_window_mean;
        if !triggered && self.envelope < 1.0 && recovered_step {
            self.recovery_left = self.recovery_left.saturating_sub(1);
            if self.recovery_left == 0 {
                self.envelope = (self.envelope / self.policy.envelope_shrink).min(1.0);
                telemetry::event!("watchdog.recovered", envelope = self.envelope);
                if self.envelope < 1.0 {
                    self.recovery_left = self.policy.recovery_steps;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::knobs::idx;

    fn space() -> KnobSpace {
        KnobSpace::pipeline()
    }

    fn bad_action() -> Vec<f64> {
        let mut a = vec![0.5; 32];
        a[idx::EXECUTOR_MEMORY_MB] = 1.0;
        a[idx::NM_MEMORY_MB] = 0.0;
        a[idx::SCHED_MAX_ALLOC_MB] = 1.0;
        a
    }

    #[test]
    fn disabled_guardrail_is_a_no_op() {
        let mut g = Guardrail::new(GuardrailPolicy::default(), 100.0);
        let a = bad_action();
        let s = g.screen(&space(), &a);
        assert_eq!(s.action, a, "disabled screen must not touch the action");
        assert_eq!(s.record, StepGuardrail::default());
        assert_eq!(g.judge_canary(1e9, false, &a), CanaryVerdict::Pass);
        g.observe_step(-30.0, true, false, &a);
        assert_eq!(*g.totals(), GuardrailTotals::default());
    }

    #[test]
    fn infeasible_recommendation_is_vetoed_and_repaired() {
        let mut g = Guardrail::new(GuardrailPolicy::on(), 100.0);
        let s = g.screen(&space(), &bad_action());
        assert!(s.record.vetoed);
        assert!(s.record.repaired);
        assert!(!s.record.rules.is_empty());
        assert!(constraints::validate_action(&space(), &s.action).is_empty());
        assert_eq!(g.totals().vetoed, 1);
        assert_eq!(g.totals().repaired, 1);
    }

    #[test]
    fn feasible_recommendation_passes_untouched() {
        let mut g = Guardrail::new(GuardrailPolicy::on(), 100.0);
        let sp = space();
        let a = sp.normalize(&sp.default_config());
        let s = g.screen(&sp, &a);
        assert_eq!(s.action, a);
        assert!(!s.record.vetoed && !s.record.repaired);
    }

    #[test]
    fn canary_aborts_and_charges_the_slice_only() {
        let mut g = Guardrail::new(GuardrailPolicy::on(), 100.0);
        let a = vec![0.5; 32];
        // 100 s baseline, 1.5 factor → 400 s projection aborts.
        match g.judge_canary(400.0, false, &a) {
            CanaryVerdict::Abort { charged_s, saved_s } => {
                assert_eq!(charged_s, 100.0, "25% canary slice");
                assert_eq!(saved_s, 300.0);
            }
            CanaryVerdict::Pass => panic!("4x regression must abort"),
        }
        assert_eq!(g.totals().canary_aborts, 1);
        assert_eq!(g.totals().saved_s, 300.0);
        // A good run passes and becomes the new baseline.
        assert_eq!(g.judge_canary(80.0, false, &a), CanaryVerdict::Pass);
        match g.judge_canary(130.0, false, &a) {
            CanaryVerdict::Abort { .. } => {}
            CanaryVerdict::Pass => panic!("baseline moved to 80 s; 130 s > 1.5x"),
        }
    }

    #[test]
    fn watchdog_triggers_rolls_back_and_recovers() {
        let mut p = GuardrailPolicy::on();
        p.watchdog_window = 2;
        p.recovery_steps = 1;
        let mut g = Guardrail::new(p, 100.0);
        let sp = space();
        let good = sp.normalize(&sp.default_config());
        // Two good steps establish the best window and best action.
        g.observe_step(2.0, false, false, &good);
        g.observe_step(2.0, false, false, &good);
        assert_eq!(g.envelope, 1.0);
        // Degradation: the window mean collapses below the best trend.
        g.observe_step(-10.0, false, false, &good);
        assert!(g.envelope < 1.0, "watchdog must tighten the envelope");
        assert!(g.rollback_pending);
        // The next screen substitutes the best-seen action.
        let s = g.screen(&sp, &vec![0.9; 32]);
        assert!(s.record.rolled_back);
        assert_eq!(s.action, good, "rollback evaluates the best action");
        assert_eq!(g.totals().rollbacks, 1);
        // A clean recovered step relaxes the envelope back toward 1.0.
        let tightened = g.envelope;
        g.observe_step(2.0, false, false, &good);
        assert!(g.envelope > tightened);
    }

    #[test]
    fn envelope_clamps_exploration_around_the_anchor() {
        let mut g = Guardrail::new(GuardrailPolicy::on(), 100.0);
        let sp = space();
        let anchor = sp.normalize(&sp.default_config());
        g.judge_canary(90.0, false, &anchor); // sets the anchor
        g.envelope = 0.1;
        let s = g.screen(&sp, &vec![1.0; 32]);
        for (v, c) in s.action.iter().zip(&anchor) {
            assert!(
                *v <= (c + 0.1).min(1.0) + 1e-12,
                "coordinate {v} escaped the envelope around {c}"
            );
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut g = Guardrail::new(GuardrailPolicy::on(), 100.0);
        let sp = space();
        g.screen(&sp, &bad_action());
        g.judge_canary(400.0, false, &vec![0.5; 32]);
        g.observe_step(-3.0, false, true, &vec![0.5; 32]);
        let snap = g.snapshot();
        let mut h = Guardrail::new(GuardrailPolicy::on(), 777.0);
        h.restore(snap.clone());
        assert_eq!(h.snapshot(), snap);
    }
}
