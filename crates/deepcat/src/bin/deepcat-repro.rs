//! `deepcat-repro` — regenerate any of the paper's tables/figures from the
//! command line (the bench targets wrap the same drivers; this binary is
//! for interactive use).
//!
//! ```text
//! deepcat-repro table1
//! deepcat-repro fig6 --iters 1500 --seed 2022
//! deepcat-repro all --quick
//! deepcat-repro fig5 --log fig5.jsonl   # JSONL event log of the run
//! ```
//!
//! Results are emitted as telemetry events and rendered by the console
//! sink as `[family] key=value` lines — parseable, one result per line.

use deepcat::experiments::{self, ExperimentConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use telemetry::{ConsoleSink, JsonlSink, MultiSink, Sink};

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-repro <table1|table2|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|all> \
         [--quick] [--iters N] [--seed N] [--log PATH] [--deterministic]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(which) = argv.next() else {
        return usage();
    };
    let mut cfg = ExperimentConfig::default();
    let mut log: Option<PathBuf> = None;
    let mut deterministic = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--deterministic" => deterministic = true,
            "--iters" => {
                let Some(v) = argv.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.offline_iterations = v;
            }
            "--seed" => {
                let Some(v) = argv.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.seed = v;
            }
            "--log" => {
                let Some(v) = argv.next() else { return usage() };
                log = Some(PathBuf::from(v));
            }
            _ => return usage(),
        }
    }
    // --deterministic freezes telemetry stopwatches (duration fields read
    // 0.0) and drops `ts_ms` from the JSONL log so two same-seed runs
    // produce byte-identical output — the CI reproducibility smoke check.
    if deterministic {
        telemetry::freeze_clock();
    }
    // Results print via the console sink; the optional JSONL log captures
    // the full event stream (including `sim.*` and `online.*`).
    let console =
        ConsoleSink::all().with_prefixes(vec!["repro.", "table", "fig", "online.", "budget."]);
    let sink: Arc<dyn Sink> = match &log {
        Some(path) => match JsonlSink::create(path) {
            Ok(jsonl) => {
                let jsonl = if deterministic {
                    jsonl.without_timestamps()
                } else {
                    jsonl
                };
                Arc::new(MultiSink::new(vec![Box::new(console), Box::new(jsonl)]))
            }
            Err(e) => {
                eprintln!("error: cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(console),
    };
    telemetry::install(sink);

    let all = which == "all";
    let want = |name: &str| all || which == name;
    let mut matched = false;

    if want("table1") {
        matched = true;
        telemetry::event!("repro.section", name = "table1: workload characteristics");
        for r in experiments::table1() {
            telemetry::event!(
                "table1.row",
                workload = r.workload.to_string(),
                category = r.category.to_string(),
                inputs = format!("{:?}", r.inputs),
            );
        }
    }
    if want("table2") {
        matched = true;
        telemetry::event!("repro.section", name = "table2: tuned parameters");
        for r in experiments::table2() {
            telemetry::event!(
                "table2.row",
                component = r.component.to_string(),
                parameters = r.parameters.clone(),
            );
        }
    }
    if want("fig2") {
        matched = true;
        let r = experiments::fig2(&cfg);
        telemetry::event!(
            "repro.section",
            name = "fig2: CDF of 200 random configs (TS-D1)"
        );
        telemetry::event!(
            "fig2.summary",
            default_s = r.default_exec_s,
            best_s = r.best_exec_s,
            better_than_default_pct = 100.0 * r.frac_better_than_default,
            within_10pct_of_best_pct = 100.0 * r.frac_within_10pct_of_best,
        );
    }
    if want("fig3") {
        matched = true;
        telemetry::event!("repro.section", name = "fig3: min twin-Q vs reward");
        for r in experiments::fig3(&cfg).iter().step_by(8) {
            telemetry::event!(
                "fig3.row",
                iter = r.iteration,
                reward = r.reward_smoothed,
                min_q = r.min_q_smoothed,
            );
        }
    }
    if want("fig4") {
        matched = true;
        telemetry::event!("repro.section", name = "fig4: TD3 vs TD3+RDPER");
        let ck: Vec<usize> = (1..=6).map(|i| i * cfg.offline_iterations / 3).collect();
        for r in experiments::fig4(&cfg, &ck) {
            telemetry::event!(
                "fig4.row",
                iters = r.iterations,
                td3_best_s = r.td3_best_s,
                rdper_best_s = r.td3_rdper_best_s,
            );
        }
    }
    if want("fig5") {
        matched = true;
        let r = experiments::fig5(&cfg);
        telemetry::event!("repro.section", name = "fig5: Twin-Q ablation");
        telemetry::event!(
            "fig5.summary",
            with_total_s = r.with_total_s,
            with_best_s = r.with_best_s,
            without_total_s = r.without_total_s,
            without_best_s = r.without_best_s,
            saved_pct = 100.0 * (r.without_total_s - r.with_total_s) / r.without_total_s,
        );
    }
    if want("fig6") || want("fig7") || want("fig8") {
        matched = true;
        telemetry::event!("repro.section", name = "figs 6-8: 12-pair comparison");
        let rows = experiments::comparison(&cfg);
        for r in &rows {
            telemetry::event!(
                "fig6.row",
                workload = r.workload.clone(),
                tuner = r.tuner.clone(),
                best_s = r.best_s,
                speedup = r.speedup,
                cost_s = r.total_eval_s + r.total_rec_s,
                rec_s = r.total_rec_s,
            );
        }
        for (t, s) in experiments::mean_speedups(&rows) {
            telemetry::event!("fig6.mean", tuner = t, speedup = s);
        }
    }
    if want("fig9") {
        matched = true;
        telemetry::event!("repro.section", name = "fig9: workload adaptability");
        for r in experiments::fig9(&cfg) {
            telemetry::event!(
                "fig9.row",
                model = r.model.clone(),
                best_s = r.best_s,
                cost_s = r.total_cost_s,
            );
        }
    }
    if want("fig10") {
        matched = true;
        telemetry::event!("repro.section", name = "fig10: hardware adaptability");
        for r in experiments::fig10(&cfg) {
            telemetry::event!(
                "fig10.row",
                workload = r.workload.clone(),
                tuner = r.tuner.clone(),
                speedup = r.speedup_over_default_b,
                cost_s = r.total_cost_s,
            );
        }
    }
    if want("fig11") {
        matched = true;
        telemetry::event!("repro.section", name = "fig11: beta sweep");
        for r in experiments::fig11(&cfg) {
            telemetry::event!(
                "fig11.row",
                beta = r.beta,
                best_s = r.best_s,
                cost_s = r.total_cost_s,
            );
        }
    }
    if want("fig12") {
        matched = true;
        telemetry::event!("repro.section", name = "fig12: Q_th sweep");
        for r in experiments::fig12(&cfg) {
            telemetry::event!(
                "fig12.row",
                qth = r.q_th,
                best_s = r.best_s,
                cost_s = r.total_cost_s,
            );
        }
    }
    telemetry::shutdown();
    if matched {
        ExitCode::SUCCESS
    } else {
        usage()
    }
}
