//! `deepcat-repro` — regenerate any of the paper's tables/figures from the
//! command line (the bench targets wrap the same drivers; this binary is
//! for interactive use).
//!
//! ```text
//! deepcat-repro table1
//! deepcat-repro fig6 --iters 1500 --seed 2022
//! deepcat-repro all --quick
//! ```

use deepcat::experiments::{self, ExperimentConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-repro <table1|table2|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|all> \
         [--quick] [--iters N] [--seed N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(which) = argv.next() else { return usage() };
    let mut cfg = ExperimentConfig::default();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--iters" => {
                let Some(v) = argv.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.offline_iterations = v;
            }
            "--seed" => {
                let Some(v) = argv.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.seed = v;
            }
            _ => return usage(),
        }
    }
    let all = which == "all";
    let want = |name: &str| all || which == name;
    let mut matched = false;

    if want("table1") {
        matched = true;
        println!("== Table 1: workload characteristics ==");
        for r in experiments::table1() {
            println!("{:10} {:10} {:?}", r.workload, r.category, r.inputs);
        }
    }
    if want("table2") {
        matched = true;
        println!("== Table 2: tuned parameters ==");
        for r in experiments::table2() {
            println!("{:6} {}", r.component, r.parameters);
        }
    }
    if want("fig2") {
        matched = true;
        let r = experiments::fig2(&cfg);
        println!("== Fig 2: CDF of 200 random configs (TS-D1) ==");
        println!(
            "default {:.1}s, optimal {:.1}s, better-than-default {:.0}%, within-10%-of-best {:.1}%",
            r.default_exec_s,
            r.best_exec_s,
            100.0 * r.frac_better_than_default,
            100.0 * r.frac_within_10pct_of_best
        );
    }
    if want("fig3") {
        matched = true;
        println!("== Fig 3: min twin-Q vs reward ==");
        for r in experiments::fig3(&cfg).iter().step_by(8) {
            println!("iter {:5}  reward {:+.3}  minQ {:+.3}", r.iteration, r.reward_smoothed, r.min_q_smoothed);
        }
    }
    if want("fig4") {
        matched = true;
        println!("== Fig 4: TD3 vs TD3+RDPER ==");
        let ck: Vec<usize> = (1..=6).map(|i| i * cfg.offline_iterations / 3).collect();
        for r in experiments::fig4(&cfg, &ck) {
            println!("iters {:5}  td3 {:6.1}s  rdper {:6.1}s", r.iterations, r.td3_best_s, r.td3_rdper_best_s);
        }
    }
    if want("fig5") {
        matched = true;
        let r = experiments::fig5(&cfg);
        println!("== Fig 5: Twin-Q ablation ==");
        println!(
            "with {:.1}s (best {:.1}) vs without {:.1}s (best {:.1}) — {:.1}% saved",
            r.with_total_s,
            r.with_best_s,
            r.without_total_s,
            r.without_best_s,
            100.0 * (r.without_total_s - r.with_total_s) / r.without_total_s
        );
    }
    if want("fig6") || want("fig7") || want("fig8") {
        matched = true;
        println!("== Figs 6-8: 12-pair comparison ==");
        let rows = experiments::comparison(&cfg);
        for r in &rows {
            println!(
                "{:6} {:10} best {:7.1}s  speedup {:5.2}x  cost {:8.1}s (rec {:.3}s)",
                r.workload,
                r.tuner,
                r.best_s,
                r.speedup,
                r.total_eval_s + r.total_rec_s,
                r.total_rec_s
            );
        }
        for (t, s) in experiments::mean_speedups(&rows) {
            println!("mean {t}: {s:.2}x");
        }
    }
    if want("fig9") {
        matched = true;
        println!("== Fig 9: workload adaptability ==");
        for r in experiments::fig9(&cfg) {
            println!("{:12} best {:6.1}s  cost {:7.1}s", r.model, r.best_s, r.total_cost_s);
        }
    }
    if want("fig10") {
        matched = true;
        println!("== Fig 10: hardware adaptability ==");
        for r in experiments::fig10(&cfg) {
            println!(
                "{:6} {:10} speedup {:5.2}x  cost {:7.1}s",
                r.workload, r.tuner, r.speedup_over_default_b, r.total_cost_s
            );
        }
    }
    if want("fig11") {
        matched = true;
        println!("== Fig 11: beta sweep ==");
        for r in experiments::fig11(&cfg) {
            println!("beta {:.1}  best {:6.1}s  cost {:7.1}s", r.beta, r.best_s, r.total_cost_s);
        }
    }
    if want("fig12") {
        matched = true;
        println!("== Fig 12: Q_th sweep ==");
        for r in experiments::fig12(&cfg) {
            println!("qth {:.1}  best {:6.1}s  cost {:7.1}s", r.q_th, r.best_s, r.total_cost_s);
        }
    }
    if matched {
        ExitCode::SUCCESS
    } else {
        usage()
    }
}
