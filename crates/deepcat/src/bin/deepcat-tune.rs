//! `deepcat-tune` — command-line driver for the DeepCAT tuning pipeline on
//! the simulated cluster.
//!
//! ```text
//! deepcat-tune train  --workload TS --input D1 --iters 2000 --model m.json
//! deepcat-tune tune   --workload TS --input D1 --model m.json --steps 5
//! deepcat-tune run    --workload TS --input D1            # default config
//! deepcat-tune compare --workload TS --input D1           # 3 tuners
//! ```

use deepcat::experiments::{compare_on, ExperimentConfig};
use deepcat::{
    load_td3, online_tune_td3, save_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig,
    TuningEnv,
};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    workload: WorkloadKind,
    input: InputSize,
    iters: usize,
    steps: usize,
    seed: u64,
    model: Option<PathBuf>,
    background_load: f64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-tune <train|tune|run|compare> \
         [--workload WC|TS|PR|KM|SO|AG] [--input D1|D2|D3] \
         [--iters N] [--steps N] [--seed N] [--model PATH] [--bg FLOAT]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        workload: WorkloadKind::TeraSort,
        input: InputSize::D1,
        iters: 1500,
        steps: 5,
        seed: 2022,
        model: None,
        background_load: 0.15,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--workload" => {
                args.workload = match value()?.to_uppercase().as_str() {
                    "WC" => WorkloadKind::WordCount,
                    "TS" => WorkloadKind::TeraSort,
                    "PR" => WorkloadKind::PageRank,
                    "KM" => WorkloadKind::KMeans,
                    "SO" => WorkloadKind::Sort,
                    "AG" => WorkloadKind::Aggregation,
                    other => return Err(format!("unknown workload {other}")),
                }
            }
            "--input" => {
                args.input = match value()?.to_uppercase().as_str() {
                    "D1" => InputSize::D1,
                    "D2" => InputSize::D2,
                    "D3" => InputSize::D3,
                    other => return Err(format!("unknown input size {other}")),
                }
            }
            "--iters" => args.iters = value()?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--steps" => args.steps = value()?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--model" => args.model = Some(PathBuf::from(value()?)),
            "--bg" => {
                args.background_load = value()?.parse().map_err(|e| format!("--bg: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let workload = Workload::new(args.workload, args.input);
    match args.command.as_str() {
        "train" => {
            let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, args.seed);
            println!(
                "training on {workload} (default exec {:.1}s, {} iterations)...",
                env.default_exec_time(),
                args.iters
            );
            let cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
            let (agent, log, _) =
                train_td3(&mut env, cfg, &OfflineConfig::deepcat(args.iters, args.seed), &[]);
            let last = log.smoothed_rewards(20).last().map(|(_, r)| *r).unwrap_or(0.0);
            println!("final smoothed reward: {last:.3}");
            let path = args.model.unwrap_or_else(|| PathBuf::from("deepcat-model.json"));
            if let Err(e) = save_td3(&agent, &path) {
                eprintln!("error: cannot save model: {e}");
                return ExitCode::FAILURE;
            }
            println!("model saved to {}", path.display());
        }
        "tune" => {
            let Some(path) = args.model else {
                eprintln!("error: tune needs --model PATH");
                return usage();
            };
            let mut agent = match load_td3(&path, args.seed) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: cannot load model: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let live = Cluster::cluster_a().with_background_load(args.background_load);
            let mut env = TuningEnv::for_workload(live, workload, args.seed ^ 0xFACE);
            let oc = OnlineConfig { steps: args.steps, ..OnlineConfig::deepcat(args.seed) };
            let report = online_tune_td3(&mut agent, &mut env, &oc, "DeepCAT");
            for s in &report.steps {
                println!(
                    "step {}: exec {:.1}s  reward {:+.3}{}",
                    s.step + 1,
                    s.exec_time_s,
                    s.reward,
                    if s.failed { "  FAILED" } else { "" }
                );
            }
            println!(
                "best {:.1}s ({:.2}x over default {:.1}s); total cost {:.1}s",
                report.best_exec_time_s,
                report.speedup(),
                report.default_exec_time_s,
                report.total_cost_s()
            );
        }
        "run" => {
            let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, args.seed);
            println!("default configuration on {workload}: {:.1}s", env.default_exec_time());
            let dflt = env.spark().space().normalize(&env.spark().space().default_config());
            let out = env.step(&dflt);
            println!("one fresh run: {:.1}s (reward {:+.3})", out.exec_time_s, out.reward);
        }
        "compare" => {
            let cfg = ExperimentConfig {
                offline_iterations: args.iters,
                online_steps: args.steps,
                seed: args.seed,
                ..ExperimentConfig::default()
            };
            for row in compare_on(workload, &Cluster::cluster_a(), &cfg) {
                println!(
                    "{:10} best {:7.1}s  speedup {:5.2}x  cost {:8.1}s",
                    row.tuner,
                    row.best_s,
                    row.speedup,
                    row.total_eval_s + row.total_rec_s
                );
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
