//! `deepcat-tune` — command-line driver for the DeepCAT tuning pipeline on
//! the simulated cluster.
//!
//! ```text
//! deepcat-tune train  --workload TS --input D1 --iters 2000 --model m.json
//! deepcat-tune tune   --workload TS --input D1 --model m.json --steps 5
//! deepcat-tune run    --workload TS --input D1            # default config
//! deepcat-tune compare --workload TS --input D1           # 3 tuners
//! deepcat-tune tune   ... --log run.jsonl                 # JSONL event log
//! deepcat-tune report --log run.jsonl                     # summarize a log
//! deepcat-tune report --log run.jsonl --trace out.json    # + Chrome trace
//! deepcat-tune profile run.jsonl                          # self-time table
//! deepcat-tune top run.jsonl [--once]                     # live dashboard
//! deepcat-tune tune ... --metrics-addr 127.0.0.1:9185     # Prometheus scrape
//! deepcat-tune tune ... --alerts alerts.toml              # SLO alert engine
//! ```
//!
//! Progress output goes through the telemetry [`ConsoleSink`] — one
//! `[family] key=value` line per event, a stable format scripts can parse.
//! With `--log PATH` the same events are also appended to a JSONL file,
//! which `deepcat-tune report` reads back.

use deepcat::experiments::{compare_on, ExperimentConfig};
use deepcat::{
    load_td3, online_tune_resilient, online_tune_td3, save_td3, shared_storage, train_td3,
    AgentConfig, ChaosSessionConfig, CommitlogPolicy, FaultyStorage, GuardrailPolicy,
    OfflineConfig, OnlineConfig, RealStorage, ResiliencePolicy, ResilientEnv, RestartPolicy,
    ServiceConfig, ServiceFault, ServiceFaultPlan, SessionOutcome, SessionPhase, SessionSpec,
    StepRecord, StoragePlan, Td3Agent, TuningEnv, TuningReport, TuningService, SERVICE_PLAN_NAMES,
};
use spark_sim::{Cluster, FaultPlan, InputSize, Workload, WorkloadKind, PLAN_NAMES};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use telemetry::{ConsoleSink, JsonlSink, MultiSink, Sink};

struct Args {
    command: String,
    workload: WorkloadKind,
    input: InputSize,
    iters: usize,
    steps: usize,
    seed: u64,
    model: Option<PathBuf>,
    background_load: f64,
    log: Option<PathBuf>,
    trace: Option<PathBuf>,
    plan: String,
    deterministic: bool,
    checkpoint: Option<PathBuf>,
    resume: bool,
    kill_after: Option<usize>,
    guardrails: bool,
    by_session: bool,
    metrics_addr: Option<String>,
    metrics_out: Option<PathBuf>,
    alerts: Option<PathBuf>,
    strict_telemetry: bool,
    once: bool,
    refresh_s: f64,
    sessions: usize,
    kill_at: u64,
    out_dir: Option<PathBuf>,
    faults: String,
    workers: usize,
    extract: Option<usize>,
}

impl Args {
    fn guardrail_policy(&self) -> GuardrailPolicy {
        if self.guardrails {
            GuardrailPolicy::on()
        } else {
            GuardrailPolicy::default()
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepcat-tune <train|tune|run|compare|chaos|safety|serve|fleet|report|top|profile> \
         [--workload WC|TS|PR|KM|SO|AG] [--input D1|D2|D3] \
         [--iters N] [--steps N] [--seed N] [--model PATH] [--bg FLOAT] \
         [--log PATH] [--trace PATH] [--guardrails on|off]\n\
         chaos flags: [--plan none|mixed|flaky|stragglers|blackout] \
         [--deterministic] [--checkpoint PATH] [--kill-after N] [--resume]\n\
         safety runs the online stage with and without guardrails under \
         --plan and reports the ablation\n\
         serve multiplexes N supervised sessions through the TuningService: \
         [--sessions N] [--workers W] [--faults none|panic3|storm|disk] \
         [--out-dir DIR] (writes session-<i>-steps.jsonl per completed \
         session); [--extract I] instead replays session I solo and writes \
         extract-<I>-steps.jsonl for byte-compare against the service run\n\
         fleet runs N concurrent durable sessions through the service, each \
         crashed mid-append by an injected storage fault and resumed from \
         its commitlog: [--sessions N] [--kill-at OP] [--out-dir DIR] \
         (writes session-<i>-reference.jsonl / -recovered.jsonl step records)\n\
         observability: [--metrics-addr HOST:PORT] serves Prometheus \
         scrapes, [--metrics-out PATH] writes an exposition snapshot at \
         exit, [--alerts PATH] installs SLO rules from a TOML file\n\
         report flags: [--by-session] adds a per-session rollup table, \
         [--strict-telemetry] exits non-zero on telemetry loss\n\
         top follows a JSONL log as a live dashboard: \
         deepcat-tune top run.jsonl [--refresh SECONDS] [--once]\n\
         profile takes the JSONL log as a positional argument: \
         deepcat-tune profile run.jsonl"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        workload: WorkloadKind::TeraSort,
        input: InputSize::D1,
        iters: 1500,
        steps: 5,
        seed: 2022,
        model: None,
        background_load: 0.15,
        log: None,
        trace: None,
        plan: "mixed".to_string(),
        deterministic: false,
        checkpoint: None,
        resume: false,
        kill_after: None,
        guardrails: false,
        by_session: false,
        metrics_addr: None,
        metrics_out: None,
        alerts: None,
        strict_telemetry: false,
        once: false,
        refresh_s: 2.0,
        sessions: 8,
        kill_at: 3,
        out_dir: None,
        faults: "none".to_string(),
        workers: 4,
        extract: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--workload" => {
                args.workload = match value()?.to_uppercase().as_str() {
                    "WC" => WorkloadKind::WordCount,
                    "TS" => WorkloadKind::TeraSort,
                    "PR" => WorkloadKind::PageRank,
                    "KM" => WorkloadKind::KMeans,
                    "SO" => WorkloadKind::Sort,
                    "AG" => WorkloadKind::Aggregation,
                    other => return Err(format!("unknown workload {other}")),
                }
            }
            "--input" => {
                args.input = match value()?.to_uppercase().as_str() {
                    "D1" => InputSize::D1,
                    "D2" => InputSize::D2,
                    "D3" => InputSize::D3,
                    other => return Err(format!("unknown input size {other}")),
                }
            }
            "--iters" => args.iters = value()?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--steps" => args.steps = value()?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--model" => args.model = Some(PathBuf::from(value()?)),
            "--bg" => args.background_load = value()?.parse().map_err(|e| format!("--bg: {e}"))?,
            "--log" => args.log = Some(PathBuf::from(value()?)),
            "--trace" => args.trace = Some(PathBuf::from(value()?)),
            "--plan" => args.plan = value()?,
            "--deterministic" => args.deterministic = true,
            "--by-session" => args.by_session = true,
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value()?)),
            "--resume" => args.resume = true,
            "--kill-after" => {
                args.kill_after = Some(value()?.parse().map_err(|e| format!("--kill-after: {e}"))?)
            }
            "--guardrails" => {
                args.guardrails = match value()?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--guardrails takes on|off, got {other}")),
                }
            }
            "--metrics-addr" => args.metrics_addr = Some(value()?),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value()?)),
            "--alerts" => args.alerts = Some(PathBuf::from(value()?)),
            "--sessions" => {
                args.sessions = value()?.parse().map_err(|e| format!("--sessions: {e}"))?
            }
            "--kill-at" => {
                args.kill_at = value()?.parse().map_err(|e| format!("--kill-at: {e}"))?
            }
            "--out-dir" => args.out_dir = Some(PathBuf::from(value()?)),
            "--faults" => args.faults = value()?,
            "--workers" => {
                args.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--extract" => {
                args.extract = Some(value()?.parse().map_err(|e| format!("--extract: {e}"))?)
            }
            "--strict-telemetry" => args.strict_telemetry = true,
            "--once" => args.once = true,
            "--refresh" => {
                args.refresh_s = value()?.parse().map_err(|e| format!("--refresh: {e}"))?
            }
            other if !other.starts_with('-') && args.log.is_none() => {
                // Positional log path: `deepcat-tune profile run.jsonl`.
                args.log = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Console output for the interactive families only; the full event stream
/// (including per-simulation `sim.*` events) still reaches the JSONL log.
fn install_sinks(log: Option<&PathBuf>, deterministic: bool) -> Result<(), String> {
    // `twinq.decision` only: the new `twinq.loop`/`twinq.rescore` spans
    // fire dozens of times per step and belong in the JSONL log, not the
    // console.
    let console = ConsoleSink::all().with_prefixes(vec![
        "train.",
        "tune.",
        "run.",
        "compare.",
        "chaos.",
        "fleet.",
        "serve.",
        "service.",
        "supervisor.",
        "mailbox.",
        "online.",
        "twinq.decision",
        "budget.",
        "retry.",
        "recovery.",
        "guardrail.",
        "canary.",
        "watchdog.",
        "safety.",
        "session.",
        "telemetry.",
    ]);
    let sink: Arc<dyn Sink> = match log {
        Some(path) => {
            let jsonl = JsonlSink::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            let jsonl = if deterministic {
                jsonl.without_timestamps()
            } else {
                jsonl
            };
            Arc::new(MultiSink::new(vec![Box::new(console), Box::new(jsonl)]))
        }
        None => Arc::new(console),
    };
    // Deterministic runs keep the synchronous pipeline: every event reaches
    // the sink in emission order, so two same-seed runs stay byte-identical.
    // Everything else goes through the sharded pipeline — per-thread bounded
    // buffers, no global lock on the hot path, drained at step boundaries
    // and on shutdown.
    if deterministic {
        telemetry::install(sink);
    } else {
        telemetry::install_sharded(sink, telemetry::DEFAULT_SHARD_CAPACITY);
    }
    Ok(())
}

/// Parse every line of a JSONL event log into a JSON value.
fn parse_log(path: &PathBuf) -> Result<Vec<serde::Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("{}:{}: {e:?}", path.display(), lineno + 1))?;
        values.push(value);
    }
    Ok(values)
}

/// Reconstruct the spans recorded in a JSONL log, in emission order.
fn parse_spans(values: &[serde::Value]) -> Vec<telemetry::SpanRecord> {
    values
        .iter()
        .filter_map(telemetry::SpanRecord::from_json_value)
        .collect()
}

/// Self-time attribution table over the spans of a JSONL event log
/// (`deepcat-tune profile run.jsonl`).
fn profile(path: &PathBuf) -> Result<(), String> {
    let values = parse_log(path)?;
    let spans = parse_spans(&values);
    if spans.is_empty() {
        return Err(format!(
            "{}: no span events found (was the log produced with this \
             version's tracing enabled?)",
            path.display()
        ));
    }
    let mut profiler = telemetry::Profiler::new();
    profiler.add_all(spans);
    println!("== profile: {} ==", path.display());
    print!("{}", profiler.report().render());
    Ok(())
}

/// Summarize a JSONL event log: evaluations paid vs skipped, the reward
/// trajectory, and step-latency quantiles. With `trace`, also export the
/// log's spans as a Chrome Trace Event Format file. With `by_session`,
/// fold the stream through the same [`telemetry::SessionAggregator`] the
/// live pipeline uses and print the per-session rollup table.
fn report(
    path: &PathBuf,
    trace: Option<&PathBuf>,
    by_session: bool,
    strict: bool,
) -> Result<(), String> {
    let values = parse_log(path)?;
    let mut paid = 0usize;
    let mut failed = 0usize;
    let mut skipped = 0u64;
    let mut retries = 0usize;
    let mut fallbacks = 0usize;
    let mut timeouts = 0usize;
    let mut injected = 0usize;
    let mut rewards: Vec<(u64, f64)> = Vec::new();
    let mut latencies = telemetry::Sketch::new(telemetry::DEFAULT_SKETCH_ALPHA);
    let mut spent_s: f64 = 0.0;
    let mut sim_runs = 0usize;
    let mut vetoed = 0usize;
    let mut repaired = 0usize;
    let mut canary_aborts = 0usize;
    let mut rollbacks = 0usize;
    let mut watchdog_trips = 0usize;
    let mut infeasible_evals = 0usize;
    let mut canary_saved_s = 0.0f64;
    let mut telemetry_dropped = 0u64;
    let mut sink_errors = 0u64;
    let mut alerts_raised = 0usize;
    let mut alerts_resolved = 0usize;
    let mut active_alerts: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut sessions = telemetry::SessionAggregator::new();
    for value in &values {
        sessions.observe_value(value);
        let Some(event) = value.get("event").and_then(|v| v.as_str()) else {
            continue;
        };
        match event {
            "online.step" => {
                paid += 1;
                if value.get("failed").and_then(|v| v.as_bool()) == Some(true) {
                    failed += 1;
                }
                let step = value.get("step").and_then(|v| v.as_u64()).unwrap_or(0);
                if let Some(r) = value.get("reward").and_then(|v| v.as_f64()) {
                    rewards.push((step, r));
                }
                if let Some(d) = value.get("duration_s").and_then(|v| v.as_f64()) {
                    latencies.insert(d);
                }
            }
            "twinq.decision" => {
                skipped += value
                    .get("iterations")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
            }
            "budget.update" => {
                if let Some(s) = value.get("spent_s").and_then(|v| v.as_f64()) {
                    spent_s = spent_s.max(s);
                }
            }
            "retry.attempt" => retries += 1,
            "recovery.fallback" => fallbacks += 1,
            "recovery.timeout" => timeouts += 1,
            "fault.injected" => injected += 1,
            "sim.run" => sim_runs += 1,
            "guardrail.veto" => vetoed += 1,
            "guardrail.repaired" => repaired += 1,
            "guardrail.rollback" => rollbacks += 1,
            "guardrail.infeasible_eval" => infeasible_evals += 1,
            "watchdog.triggered" => watchdog_trips += 1,
            "canary.abort" => {
                canary_aborts += 1;
                if let Some(s) = value.get("saved_s").and_then(|v| v.as_f64()) {
                    canary_saved_s += s;
                }
            }
            "alert.raised" => {
                alerts_raised += 1;
                if let Some(rule) = value.get("rule").and_then(|v| v.as_str()) {
                    active_alerts.insert(rule.to_string());
                }
            }
            "alert.resolved" => {
                alerts_resolved += 1;
                if let Some(rule) = value.get("rule").and_then(|v| v.as_str()) {
                    active_alerts.remove(rule);
                }
            }
            // The flush summary carries cumulative counters; keep the max
            // so repeated flushes in one log don't double-count.
            "telemetry.flush" => {
                if let Some(d) = value.get("dropped").and_then(|v| v.as_u64()) {
                    telemetry_dropped = telemetry_dropped.max(d);
                }
                if let Some(e) = value.get("sink_errors").and_then(|v| v.as_u64()) {
                    sink_errors = sink_errors.max(e);
                }
            }
            _ => {}
        }
    }
    println!("== report: {} ==", path.display());
    println!(
        "evaluations: {paid} paid ({failed} failed — paid for, never 'best'), \
         {skipped} skipped (Twin-Q critic filtering); \
         {sim_runs} simulator runs total"
    );
    if retries + fallbacks + timeouts + injected > 0 {
        println!(
            "resilience: {injected} faults injected, {retries} retries, \
             {fallbacks} fallbacks, {timeouts} timeouts"
        );
    }
    if vetoed + repaired + canary_aborts + rollbacks + watchdog_trips + infeasible_evals > 0 {
        println!(
            "guardrails: {vetoed} vetoed, {repaired} repaired, \
             {canary_aborts} canary-aborted (saved {canary_saved_s:.1}s), \
             {watchdog_trips} watchdog trips, {rollbacks} rollbacks; \
             {infeasible_evals} infeasible configs reached the simulator"
        );
    }
    if !rewards.is_empty() {
        let trajectory: Vec<String> = rewards
            .iter()
            .map(|(s, r)| format!("{s}:{r:+.3}"))
            .collect();
        println!("reward trajectory: {}", trajectory.join(" "));
        let best = rewards
            .iter()
            .map(|(_, r)| *r)
            .fold(f64::NEG_INFINITY, f64::max);
        println!("best reward: {best:+.3}");
    }
    if latencies.count() > 0 {
        // Quantiles come from the same mergeable sketch the live pipeline
        // uses, so `report` and `top` agree to within the sketch's
        // relative-error bound instead of bucket-interpolation drift.
        let q = |p| latencies.quantile(p).unwrap_or(f64::NAN);
        println!(
            "step latency: p50 {:.4}s, p95 {:.4}s, p99 {:.4}s (n={}, sketch α={})",
            q(0.5),
            q(0.95),
            q(0.99),
            latencies.count(),
            telemetry::DEFAULT_SKETCH_ALPHA,
        );
    }
    if spent_s > 0.0 {
        println!("tuning cost: {spent_s:.1}s");
    }
    if alerts_raised + alerts_resolved > 0 {
        let active: Vec<&str> = active_alerts.iter().map(String::as_str).collect();
        println!(
            "alerts: {alerts_raised} raised, {alerts_resolved} resolved; active: {}",
            if active.is_empty() {
                "none".to_string()
            } else {
                active.join(", ")
            }
        );
    }
    let session_report = sessions.report();
    let unattributed = session_report.unattributed_events;
    if telemetry_dropped + sink_errors + unattributed > 0 {
        println!(
            "telemetry health: {telemetry_dropped} events dropped by full \
             shards, {sink_errors} sink errors, {unattributed} unattributed \
             events"
        );
    }
    if by_session {
        print!("{}", session_report.render());
    }
    if let Some(trace_path) = trace {
        let spans = parse_spans(&values);
        let json = telemetry::chrome_trace_json(&spans);
        std::fs::write(trace_path, json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        println!(
            "trace: {} spans -> {} (open in chrome://tracing or ui.perfetto.dev)",
            spans.len(),
            trace_path.display()
        );
    }
    if strict && telemetry_dropped + sink_errors > 0 {
        return Err(format!(
            "strict telemetry check failed: {telemetry_dropped} dropped \
             event(s), {sink_errors} sink error(s) in {}",
            path.display()
        ));
    }
    Ok(())
}

/// One folded frame of the `top` dashboard: the session table plus the
/// fleet-level counters that head it.
struct TopFrame {
    report: telemetry::SessionReport,
    events: usize,
    skipped_lines: usize,
    dropped: u64,
    sink_errors: u64,
    /// Per-session (first, last) `ts_ms` over `online.step` events, for
    /// the step-rate column. Absent under `--deterministic` logs.
    step_ts: BTreeMap<u64, (u64, u64)>,
    /// Per-session (previous, last) step reward, for the trend column.
    rewards: BTreeMap<u64, (Option<f64>, f64)>,
    /// Active alerts: rule -> (severity, value, threshold).
    active_alerts: BTreeMap<String, (String, f64, f64)>,
    alerts_raised: u64,
    alerts_resolved: u64,
}

/// Fold a JSONL event log into a [`TopFrame`]. Tolerant by design: a
/// live writer may leave a partial trailing line mid-append, so lines
/// that fail to parse are counted and skipped rather than fatal.
fn fold_top_frame(path: &PathBuf) -> Result<TopFrame, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut sessions = telemetry::SessionAggregator::new();
    let mut frame = TopFrame {
        report: telemetry::SessionReport::default(),
        events: 0,
        skipped_lines: 0,
        dropped: 0,
        sink_errors: 0,
        step_ts: BTreeMap::new(),
        rewards: BTreeMap::new(),
        active_alerts: BTreeMap::new(),
        alerts_raised: 0,
        alerts_resolved: 0,
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = serde_json::from_str::<serde::Value>(line) else {
            frame.skipped_lines += 1;
            continue;
        };
        frame.events += 1;
        sessions.observe_value(&value);
        let session_id = value.get("session_id").and_then(|v| v.as_u64());
        match value.get("event").and_then(|v| v.as_str()) {
            Some("online.step") => {
                if let (Some(sid), Some(ts)) =
                    (session_id, value.get("ts_ms").and_then(|v| v.as_u64()))
                {
                    let span = frame.step_ts.entry(sid).or_insert((ts, ts));
                    span.0 = span.0.min(ts);
                    span.1 = span.1.max(ts);
                }
                if let (Some(sid), Some(r)) =
                    (session_id, value.get("reward").and_then(|v| v.as_f64()))
                {
                    let slot = frame.rewards.entry(sid).or_insert((None, r));
                    *slot = (Some(slot.1), r);
                }
            }
            Some("telemetry.flush") => {
                if let Some(d) = value.get("dropped").and_then(|v| v.as_u64()) {
                    frame.dropped = frame.dropped.max(d);
                }
                if let Some(e) = value.get("sink_errors").and_then(|v| v.as_u64()) {
                    frame.sink_errors = frame.sink_errors.max(e);
                }
            }
            Some("alert.raised") => {
                frame.alerts_raised += 1;
                if let Some(rule) = value.get("rule").and_then(|v| v.as_str()) {
                    let severity = value
                        .get("severity")
                        .and_then(|v| v.as_str())
                        .unwrap_or("warn")
                        .to_string();
                    let val = value.get("value").and_then(|v| v.as_f64()).unwrap_or(0.0);
                    let thr = value
                        .get("threshold")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0);
                    frame
                        .active_alerts
                        .insert(rule.to_string(), (severity, val, thr));
                }
            }
            Some("alert.resolved") => {
                frame.alerts_resolved += 1;
                if let Some(rule) = value.get("rule").and_then(|v| v.as_str()) {
                    frame.active_alerts.remove(rule);
                }
            }
            _ => {}
        }
    }
    frame.report = sessions.report();
    Ok(frame)
}

/// Render a [`TopFrame`] as the dashboard text. Pure function of the
/// frame, so two folds of the same deterministic log render
/// byte-identically (`top --once`).
fn render_top(path: &PathBuf, frame: &TopFrame) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== deepcat top == {} | {} event(s), {} session(s)",
        path.display(),
        frame.events,
        frame.report.sessions.len()
    );
    let health = if frame.dropped + frame.sink_errors + frame.report.unattributed_events > 0 {
        "DEGRADED"
    } else {
        "ok"
    };
    let _ = writeln!(
        out,
        "telemetry: {} | dropped {} | sink errors {} | unattributed {} | skipped lines {}",
        health,
        frame.dropped,
        frame.sink_errors,
        frame.report.unattributed_events,
        frame.skipped_lines
    );
    let _ = writeln!(
        out,
        "{:<8} {:<16} {:>6} {:>7} {:>8} {:>9} {:>5} {:>9} {:>9} {:>9} {:>5} {:>5} {:>4} {:>5} {:>4} {:>8}",
        "session",
        "label",
        "steps",
        "rate/s",
        "last_rew",
        "best_rew",
        "trend",
        "p50_ms",
        "p95_ms",
        "cost_s",
        "guard",
        "roll",
        "rst",
        "quar",
        "rej",
        "drain_ms"
    );
    for s in &frame.report.sessions {
        let label = if s.label.is_empty() { "?" } else { &s.label };
        let rate = frame
            .step_ts
            .get(&s.session_id)
            .and_then(|(first, last)| {
                let span_s = last.saturating_sub(*first) as f64 / 1e3;
                (span_s > 0.0 && s.steps > 1).then(|| (s.steps - 1) as f64 / span_s)
            })
            .map_or("-".to_string(), |r| format!("{r:.2}"));
        let (last_rew, trend) = frame.rewards.get(&s.session_id).map_or_else(
            || ("-".to_string(), "-"),
            |(prev, last)| {
                let trend = match prev {
                    Some(p) if last > p => "+",
                    Some(p) if last < p => "-",
                    Some(_) => "=",
                    None => "-",
                };
                (format!("{last:.4}"), trend)
            },
        );
        let _ = writeln!(
            out,
            "{:<8} {:<16} {:>6} {:>7} {:>8} {:>9} {:>5} {:>9} {:>9} {:>9} {:>5} {:>5} {:>4} {:>5} {:>4} {:>8}",
            s.session_id,
            label,
            s.steps,
            rate,
            last_rew,
            s.best_reward.map_or("-".to_string(), |r| format!("{r:.4}")),
            trend,
            s.latency_quantile_s(0.5)
                .map_or("-".to_string(), |l| format!("{:.2}", l * 1e3)),
            s.latency_quantile_s(0.95)
                .map_or("-".to_string(), |l| format!("{:.2}", l * 1e3)),
            format!(
                "{:.1}",
                if s.budget_spent_s > 0.0 {
                    s.budget_spent_s
                } else {
                    s.eval_cost_s
                }
            ),
            s.guardrail_activity(),
            s.max_consecutive_rollbacks,
            s.restarts,
            if s.quarantined { "yes" } else { "-" },
            s.mailbox_rejections,
            s.drain_ms.map_or("-".to_string(), |d| format!("{d:.0}")),
        );
    }
    if frame.active_alerts.is_empty() {
        let _ = writeln!(
            out,
            "alerts: none active ({} raised, {} resolved)",
            frame.alerts_raised, frame.alerts_resolved
        );
    } else {
        let _ = writeln!(
            out,
            "alerts: {} active ({} raised, {} resolved)",
            frame.active_alerts.len(),
            frame.alerts_raised,
            frame.alerts_resolved
        );
        for (rule, (severity, value, threshold)) in &frame.active_alerts {
            let _ = writeln!(
                out,
                "  [{severity}] {rule}: value {value} vs threshold {threshold}"
            );
        }
    }
    out
}

/// `deepcat-tune top run.jsonl`: live fleet dashboard. Re-reads and
/// re-folds the log every `refresh_s` seconds through the same
/// [`telemetry::SessionAggregator`] the in-process pipeline uses; with
/// `--once`, folds exactly once and prints a plain (ANSI-free)
/// deterministic snapshot.
fn top(path: &PathBuf, once: bool, refresh_s: f64) -> Result<(), String> {
    if once {
        let frame = fold_top_frame(path)?;
        print!("{}", render_top(path, &frame));
        return Ok(());
    }
    let refresh = std::time::Duration::from_secs_f64(refresh_s.max(0.1));
    loop {
        let frame = fold_top_frame(path)?;
        // ANSI clear-screen + home, then the frame, then a footer.
        print!("\x1b[2J\x1b[H{}", render_top(path, &frame));
        println!("refreshing every {refresh_s:.1}s — ctrl-c to exit");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(refresh);
    }
}

/// Stable textual form of an action vector, so scripts (and the CI
/// kill/resume check) can compare best configurations across runs.
fn action_key(action: &[f64]) -> String {
    action
        .iter()
        .map(|v| format!("{v:.6}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn emit_chaos_best(report: &TuningReport) {
    telemetry::event!(
        "chaos.best",
        tuner = report.tuner.clone(),
        best_s = report.best_exec_time_s,
        action = action_key(&report.best_action),
    );
}

/// Load the offline-trained agent from `--model`, or train one in place.
fn offline_agent(args: &Args, workload: Workload) -> Result<Td3Agent, String> {
    match &args.model {
        Some(path) => load_td3(path, args.seed).map_err(|e| format!("cannot load model: {e}")),
        None => {
            let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, args.seed);
            let cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
            let (agent, _, _) = train_td3(
                &mut env,
                cfg,
                &OfflineConfig::deepcat(args.iters, args.seed),
                &[],
            );
            Ok(agent)
        }
    }
}

/// `deepcat-tune safety`: with/without-guardrails ablation. Runs the
/// online stage twice under the same fault plan — once unguarded, once
/// with the full guardrail stack — and reports, per variant, how many
/// infeasible configurations reached the simulator, the guardrail
/// activity counts, and the tuning cost the canary aborts saved.
fn safety(args: &Args, workload: Workload) -> Result<(), String> {
    let plan = FaultPlan::named(&args.plan, args.seed).ok_or_else(|| {
        format!(
            "unknown fault plan '{}' (known: {})",
            args.plan,
            PLAN_NAMES.join(", ")
        )
    })?;
    telemetry::event!(
        "safety.start",
        plan = args.plan.clone(),
        steps = args.steps,
        seed = args.seed,
    );
    let base_agent = offline_agent(args, workload)?;
    let online_cfg = OnlineConfig {
        steps: args.steps,
        ..OnlineConfig::deepcat(args.seed)
    };
    let mut rows: Vec<(bool, f64, u64)> = Vec::new();
    for (name, guarded) in [("unguarded", false), ("guarded", true)] {
        let mut agent = base_agent.clone();
        let live = Cluster::cluster_a().with_background_load(args.background_load);
        let mut env = ResilientEnv::new(
            TuningEnv::for_workload(live, workload, args.seed ^ 0xFACE),
            ResiliencePolicy::default(),
        );
        env.install_plan(plan.clone());
        let session = ChaosSessionConfig {
            guardrails: if guarded {
                GuardrailPolicy::on()
            } else {
                GuardrailPolicy::default()
            },
            ..ChaosSessionConfig::default()
        };
        let out = online_tune_resilient(&mut agent, &mut env, &online_cfg, &session, name)
            .map_err(|e| format!("safety session: {e}"))?;
        let report = match out {
            SessionOutcome::Completed(r) => r,
            SessionOutcome::Killed { .. } | SessionOutcome::Crashed { .. } => {
                return Err("safety session died without a fault harness".to_string())
            }
        };
        let infeasible = env.inner().spark().infeasible_eval_count();
        telemetry::event!(
            "safety.row",
            variant = name,
            infeasible_evals = infeasible,
            vetoed = report.total_vetoed(),
            repaired = report.total_repaired(),
            canary_aborts = report.total_canary_aborts(),
            rollbacks = report.total_rollbacks(),
            saved_s = report.guardrail_saved_s(),
            failed_steps = report.failed_steps(),
            best_s = report.best_exec_time_s,
            cost_s = report.total_cost_s(),
        );
        rows.push((guarded, report.total_cost_s(), infeasible));
    }
    let unguarded = rows.iter().find(|(g, _, _)| !g);
    let guarded = rows.iter().find(|(g, _, _)| *g);
    if let (Some((_, cost_off, inf_off)), Some((_, cost_on, inf_on))) = (unguarded, guarded) {
        telemetry::event!(
            "safety.summary",
            plan = args.plan.clone(),
            infeasible_without = *inf_off,
            infeasible_with = *inf_on,
            cost_without_s = *cost_off,
            cost_with_s = *cost_on,
            cost_delta_s = cost_on - cost_off,
        );
    }
    Ok(())
}

/// `deepcat-tune chaos`: run the online stage under a named deterministic
/// fault plan and report survival metrics. Without `--checkpoint`, runs
/// DeepCAT and the no-TwinQ ablation under the plan plus a fault-free
/// DeepCAT reference (for the extra-cost column). With `--checkpoint`
/// (+ `--kill-after N` / `--resume`), runs the primary variant only and
/// exercises the crash/recovery path.
fn chaos(args: &Args, workload: Workload) -> Result<(), String> {
    let plan = FaultPlan::named(&args.plan, args.seed).ok_or_else(|| {
        format!(
            "unknown fault plan '{}' (known: {})",
            args.plan,
            PLAN_NAMES.join(", ")
        )
    })?;
    telemetry::event!(
        "chaos.start",
        plan = args.plan.clone(),
        steps = args.steps,
        seed = args.seed,
    );

    let base_agent = offline_agent(args, workload)?;
    let live_env = || {
        let live = Cluster::cluster_a().with_background_load(args.background_load);
        TuningEnv::for_workload(live, workload, args.seed ^ 0xFACE)
    };
    let online_cfg = |use_twinq: bool| OnlineConfig {
        steps: args.steps,
        ..if use_twinq {
            OnlineConfig::deepcat(args.seed)
        } else {
            OnlineConfig::without_twinq(args.seed)
        }
    };

    // Crash/recovery mode: primary variant only.
    if args.checkpoint.is_some() && (args.kill_after.is_some() || args.resume) {
        let mut agent = base_agent;
        let mut env = ResilientEnv::new(live_env(), ResiliencePolicy::default());
        env.install_plan(plan);
        let session = ChaosSessionConfig {
            checkpoint: args.checkpoint.clone(),
            resume: args.resume,
            kill_after: args.kill_after,
            guardrails: args.guardrail_policy(),
            ..ChaosSessionConfig::default()
        };
        let out =
            online_tune_resilient(&mut agent, &mut env, &online_cfg(true), &session, "DeepCAT")
                .map_err(|e| format!("chaos session: {e}"))?;
        match out {
            SessionOutcome::Killed { completed_steps } => {
                telemetry::event!("chaos.killed", completed_steps = completed_steps);
            }
            SessionOutcome::Crashed { completed_steps } => {
                telemetry::event!("chaos.crashed", completed_steps = completed_steps);
            }
            SessionOutcome::Completed(report) => emit_chaos_best(&report),
        }
        return Ok(());
    }

    let variants: [(&str, bool, bool); 3] = [
        ("DeepCAT", true, true),
        ("TD3-noTwinQ", false, true),
        ("DeepCAT-faultfree", true, false),
    ];
    let mut reports: Vec<(bool, TuningReport)> = Vec::new();
    for (name, use_twinq, faulted) in variants {
        let mut agent = base_agent.clone();
        let mut env = ResilientEnv::new(live_env(), ResiliencePolicy::default());
        if faulted {
            env.install_plan(plan.clone());
        }
        let session = ChaosSessionConfig {
            guardrails: args.guardrail_policy(),
            ..ChaosSessionConfig::default()
        };
        let out =
            online_tune_resilient(&mut agent, &mut env, &online_cfg(use_twinq), &session, name)
                .map_err(|e| format!("chaos session: {e}"))?;
        match out {
            SessionOutcome::Completed(report) => reports.push((faulted, report)),
            SessionOutcome::Killed { .. } | SessionOutcome::Crashed { .. } => {
                return Err("session died without kill-after".to_string())
            }
        }
    }
    let reference_cost = reports
        .iter()
        .find(|(faulted, _)| !faulted)
        .map(|(_, r)| r.total_cost_s());
    for (faulted, report) in &reports {
        telemetry::event!(
            "chaos.row",
            tuner = report.tuner.clone(),
            plan = if *faulted { args.plan.as_str() } else { "none" },
            completed_steps = report.steps.len(),
            failed_steps = report.failed_steps(),
            retries = report.total_retries(),
            fallbacks = report.total_fallbacks(),
            best_s = report.best_exec_time_s,
            cost_s = report.total_cost_s(),
            vetoed = report.total_vetoed(),
            repaired = report.total_repaired(),
            canary_aborts = report.total_canary_aborts(),
            rollbacks = report.total_rollbacks(),
            guardrail_saved_s = report.guardrail_saved_s(),
        );
    }
    if let Some((_, primary)) = reports
        .iter()
        .find(|(faulted, r)| *faulted && r.tuner == "DeepCAT")
    {
        let extra_cost_s = reference_cost.map_or(0.0, |c| primary.total_cost_s() - c);
        telemetry::event!(
            "chaos.summary",
            plan = args.plan.clone(),
            completed_steps = primary.steps.len(),
            survived = primary.steps.len() == args.steps && primary.failed_steps() < args.steps,
            retries = primary.total_retries(),
            fallbacks = primary.total_fallbacks(),
            extra_cost_s = extra_cost_s,
            vetoed = primary.total_vetoed(),
            repaired = primary.total_repaired(),
            canary_aborts = primary.total_canary_aborts(),
            rollbacks = primary.total_rollbacks(),
            guardrail_saved_s = primary.guardrail_saved_s(),
        );
        emit_chaos_best(primary);
    }
    Ok(())
}

/// The per-step fields that must survive a crash bit for bit. Everything
/// here is pure tuning arithmetic — wall-clock fields
/// (`recommendation_s`, resilience overhead) are excluded so the check
/// also holds without `--deterministic`.
fn steps_diverge(a: &StepRecord, b: &StepRecord) -> bool {
    a.step != b.step
        || a.exec_time_s != b.exec_time_s
        || a.failed != b.failed
        || a.reward != b.reward
        || a.q_estimate != b.q_estimate
        || a.twinq_iterations != b.twinq_iterations
        || a.action != b.action
}

/// Serialize a report's step records as JSONL, one record per line —
/// under `--deterministic` the reference and recovered files of a fleet
/// session are byte-identical, which the CI smoke checks with `cmp`.
fn write_steps_jsonl(path: &std::path::Path, report: &TuningReport) -> Result<(), String> {
    let mut body = String::new();
    for step in &report.steps {
        let line = serde_json::to_string(step)
            .map_err(|e| format!("cannot serialize step record: {e:?}"))?;
        body.push_str(&line);
        body.push('\n');
    }
    std::fs::write(path, body.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Per-session seed, shared by `serve`, `fleet`, and `--extract` — the
/// solo replay must be built from byte-identical ingredients.
fn session_seed(base: u64, session_idx: usize) -> u64 {
    base ^ ((session_idx as u64 + 1).wrapping_mul(0x9E37_79B9))
}

/// `deepcat-tune fleet`: N concurrent durable sessions, each killed at an
/// arbitrary point (mid-append included, via the storage fault shim) and
/// recovered, asserting all N resume byte-identically with reference
/// runs that were never interrupted. Since PR 10 this is a thin alias
/// over the supervised [`TuningService`]: one service hosts N reference
/// actors plus N faulted actors, and the per-session supervisors (not a
/// hand-rolled resume loop) restart the victims through their commitlogs.
fn fleet(args: &Args, workload: Workload) -> Result<(), String> {
    let sessions = args.sessions.max(1);
    let out_dir = args.out_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("deepcat-fleet-{}", std::process::id()))
    });
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    telemetry::event!(
        "fleet.start",
        sessions = sessions,
        kill_at = args.kill_at,
        steps = args.steps,
        seed = args.seed,
        out_dir = out_dir.display().to_string(),
    );
    let base_agent = offline_agent(args, workload)?;
    let make_env = |seed: u64| {
        let live = Cluster::cluster_a().with_background_load(args.background_load);
        ResilientEnv::new(
            TuningEnv::for_workload(live, workload, seed ^ 0xFACE),
            ResiliencePolicy::default(),
        )
    };
    let make_cfg = |seed: u64| OnlineConfig {
        steps: args.steps,
        ..OnlineConfig::deepcat(seed)
    };

    let service = TuningService::new(ServiceConfig {
        workers: args.workers.max(1),
        max_sessions: sessions * 2,
        restart: RestartPolicy {
            max_restarts: 8,
            ..RestartPolicy::default()
        },
        ..ServiceConfig::default()
    });
    // References: same seeds, no durability, never interrupted.
    for i in 0..sessions {
        let seed = session_seed(args.seed, i);
        service
            .admit(SessionSpec {
                name: format!("fleet-ref-{i}"),
                agent: base_agent.clone(),
                env: make_env(seed),
                cfg: make_cfg(seed),
                session: ChaosSessionConfig::default(),
                tuner_name: "fleet-reference".to_string(),
            })
            .map_err(|e| format!("admit fleet reference {i}: {e}"))?;
    }
    // Victims: one fault-injecting storage device per session, shared
    // across every simulated process incarnation — its op counter keeps
    // counting, so the scheduled fault fires exactly once, mid-append or
    // mid-snapshot, and the supervisor's restart resumes the session from
    // whatever the commitlog durably holds.
    let mut fault_names = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let seed = session_seed(args.seed, i);
        let plan = StoragePlan::kill_at(
            args.kill_at.max(1) + (i % 3) as u64,
            seed.wrapping_add(i as u64),
        );
        fault_names.push(plan.name.clone());
        let storage = shared_storage(FaultyStorage::new(RealStorage::new(), plan));
        let log_dir = out_dir.join(format!("session-{i}")).join("commitlog");
        service
            .admit(SessionSpec {
                name: format!("fleet-{i}"),
                agent: base_agent.clone(),
                env: make_env(seed),
                cfg: make_cfg(seed),
                session: ChaosSessionConfig {
                    checkpoint: Some(log_dir),
                    storage: Some(storage),
                    // Aggressive snapshot/segment cadence so even short
                    // fleet sessions exercise segment rolls and compaction,
                    // not just tail appends.
                    commitlog: CommitlogPolicy {
                        snapshot_every: 2,
                        segment_max_records: 2,
                    },
                    ..ChaosSessionConfig::default()
                },
                tuner_name: "fleet".to_string(),
            })
            .map_err(|e| format!("admit fleet session {i}: {e}"))?;
    }
    service.run();
    let mut results = service.take_results();
    let faulted = results.split_off(sessions);
    let references = results;

    let mut matched = 0usize;
    let mut total_crashes = 0usize;
    let mut errors: Vec<String> = Vec::new();
    for i in 0..sessions {
        let fail = |msg: String| format!("fleet session {i}: {msg}");
        let fault = fault_names[i].as_str();
        let Some(SessionOutcome::Completed(reference)) = &references[i].outcome else {
            errors.push(fail(format!(
                "reference run did not complete (phase {})",
                references[i].phase
            )));
            continue;
        };
        let Some(SessionOutcome::Completed(recovered)) = &faulted[i].outcome else {
            errors.push(fail(format!(
                "recovered run did not complete (phase {})",
                faulted[i].phase
            )));
            continue;
        };
        let crashes = faulted[i].restarts as usize;
        if crashes == 0 {
            errors.push(fail(format!(
                "injected storage fault '{fault}' never fired"
            )));
            continue;
        }
        if recovered.steps.len() != reference.steps.len() {
            errors.push(fail(format!(
                "recovered session ran {} steps, reference ran {}",
                recovered.steps.len(),
                reference.steps.len()
            )));
            continue;
        }
        if let Some(step) = reference
            .steps
            .iter()
            .zip(recovered.steps.iter())
            .find(|(a, b)| steps_diverge(a, b))
        {
            errors.push(fail(format!(
                "step {} diverged after crash recovery (fault '{fault}')",
                step.0.step
            )));
            continue;
        }
        if recovered.best_action != reference.best_action
            || recovered.best_exec_time_s != reference.best_exec_time_s
        {
            errors.push(fail(format!(
                "best configuration diverged after crash recovery (fault '{fault}')"
            )));
            continue;
        }
        write_steps_jsonl(
            &out_dir.join(format!("session-{i}-reference.jsonl")),
            reference,
        )?;
        write_steps_jsonl(
            &out_dir.join(format!("session-{i}-recovered.jsonl")),
            recovered,
        )?;
        matched += 1;
        total_crashes += crashes;
        telemetry::event!(
            "fleet.session",
            session = i,
            crashes = crashes,
            attempts = crashes + 1,
            fault = fault,
            steps = recovered.steps.len(),
            best_s = recovered.best_exec_time_s,
            matched = true,
        );
    }
    telemetry::event!(
        "fleet.summary",
        sessions = sessions,
        recovered = matched,
        failed = errors.len(),
        crashes = total_crashes,
    );
    if let Some(first) = errors.first() {
        return Err(format!(
            "{} of {sessions} fleet session(s) failed: {first}",
            errors.len()
        ));
    }
    Ok(())
}

/// `deepcat-tune serve`: N supervised sessions multiplexed through the
/// [`TuningService`], optionally under a named [`ServiceFaultPlan`]
/// (`--faults`). Writes each completed session's step records to
/// `session-<i>-steps.jsonl`; under `--deterministic` two runs of the
/// same invocation are byte-identical, and sessions untouched by the
/// fault plan are byte-identical to a `--faults none` run. With
/// `--extract I` it instead replays session I solo (no service, no
/// faults, no commitlog) and writes `extract-<I>-steps.jsonl`, which must
/// byte-match the service run's file for the same session.
fn serve(args: &Args, workload: Workload) -> Result<(), String> {
    let sessions = args.sessions.max(1);
    let out_dir = args.out_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("deepcat-serve-{}", std::process::id()))
    });
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let base_agent = offline_agent(args, workload)?;
    let make_spec = |i: usize| -> Result<SessionSpec, String> {
        let seed = session_seed(args.seed, i);
        let live = Cluster::cluster_a().with_background_load(args.background_load);
        let mut env = ResilientEnv::new(
            TuningEnv::for_workload(live, workload, seed ^ 0xFACE),
            ResiliencePolicy::default(),
        );
        // Each session gets its own deterministic slice of the simulator
        // fault plan, so multiplexed sessions see distinct (but
        // reproducible) cluster weather.
        let plan = FaultPlan::for_session(&args.plan, args.seed, i).ok_or_else(|| {
            format!(
                "unknown fault plan '{}' (known: {})",
                args.plan,
                PLAN_NAMES.join(", ")
            )
        })?;
        env.install_plan(plan);
        Ok(SessionSpec {
            name: format!("serve-{i}"),
            agent: base_agent.clone(),
            env,
            cfg: OnlineConfig {
                steps: args.steps,
                ..OnlineConfig::deepcat(seed)
            },
            session: ChaosSessionConfig {
                guardrails: args.guardrail_policy(),
                ..ChaosSessionConfig::default()
            },
            tuner_name: "serve".to_string(),
        })
    };

    // --extract I: the solo reference replay of one session, bit-for-bit
    // the same ingredients minus the service (and minus durability, which
    // PR 9 proved does not change a single step record).
    if let Some(idx) = args.extract {
        if idx >= sessions {
            return Err(format!("--extract {idx} out of range (0..{sessions})"));
        }
        let spec = make_spec(idx)?;
        telemetry::event!("serve.extract", session = idx, seed = spec.cfg.seed);
        let mut agent = spec.agent.clone();
        let mut env = spec.env.clone();
        let report = match online_tune_resilient(
            &mut agent,
            &mut env,
            &spec.cfg,
            &spec.session,
            &spec.tuner_name,
        )
        .map_err(|e| format!("extract session {idx}: {e}"))?
        {
            SessionOutcome::Completed(r) => r,
            other => return Err(format!("extract session {idx} did not complete: {other:?}")),
        };
        return write_steps_jsonl(&out_dir.join(format!("extract-{idx}-steps.jsonl")), &report);
    }

    let faults = ServiceFaultPlan::named(&args.faults, args.seed, sessions, args.steps)
        .ok_or_else(|| {
            format!(
                "unknown service fault plan '{}' (known: {})",
                args.faults,
                SERVICE_PLAN_NAMES.join(", ")
            )
        })?;
    let storm = faults
        .events
        .iter()
        .any(|e| matches!(e.fault, ServiceFault::PanicLoop));
    let has_faults = !faults.events.is_empty();
    telemetry::event!(
        "serve.start",
        sessions = sessions,
        workers = args.workers.max(1),
        steps = args.steps,
        seed = args.seed,
        faults = args.faults.as_str(),
        out_dir = out_dir.display().to_string(),
    );
    let service = TuningService::with_faults(
        ServiceConfig {
            workers: args.workers.max(1),
            max_sessions: sessions,
            restart: RestartPolicy {
                max_restarts: 8,
                ..RestartPolicy::default()
            },
            ..ServiceConfig::default()
        },
        faults,
    );
    for i in 0..sessions {
        let mut spec = make_spec(i)?;
        spec.session.checkpoint = Some(out_dir.join(format!("session-{i}")).join("commitlog"));
        spec.session.commitlog = CommitlogPolicy {
            snapshot_every: 2,
            segment_max_records: 2,
        };
        service
            .admit(spec)
            .map_err(|e| format!("admit session {i}: {e}"))?;
    }
    service.run();

    let mut completed = 0usize;
    let mut quarantined = 0usize;
    let mut total_restarts = 0u64;
    for (i, r) in service.take_results().iter().enumerate() {
        total_restarts += r.restarts as u64;
        match (r.phase, &r.outcome) {
            (SessionPhase::Completed, Some(SessionOutcome::Completed(report))) => {
                completed += 1;
                write_steps_jsonl(&out_dir.join(format!("session-{i}-steps.jsonl")), report)?;
                telemetry::event!(
                    "serve.session",
                    session = i,
                    outcome = "completed",
                    restarts = r.restarts,
                    resumed = r.resumed,
                    steps = report.steps.len(),
                    best_s = report.best_exec_time_s,
                );
            }
            (SessionPhase::Quarantined, _) => {
                quarantined += 1;
                telemetry::event!(
                    "serve.session",
                    session = i,
                    outcome = "quarantined",
                    restarts = r.restarts,
                    completed_steps = r.completed_steps,
                );
            }
            (phase, _) => {
                return Err(format!("session {i} ended in unexpected phase '{phase}'"));
            }
        }
    }
    telemetry::event!(
        "serve.summary",
        sessions = sessions,
        completed = completed,
        quarantined = quarantined,
        restarts = total_restarts,
        faults = args.faults.as_str(),
    );
    if has_faults && total_restarts == 0 && quarantined == 0 {
        return Err(format!("service fault plan '{}' never fired", args.faults));
    }
    if quarantined > 0 && !storm {
        return Err(format!(
            "{quarantined} session(s) quarantined under plan '{}' (expected full recovery)",
            args.faults
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if args.command == "report" || args.command == "profile" || args.command == "top" {
        let Some(path) = args.log else {
            eprintln!("error: {} needs a JSONL log path", args.command);
            return usage();
        };
        let result = match args.command.as_str() {
            "profile" => profile(&path),
            "top" => top(&path, args.once, args.refresh_s),
            _ => report(
                &path,
                args.trace.as_ref(),
                args.by_session,
                args.strict_telemetry,
            ),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // --deterministic freezes telemetry stopwatches (duration fields read
    // 0.0) and drops `ts_ms` from the JSONL log so two same-seed runs
    // produce byte-identical output — the CI chaos smoke relies on it.
    if args.deterministic {
        telemetry::freeze_clock();
    }
    if let Err(e) = install_sinks(args.log.as_ref(), args.deterministic) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    // SLO alert rules evaluate at step boundaries (`telemetry::alerts_tick`
    // in the online loops) against the live metrics snapshot.
    if let Some(rules_path) = &args.alerts {
        let engine = std::fs::read_to_string(rules_path)
            .map_err(|e| format!("cannot read {}: {e}", rules_path.display()))
            .and_then(|text| telemetry::AlertEngine::from_toml_str(&text));
        match engine {
            Ok(engine) => telemetry::install_alerts(engine),
            Err(e) => {
                eprintln!("error: --alerts: {e}");
                telemetry::shutdown();
                return ExitCode::FAILURE;
            }
        }
    }
    // Prometheus exposition endpoint; lives for the duration of the run
    // and shuts down (joining its thread) when dropped at return.
    let metrics_server = match &args.metrics_addr {
        Some(addr) => match telemetry::MetricsServer::bind(addr) {
            Ok(server) => {
                eprintln!("metrics: serving on http://{}/metrics", server.local_addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("error: --metrics-addr: {e}");
                telemetry::shutdown();
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let workload = Workload::new(args.workload, args.input);
    match args.command.as_str() {
        "train" => {
            let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, args.seed);
            telemetry::event!(
                "train.start",
                workload = workload.to_string(),
                default_exec_s = env.default_exec_time(),
                iters = args.iters,
            );
            let cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
            let (agent, log, _) = train_td3(
                &mut env,
                cfg,
                &OfflineConfig::deepcat(args.iters, args.seed),
                &[],
            );
            let last = log
                .smoothed_rewards(20)
                .last()
                .map(|(_, r)| *r)
                .unwrap_or(0.0);
            let path = args
                .model
                .unwrap_or_else(|| PathBuf::from("deepcat-model.json"));
            if let Err(e) = save_td3(&agent, &path) {
                eprintln!("error: cannot save model: {e}");
                return ExitCode::FAILURE;
            }
            telemetry::event!(
                "train.done",
                final_reward = last,
                model = path.display().to_string(),
            );
        }
        "tune" => {
            let Some(path) = args.model else {
                eprintln!("error: tune needs --model PATH");
                return usage();
            };
            let mut agent = match load_td3(&path, args.seed) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: cannot load model: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let live = Cluster::cluster_a().with_background_load(args.background_load);
            let mut env = TuningEnv::for_workload(live, workload, args.seed ^ 0xFACE);
            let oc = OnlineConfig {
                steps: args.steps,
                ..OnlineConfig::deepcat(args.seed)
            };
            // Per-step progress comes from the `online.step` span events.
            // With guardrails the session runs through the resilient loop
            // (fault-free) so the screen/canary/watchdog stack is active.
            let report = if args.guardrails {
                let mut renv = ResilientEnv::new(env, ResiliencePolicy::default());
                let session = ChaosSessionConfig {
                    guardrails: GuardrailPolicy::on(),
                    ..ChaosSessionConfig::default()
                };
                match online_tune_resilient(&mut agent, &mut renv, &oc, &session, "DeepCAT") {
                    Ok(SessionOutcome::Completed(r)) => r,
                    Ok(SessionOutcome::Killed { .. })
                    | Ok(SessionOutcome::Crashed { .. })
                    | Err(_) => {
                        eprintln!("error: guarded tune session did not complete");
                        telemetry::shutdown();
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                online_tune_td3(&mut agent, &mut env, &oc, "DeepCAT")
            };
            telemetry::event!(
                "tune.summary",
                best_s = report.best_exec_time_s,
                speedup = report.speedup(),
                default_s = report.default_exec_time_s,
                total_cost_s = report.total_cost_s(),
            );
            if args.guardrails {
                telemetry::event!(
                    "tune.guardrails",
                    vetoed = report.total_vetoed(),
                    repaired = report.total_repaired(),
                    canary_aborts = report.total_canary_aborts(),
                    rollbacks = report.total_rollbacks(),
                    saved_s = report.guardrail_saved_s(),
                );
            }
        }
        "run" => {
            let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, args.seed);
            telemetry::event!(
                "run.default",
                workload = workload.to_string(),
                exec_s = env.default_exec_time(),
            );
            let dflt = env
                .spark()
                .space()
                .normalize(&env.spark().space().default_config());
            let out = env.step(&dflt);
            telemetry::event!("run.fresh", exec_s = out.exec_time_s, reward = out.reward);
        }
        "chaos" => {
            if let Err(e) = chaos(&args, workload) {
                eprintln!("error: {e}");
                telemetry::shutdown();
                return ExitCode::FAILURE;
            }
        }
        "safety" => {
            if let Err(e) = safety(&args, workload) {
                eprintln!("error: {e}");
                telemetry::shutdown();
                return ExitCode::FAILURE;
            }
        }
        "fleet" => {
            if let Err(e) = fleet(&args, workload) {
                eprintln!("error: {e}");
                telemetry::shutdown();
                return ExitCode::FAILURE;
            }
        }
        "serve" => {
            if let Err(e) = serve(&args, workload) {
                eprintln!("error: {e}");
                telemetry::shutdown();
                return ExitCode::FAILURE;
            }
        }
        "compare" => {
            let cfg = ExperimentConfig {
                offline_iterations: args.iters,
                online_steps: args.steps,
                seed: args.seed,
                ..ExperimentConfig::default()
            };
            for row in compare_on(workload, &Cluster::cluster_a(), &cfg) {
                telemetry::event!(
                    "compare.row",
                    tuner = row.tuner.clone(),
                    best_s = row.best_s,
                    speedup = row.speedup,
                    cost_s = row.total_eval_s + row.total_rec_s,
                );
            }
        }
        _ => {
            telemetry::shutdown();
            return usage();
        }
    }
    // Final exposition snapshot: drain shards first so the rendered text
    // reflects every event, then write before tearing the pipeline down.
    if let Some(out) = &args.metrics_out {
        telemetry::flush();
        if let Err(e) = telemetry::write_prometheus_snapshot(out) {
            eprintln!("error: --metrics-out: {e}");
            telemetry::shutdown();
            return ExitCode::FAILURE;
        }
    }
    if let Some(server) = metrics_server {
        server.shutdown();
    }
    telemetry::clear_alerts();
    telemetry::shutdown();
    ExitCode::SUCCESS
}
