//! Per-session supervision for the multi-tenant
//! [`crate::service::TuningService`]: bounded restarts with exponential
//! backoff on the service's virtual clock, and quarantine once the
//! restart budget is exhausted.
//!
//! The supervisor is deliberately dumb — it never touches the session's
//! engine or commitlog. It only answers one question after a contained
//! crash: *restart (after how long) or quarantine?* Recovery itself is
//! the commitlog's job ([`crate::commitlog::Commitlog`]); the service
//! re-creates the engine with `resume = true` and the durable state does
//! the rest.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Restart budget and backoff schedule for one supervised session.
///
/// Backoff is charged in *virtual* milliseconds against the service's
/// [`crate::scheduler::VirtualClock`], so a restart storm never makes a
/// deterministic run slower in wall time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RestartPolicy {
    /// Maximum restarts before the session is quarantined.
    pub max_restarts: u32,
    /// Backoff before the first restart (virtual seconds).
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on each further restart.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff wait (virtual seconds).
    pub backoff_cap_s: f64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff_base_s: 2.0,
            backoff_factor: 2.0,
            backoff_cap_s: 30.0,
        }
    }
}

impl RestartPolicy {
    /// Backoff wait before restart number `restart` (0-based), capped.
    pub fn backoff_s(&self, restart: u32) -> f64 {
        let wait = self.backoff_base_s * self.backoff_factor.powi(restart as i32);
        wait.min(self.backoff_cap_s)
    }
}

/// Lifecycle of a supervised session actor (DESIGN §16):
///
/// ```text
/// Admitted → Running → Completed
///               │
///               ├─ crash/deadline → Backoff → Restarting → Running
///               │                     (budget exhausted) → Quarantined
///               └─ drain → Drained
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPhase {
    /// Admitted, engine not yet constructed.
    Admitted,
    /// Engine live, stepping (or queued to step).
    Running,
    /// Crashed; parked until the supervisor's backoff elapses.
    Backoff,
    /// Backoff elapsed; the next dispatch re-creates the engine from the
    /// commitlog.
    Restarting,
    /// Ran every step to completion.
    Completed,
    /// Terminal crash with no restart attempted (admission-time storage
    /// death, or a `kill_after` session the service does not resurrect).
    Crashed,
    /// Restart budget exhausted; the session is isolated and will not be
    /// scheduled again.
    Quarantined,
    /// Checkpointed and stopped by a graceful drain.
    Drained,
}

impl SessionPhase {
    /// A terminal phase is never scheduled again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionPhase::Completed
                | SessionPhase::Crashed
                | SessionPhase::Quarantined
                | SessionPhase::Drained
        )
    }
}

impl fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionPhase::Admitted => "admitted",
            SessionPhase::Running => "running",
            SessionPhase::Backoff => "backoff",
            SessionPhase::Restarting => "restarting",
            SessionPhase::Completed => "completed",
            SessionPhase::Crashed => "crashed",
            SessionPhase::Quarantined => "quarantined",
            SessionPhase::Drained => "drained",
        };
        f.write_str(s)
    }
}

/// The supervisor's ruling on a contained crash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SupervisorVerdict {
    /// Restart attempt `attempt` (1-based) after `backoff_ms` of virtual
    /// time.
    Restart { attempt: u32, backoff_ms: u64 },
    /// Budget exhausted after `restarts` restarts: quarantine.
    Quarantine { restarts: u32 },
}

/// Restart accounting for one session.
#[derive(Clone, Debug)]
pub struct Supervisor {
    policy: RestartPolicy,
    restarts: u32,
}

impl Supervisor {
    pub fn new(policy: RestartPolicy) -> Self {
        Self {
            policy,
            restarts: 0,
        }
    }

    /// Restarts granted so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Rule on a contained crash: grant a restart (consuming budget) or
    /// quarantine.
    pub fn on_crash(&mut self) -> SupervisorVerdict {
        if self.restarts >= self.policy.max_restarts {
            return SupervisorVerdict::Quarantine {
                restarts: self.restarts,
            };
        }
        let backoff_ms = (self.policy.backoff_s(self.restarts) * 1000.0).round() as u64;
        self.restarts += 1;
        SupervisorVerdict::Restart {
            attempt: self.restarts,
            backoff_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RestartPolicy::default();
        assert!((policy.backoff_s(0) - 2.0).abs() < 1e-12);
        assert!((policy.backoff_s(1) - 4.0).abs() < 1e-12);
        assert!((policy.backoff_s(10) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_quarantines() {
        let mut sup = Supervisor::new(RestartPolicy {
            max_restarts: 2,
            ..RestartPolicy::default()
        });
        assert_eq!(
            sup.on_crash(),
            SupervisorVerdict::Restart {
                attempt: 1,
                backoff_ms: 2000
            }
        );
        assert_eq!(
            sup.on_crash(),
            SupervisorVerdict::Restart {
                attempt: 2,
                backoff_ms: 4000
            }
        );
        assert_eq!(
            sup.on_crash(),
            SupervisorVerdict::Quarantine { restarts: 2 }
        );
        // Quarantine is sticky.
        assert_eq!(
            sup.on_crash(),
            SupervisorVerdict::Quarantine { restarts: 2 }
        );
    }

    #[test]
    fn terminal_phases_are_exactly_the_unschedulable_ones() {
        for phase in [
            SessionPhase::Admitted,
            SessionPhase::Running,
            SessionPhase::Backoff,
            SessionPhase::Restarting,
        ] {
            assert!(!phase.is_terminal(), "{phase} should be schedulable");
        }
        for phase in [
            SessionPhase::Completed,
            SessionPhase::Crashed,
            SessionPhase::Quarantined,
            SessionPhase::Drained,
        ] {
            assert!(phase.is_terminal(), "{phase} should be terminal");
        }
    }
}
