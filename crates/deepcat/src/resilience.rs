//! Resilient online tuning: a fault-tolerant wrapper around
//! [`TuningEnv`] plus a checkpointed session loop, so the online stage
//! survives the transient failures, stragglers, and lost probes a real
//! cluster produces (injected deterministically by
//! [`spark_sim::FaultPlan`]).
//!
//! The wrapper enforces four policies, every one charged to the paper's
//! tuning-cost model in *virtual* seconds (no wall-clock sleeping, so
//! chaos runs stay deterministic):
//!
//! * **Bounded retries with exponential backoff** — only
//!   [`FailureKind::is_transient`] failures are retried; a
//!   configuration-caused failure (OOM, negotiation) is deterministic, so
//!   retrying it would burn money for the same answer. Each retry charges
//!   the wasted attempt plus the backoff wait to
//!   [`StepResilience::overhead_s`].
//! * **Per-evaluation timeout** — a run whose simulated duration exceeds
//!   `eval_timeout_factor x default_exec_time` is abandoned: the step is
//!   marked failed, only the elapsed-until-kill time is charged, and no
//!   retry is attempted (timeouts are terminal).
//! * **Fallback to last-known-good** — after `fallback_after`
//!   consecutive failed steps, the failed recommendation is abandoned
//!   (its cost moves to overhead) and the best previously successful
//!   action is re-evaluated so the session keeps producing usable
//!   measurements.
//! * **Sanitization** — lost node probes surface as NaN state entries;
//!   they are imputed from the last good observation before the state
//!   reaches the agent or the replay buffer. Rewards are clamped to a
//!   finite band, so no non-finite value can poison training.

use crate::commitlog::{Commitlog, CommitlogPolicy, StepDelta};
use crate::envwrap::{StepOutcome, TuningEnv};
use crate::guardrail::{CanaryVerdict, Guardrail, GuardrailPolicy};
use crate::online::{finish_report, OnlineConfig, StepRecord, StepResilience, TuningReport};
use crate::persist::OnlineCheckpoint;
use crate::storage::{shared_storage, RealStorage, SharedStorage};
use crate::td3::Td3Agent;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{GaussianNoise, ReplayMemory, Transition, UniformReplay};
use serde::{Deserialize, Serialize};
use spark_sim::FaultPlan;
use std::io;
use std::path::PathBuf;
use telemetry::SessionCtx;

/// Knobs of the resilience layer. Defaults are deliberately conservative:
/// they never trigger on a healthy run, so wrapping a fault-free
/// environment leaves every cost figure unchanged.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Maximum retries of a transient-failed evaluation (beyond the
    /// first attempt).
    pub max_retries: u32,
    /// Backoff before the first retry (virtual seconds).
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff wait (virtual seconds).
    pub backoff_cap_s: f64,
    /// An evaluation is abandoned once it exceeds this multiple of the
    /// default configuration's execution time.
    pub eval_timeout_factor: f64,
    /// Consecutive failed steps before falling back to the
    /// last-known-good configuration.
    pub fallback_after: u32,
    /// Rewards are clamped to `[-reward_clamp, reward_clamp]`;
    /// non-finite rewards become `-reward_clamp`.
    pub reward_clamp: f64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_s: 5.0,
            backoff_factor: 2.0,
            backoff_cap_s: 60.0,
            eval_timeout_factor: 8.0,
            fallback_after: 2,
            reward_clamp: 32.0,
        }
    }
}

impl ResiliencePolicy {
    /// Backoff wait before retry number `retry` (0-based), capped.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        let wait = self.backoff_base_s * self.backoff_factor.powi(retry as i32);
        wait.min(self.backoff_cap_s)
    }
}

/// Result of one resilient step: the sanitized outcome, the action that
/// was actually measured (differs from the requested one after a
/// fallback), and the retry/timeout accounting.
#[derive(Clone, Debug)]
pub struct ResilientOutcome {
    pub outcome: StepOutcome,
    pub evaluated_action: Vec<f64>,
    pub accounting: StepResilience,
}

/// The mutable part of a [`ResilientEnv`], serialized into checkpoints.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceSnapshot {
    pub last_good_action: Option<Vec<f64>>,
    pub last_state: Vec<f64>,
    pub consecutive_failures: u32,
}

/// Fault-tolerant wrapper around [`TuningEnv`]. Any tuner that steps
/// through this instead of the bare environment gets retries, timeouts,
/// fallback, and sanitization without code changes.
#[derive(Clone, Debug)]
pub struct ResilientEnv {
    inner: TuningEnv,
    policy: ResiliencePolicy,
    last_good_action: Option<Vec<f64>>,
    last_state: Vec<f64>,
    consecutive_failures: u32,
}

impl ResilientEnv {
    pub fn new(inner: TuningEnv, policy: ResiliencePolicy) -> Self {
        let last_state = inner.state().to_vec();
        Self {
            inner,
            policy,
            last_good_action: None,
            last_state,
            consecutive_failures: 0,
        }
    }

    /// Install a fault plan on the wrapped simulator.
    pub fn install_plan(&mut self, plan: FaultPlan) {
        self.inner.spark_mut().set_fault_plan(plan);
    }

    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    pub fn inner(&self) -> &TuningEnv {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut TuningEnv {
        &mut self.inner
    }

    pub fn state_dim(&self) -> usize {
        self.inner.state_dim()
    }

    pub fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }

    pub fn default_exec_time(&self) -> f64 {
        self.inner.default_exec_time()
    }

    pub fn eval_count(&self) -> u64 {
        self.inner.eval_count()
    }

    /// Start a new episode.
    pub fn reset(&mut self) -> Vec<f64> {
        let s = self.inner.reset();
        self.last_state = s.clone();
        s
    }

    /// Capture the wrapper's mutable state for a checkpoint.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            last_good_action: self.last_good_action.clone(),
            last_state: self.last_state.clone(),
            consecutive_failures: self.consecutive_failures,
        }
    }

    /// Restore environment + wrapper state from a checkpoint: observed
    /// state vector, episode position, the simulator's evaluation
    /// counter (which fault schedules key off), and the wrapper's own
    /// snapshot.
    pub fn restore(
        &mut self,
        state: Vec<f64>,
        step_in_episode: usize,
        eval_count: u64,
        snap: ResilienceSnapshot,
    ) {
        self.inner.spark_mut().restore_eval_count(eval_count);
        self.inner.restore_episode(state, step_in_episode);
        self.last_good_action = snap.last_good_action;
        self.last_state = snap.last_state;
        self.consecutive_failures = snap.consecutive_failures;
    }

    /// One attempt: evaluate and apply the timeout policy.
    fn attempt(&mut self, action: &[f64], timeout_s: f64, acc: &mut StepResilience) -> StepOutcome {
        let mut out = self.inner.step(action);
        if out.exec_time_s > timeout_s {
            // The operator kills the run at the deadline: only the
            // elapsed-until-kill time is charged, and the measurement is
            // useless. Timeouts are terminal — re-running a run that
            // just blew the deadline would double the damage.
            acc.timed_out = true;
            out.failed = true;
            out.exec_time_s = timeout_s;
            out.reward = self.inner.reward_fn().reward(timeout_s);
            telemetry::event!(
                "recovery.timeout",
                charged_s = timeout_s,
                eval = self.inner.eval_count()
            );
        }
        out
    }

    /// Evaluate `action` under the resilience policy. See the module
    /// docs for the exact retry / timeout / fallback semantics.
    pub fn step(&mut self, action: &[f64]) -> ResilientOutcome {
        let timeout_s = self.policy.eval_timeout_factor * self.inner.default_exec_time();
        let mut acc = StepResilience::default();
        let mut evaluated_action = action.to_vec();
        let mut out = self.attempt(&evaluated_action, timeout_s, &mut acc);

        // Bounded retries, transient failures only.
        while out.failed
            && !acc.timed_out
            && out.failure.as_ref().is_some_and(|f| f.is_transient())
            && acc.retries < self.policy.max_retries
        {
            let wait = self.policy.backoff_s(acc.retries);
            acc.overhead_s += out.exec_time_s + wait;
            acc.retries += 1;
            telemetry::event!(
                "retry.attempt",
                attempt = acc.retries,
                backoff_s = wait,
                eval = self.inner.eval_count()
            );
            out = self.attempt(&evaluated_action, timeout_s, &mut acc);
        }
        if out.failed && !acc.timed_out && out.failure.as_ref().is_some_and(|f| f.is_transient()) {
            telemetry::event!("retry.exhausted", attempts = acc.retries);
        }

        if out.failed {
            self.consecutive_failures += 1;
        }

        // Fall back to the last configuration that worked once failures
        // repeat; the abandoned attempt's cost becomes overhead.
        if out.failed && self.consecutive_failures >= self.policy.fallback_after {
            if let Some(good) = self.last_good_action.clone() {
                acc.fell_back = true;
                acc.overhead_s += out.exec_time_s;
                telemetry::event!(
                    "recovery.fallback",
                    after_failures = self.consecutive_failures
                );
                evaluated_action = good;
                out = self.attempt(&evaluated_action, timeout_s, &mut acc);
            }
        }

        if !out.failed {
            self.consecutive_failures = 0;
            self.last_good_action = Some(evaluated_action.clone());
        }

        // Impute lost-probe entries (NaN) from the last good observation.
        let mut imputed = 0u32;
        for (i, v) in out.next_state.iter_mut().enumerate() {
            if !v.is_finite() {
                *v = self
                    .last_state
                    .get(i)
                    .copied()
                    .filter(|x| x.is_finite())
                    .unwrap_or(0.0);
                imputed += 1;
            }
        }
        if imputed > 0 {
            acc.imputed_probes = imputed;
            telemetry::event!("recovery.imputed_probes", count = imputed);
        }
        self.last_state = out.next_state.clone();

        // Reward sanitization: nothing non-finite or absurd may reach a
        // replay buffer.
        if !out.reward.is_finite() {
            out.reward = -self.policy.reward_clamp;
        }
        out.reward = out
            .reward
            .clamp(-self.policy.reward_clamp, self.policy.reward_clamp);

        ResilientOutcome {
            outcome: out,
            evaluated_action,
            accounting: acc,
        }
    }
}

/// Configuration of a checkpointed resilient online session.
#[derive(Clone, Debug, Default)]
pub struct ChaosSessionConfig {
    /// Durable-session directory: a segmented commitlog
    /// ([`crate::commitlog::Commitlog`]) holding an initial snapshot plus
    /// one fsynced [`StepDelta`] record per completed step, compacted
    /// into fresh snapshots per [`ChaosSessionConfig::commitlog`].
    pub checkpoint: Option<PathBuf>,
    /// Resume from the commitlog instead of starting fresh
    /// (requires `checkpoint`). If nothing durable exists in the
    /// directory (the process died before the first snapshot landed),
    /// the session transparently starts from scratch.
    pub resume: bool,
    /// Simulate a crash: return [`SessionOutcome::Killed`] after this
    /// many completed steps (checkpoint already written).
    pub kill_after: Option<usize>,
    /// Safe-exploration guardrails (feasibility screen, canary rollout,
    /// regression watchdog). Disabled by default — the unguarded path is
    /// arithmetically unchanged.
    pub guardrails: GuardrailPolicy,
    /// Telemetry session identity for this run. `None` (the default)
    /// allocates the next process-unique [`SessionCtx`] labelled with
    /// the tuner name; multi-tenant callers pass their own so every
    /// event the session emits (steps, guardrail verdicts, recovery,
    /// budget) carries their `session_id`.
    pub session: Option<SessionCtx>,
    /// Storage backend for the commitlog. `None` uses the real
    /// filesystem; chaos harnesses pass a shared
    /// [`crate::storage::FaultyStorage`] so the same (fault-injecting)
    /// device persists across simulated process incarnations.
    pub storage: Option<SharedStorage>,
    /// Commitlog snapshot/segmentation policy.
    pub commitlog: CommitlogPolicy,
}

impl ChaosSessionConfig {
    /// This session config with guardrails switched on (default policy).
    pub fn with_guardrails(mut self) -> Self {
        self.guardrails = GuardrailPolicy::on();
        self
    }
}

/// How a resilient session ended.
#[derive(Clone, Debug)]
pub enum SessionOutcome {
    Completed(TuningReport),
    /// The session was killed (via [`ChaosSessionConfig::kill_after`])
    /// after writing a checkpoint; resume with
    /// [`ChaosSessionConfig::resume`].
    Killed {
        completed_steps: usize,
    },
    /// The process died on an injected storage fault (torn write, failed
    /// fsync, ENOSPC) while persisting a step. `completed_steps` counts
    /// the steps completed *in memory*; what survived on disk is decided
    /// by recovery on the next [`ChaosSessionConfig::resume`].
    Crashed {
        completed_steps: usize,
    },
}

fn rng_words(words: &[u64]) -> io::Result<[u64; 4]> {
    words.try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint RNG state has {} words, expected 4", words.len()),
        )
    })
}

/// Capture the complete session state as an [`OnlineCheckpoint`] — the
/// commitlog's snapshot payload.
#[allow(clippy::too_many_arguments)]
fn build_checkpoint(
    tuner_name: &str,
    next_step: usize,
    cfg: &OnlineConfig,
    agent: &Td3Agent,
    rng: &StdRng,
    replay: &UniformReplay,
    steps: &[StepRecord],
    spent_s: f64,
    state: &[f64],
    env: &ResilientEnv,
    guard: &Guardrail,
) -> OnlineCheckpoint {
    OnlineCheckpoint {
        tuner: tuner_name.to_string(),
        next_step,
        total_steps: cfg.steps,
        agent: agent.checkpoint(),
        agent_rng: agent.rng_state().to_vec(),
        loop_rng: rng.state().to_vec(),
        replay: replay.iter().cloned().collect(),
        steps: steps.to_vec(),
        spent_s,
        eval_count: env.eval_count(),
        env_state: state.to_vec(),
        step_in_episode: env.inner().step_in_episode(),
        resilience: env.snapshot(),
        guardrail: guard.enabled().then(|| guard.snapshot()),
    }
}

/// Result of [`SessionEngine::create`]: either a live engine ready to
/// step, or a session that died on an injected storage fault before its
/// first step (already reported via `session.end`).
pub enum EngineInit {
    Ready(Box<SessionEngine>),
    Dead(SessionOutcome),
}

/// What one [`SessionEngine::step_once`] call did.
#[derive(Debug)]
pub enum EngineStep {
    /// The step completed and the session has more steps to run.
    Running,
    /// The session reached a terminal state (completed, killed, or
    /// crashed on an injected storage fault).
    Finished(SessionOutcome),
}

/// The TD3 online loop of [`crate::online::online_tune_td3`], run through
/// a [`ResilientEnv`] with optional per-step commitlog durability, pulled
/// apart into an explicit state machine: [`SessionEngine::create`] builds
/// (or recovers) the session state, [`SessionEngine::step_once`] runs
/// exactly one online step. [`online_tune_resilient`] drives the engine
/// to completion on the calling thread; the multi-tenant
/// [`crate::service::TuningService`] interleaves many engines across a
/// worker pool, one `step_once` dispatch at a time, with each call inside
/// a panic-containment boundary.
///
/// Every method re-opens the session's ambient telemetry scope on entry,
/// so events stay attributed to the right session no matter which worker
/// thread runs the step.
pub struct SessionEngine {
    agent: Td3Agent,
    env: ResilientEnv,
    cfg: OnlineConfig,
    session: ChaosSessionConfig,
    tuner_name: String,
    ctx: SessionCtx,
    rng: StdRng,
    noise: GaussianNoise,
    replay: UniformReplay,
    steps: Vec<StepRecord>,
    state: Vec<f64>,
    spent_s: f64,
    next_step: usize,
    space: spark_sim::KnobSpace,
    guard: Guardrail,
    log: Option<Commitlog>,
}

impl SessionEngine {
    /// Build a session engine, opening (and on `resume` recovering from)
    /// the commitlog. A session that dies on an injected storage fault
    /// during open/create/initial-snapshot returns
    /// [`EngineInit::Dead`] with [`SessionOutcome::Crashed`], exactly as
    /// the monolithic loop used to.
    pub fn create(
        mut agent: Td3Agent,
        mut env: ResilientEnv,
        cfg: OnlineConfig,
        session: ChaosSessionConfig,
        tuner_name: &str,
    ) -> io::Result<EngineInit> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0417_11E5);
        let noise = GaussianNoise::new(env.action_dim(), cfg.exploration_sigma);
        let mut replay = UniformReplay::new(1024);
        let mut steps: Vec<StepRecord> = Vec::with_capacity(cfg.steps);
        let mut state = env.reset();
        let mut spent_s = 0.0;
        let mut start_step = 0;
        let space = env.inner().spark().space().clone();
        let mut guard = Guardrail::new(session.guardrails.clone(), env.default_exec_time());

        // Session scoping: every event below — steps, guardrail verdicts,
        // retries, budget, checkpoints — carries this session's id via the
        // thread-local ambient scope, without per-call-site plumbing.
        let ctx = session
            .session
            .clone()
            .unwrap_or_else(|| SessionCtx::next(tuner_name));
        let _session_scope = telemetry::session_scope(&ctx);
        telemetry::event!(
            "session.start",
            label = ctx.label(),
            tuner = tuner_name,
            steps = cfg.steps,
            resume = session.resume
        );

        // Durable session store: open/create the commitlog and, on resume,
        // rebuild the exact in-memory state from snapshot + tail replay.
        let mut log: Option<Commitlog> = None;
        let mut needs_initial_snapshot = false;
        if let Some(dir) = &session.checkpoint {
            let storage = session
                .storage
                .clone()
                .unwrap_or_else(|| shared_storage(RealStorage::new()));
            if session.resume {
                let (l, recovered) = match Commitlog::open(dir, storage, session.commitlog.clone())
                {
                    Ok(opened) => opened,
                    Err(e) if e.is_simulated_death() => {
                        telemetry::event!("session.end", outcome = "crashed", steps = 0usize);
                        return Ok(EngineInit::Dead(SessionOutcome::Crashed {
                            completed_steps: 0,
                        }));
                    }
                    Err(e) => return Err(e.into_io()),
                };
                log = Some(l);
                match recovered {
                    Some(rec) => {
                        let cp = rec.checkpoint;
                        agent = Td3Agent::from_checkpoint(cp.agent, cfg.seed);
                        agent.set_rng_state(rng_words(&cp.agent_rng)?);
                        rng = StdRng::from_state(rng_words(&cp.loop_rng)?);
                        for t in cp.replay {
                            replay.push(t);
                        }
                        steps = cp.steps;
                        spent_s = cp.spent_s;
                        start_step = cp.next_step;
                        state = cp.env_state.clone();
                        let mut env_restore = (
                            cp.env_state,
                            cp.step_in_episode,
                            cp.eval_count,
                            cp.resilience,
                        );
                        let mut guard_snap = cp.guardrail;

                        // Tail replay: each delta re-runs the deterministic
                        // fine-tune loop on top of the restored weights, then
                        // proves it landed exactly where the original run was
                        // by comparing both RNG streams.
                        for delta in rec.tail {
                            replay.push(delta.transition);
                            rng = StdRng::from_state(rng_words(&delta.loop_rng_pre_train)?);
                            for _ in 0..cfg.fine_tune_steps {
                                let batch_size = replay.len().min(agent.cfg.batch_size);
                                if let Some(batch) = replay.sample(batch_size, &mut rng) {
                                    agent.train_step(&batch);
                                }
                            }
                            if rng.state().to_vec() != delta.loop_rng_post
                                || agent.rng_state().to_vec() != delta.agent_rng_post
                            {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("commitlog tail replay diverged at seq {}", delta.seq),
                                ));
                            }
                            spent_s = delta.spent_s;
                            start_step = delta.seq as usize + 1;
                            state = delta.env_state.clone();
                            env_restore = (
                                delta.env_state,
                                delta.step_in_episode,
                                delta.eval_count,
                                delta.resilience,
                            );
                            guard_snap = delta.guardrail;
                            steps.push(delta.record);
                        }
                        env.restore(env_restore.0, env_restore.1, env_restore.2, env_restore.3);
                        if let Some(snap) = guard_snap {
                            guard.restore(snap);
                        }
                        telemetry::event!("recovery.resume", step = start_step, tuner = tuner_name);
                    }
                    None => {
                        // Nothing durable survived (the process died before
                        // the first snapshot landed): start from scratch.
                        needs_initial_snapshot = true;
                    }
                }
            } else {
                match Commitlog::create(dir, storage, session.commitlog.clone()) {
                    Ok(l) => log = Some(l),
                    Err(e) if e.is_simulated_death() => {
                        telemetry::event!("session.end", outcome = "crashed", steps = 0usize);
                        return Ok(EngineInit::Dead(SessionOutcome::Crashed {
                            completed_steps: 0,
                        }));
                    }
                    Err(e) => return Err(e.into_io()),
                }
                needs_initial_snapshot = true;
            }
        }
        if needs_initial_snapshot {
            if let Some(log) = log.as_mut() {
                // The recovery anchor: without a durable snapshot at step 0
                // there is nothing to replay the tail onto.
                let cp = build_checkpoint(
                    tuner_name, start_step, &cfg, &agent, &rng, &replay, &steps, spent_s, &state,
                    &env, &guard,
                );
                match log.snapshot(&cp) {
                    Ok(()) => {}
                    Err(e) if e.is_simulated_death() => {
                        telemetry::event!("session.end", outcome = "crashed", steps = 0usize);
                        return Ok(EngineInit::Dead(SessionOutcome::Crashed {
                            completed_steps: 0,
                        }));
                    }
                    Err(e) => return Err(e.into_io()),
                }
            }
        }

        Ok(EngineInit::Ready(Box::new(SessionEngine {
            agent,
            env,
            cfg,
            session,
            tuner_name: tuner_name.to_string(),
            ctx,
            rng,
            noise,
            replay,
            steps,
            state,
            spent_s,
            next_step: start_step,
            space,
            guard,
            log,
        })))
    }

    /// The session's pinned telemetry identity.
    pub fn ctx(&self) -> &SessionCtx {
        &self.ctx
    }

    /// Index of the next step to run (== completed steps so far).
    pub fn next_step(&self) -> usize {
        self.next_step
    }

    /// Total steps this session will run.
    pub fn total_steps(&self) -> usize {
        self.cfg.steps
    }

    /// Virtual seconds of tuning budget spent so far.
    pub fn spent_s(&self) -> f64 {
        self.spent_s
    }

    /// Step records accumulated so far.
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Give the owned agent + environment back (solo-wrapper copy-out).
    pub fn into_parts(self: Box<Self>) -> (Td3Agent, ResilientEnv) {
        (self.agent, self.env)
    }

    fn finish_completed(&mut self) -> SessionOutcome {
        telemetry::event!("session.end", outcome = "completed", steps = self.cfg.steps);
        SessionOutcome::Completed(finish_report(
            &self.tuner_name,
            self.env.inner(),
            std::mem::take(&mut self.steps),
        ))
    }

    /// Force a durable snapshot of the full session state right now (the
    /// service drain path: checkpoint everything, then stop). Returns
    /// `Ok(true)` when the snapshot landed (or the session has no
    /// commitlog, so there is nothing to persist), `Ok(false)` when the
    /// storage simulated a process death — the caller treats the session
    /// as crashed and recovery decides what survived.
    pub fn checkpoint_now(&mut self) -> io::Result<bool> {
        let _scope = telemetry::session_scope(&self.ctx);
        let cp = build_checkpoint(
            &self.tuner_name,
            self.next_step,
            &self.cfg,
            &self.agent,
            &self.rng,
            &self.replay,
            &self.steps,
            self.spent_s,
            &self.state,
            &self.env,
            &self.guard,
        );
        let Some(log) = self.log.as_mut() else {
            return Ok(true);
        };
        match log.snapshot(&cp) {
            Ok(()) => Ok(true),
            Err(e) if e.is_simulated_death() => Ok(false),
            Err(e) => Err(e.into_io()),
        }
    }

    /// Run exactly one online step: recommend, screen, evaluate, train,
    /// persist. Returns [`EngineStep::Finished`] on the terminal step
    /// (completion, `kill_after`, or a storage crash), after emitting the
    /// same `session.end` event the monolithic loop emitted.
    pub fn step_once(&mut self) -> io::Result<EngineStep> {
        let _scope = telemetry::session_scope(&self.ctx);
        if self.next_step >= self.cfg.steps {
            // Zero-step sessions, or a resume that recovered a fully
            // completed log: nothing left to run.
            return Ok(EngineStep::Finished(self.finish_completed()));
        }
        let step = self.next_step;
        let mut span =
            telemetry::span!("online.step", step = step, tuner = self.tuner_name.as_str());
        let t0 = telemetry::Stopwatch::start();
        let mut action = self.agent.select_action(&self.state);
        if self.cfg.exploration_sigma > 0.0 {
            action = self.noise.perturb(&action, &mut self.rng);
        }
        let mut twinq_iterations = 0;
        if self.cfg.use_twinq {
            let res = self
                .cfg
                .twinq
                .optimize(&mut self.agent, &self.state, action, &mut self.rng);
            twinq_iterations = res.iterations;
            action = res.action;
        }
        let q_estimate = Some(self.agent.min_q(&self.state, &action));
        let screened = self.guard.screen(&self.space, &action);
        let action = screened.action;
        let mut grecord = screened.record;
        let recommendation_s = t0.elapsed_s();

        let res = self.env.step(&action);
        let mut out = res.outcome;
        if self.guard.enabled() {
            match self
                .guard
                .judge_canary(out.exec_time_s, out.failed, &res.evaluated_action)
            {
                CanaryVerdict::Pass => {}
                CanaryVerdict::Abort { charged_s, saved_s } => {
                    out.exec_time_s = charged_s;
                    grecord.canary_aborted = true;
                    grecord.saved_s = saved_s;
                }
            }
            self.guard.observe_step(
                out.reward,
                out.failed,
                grecord.canary_aborted,
                &res.evaluated_action,
            );
        }
        // Episode bookkeeping inside the env is perturbed by retries;
        // the session defines its own horizon.
        let done = step + 1 == self.cfg.steps;
        let transition = Transition::new(
            self.state.clone(),
            res.evaluated_action.clone(),
            out.reward,
            out.next_state.clone(),
            done,
        );
        self.replay.push(transition.clone());
        // Commitlog replay anchors here: a recovered session restores
        // this exact RNG state, re-runs the fine-tune loop, and must land
        // on the recorded post-states.
        let loop_rng_pre_train = self.rng.state();
        for _ in 0..self.cfg.fine_tune_steps {
            let batch_size = self.replay.len().min(self.agent.cfg.batch_size);
            if let Some(batch) = self.replay.sample(batch_size, &mut self.rng) {
                self.agent.train_step(&batch);
            }
        }
        telemetry::inc("online.steps", 1);
        span.record("reward", out.reward);
        span.record("exec_time_s", out.exec_time_s);
        span.record("recommendation_s", recommendation_s);
        span.record("failed", out.failed);
        span.record("twinq_iterations", twinq_iterations);
        span.record("retries", res.accounting.retries);
        if let Some(q) = q_estimate {
            span.record("q_estimate", q);
        }
        drop(span);
        telemetry::observe_sketch("online.step_latency_s", t0.elapsed_s());
        telemetry::observe_sketch("online.step_reward", out.reward);
        telemetry::observe_sketch("online.step_cost_s", out.exec_time_s);
        self.spent_s += out.exec_time_s + res.accounting.overhead_s + recommendation_s;
        telemetry::set_gauge("budget.spent_s", self.spent_s);
        telemetry::event!("budget.update", step = step, spent_s = self.spent_s);
        // Step boundary: flush sharded buffers so console progress and the
        // live session rollup stay current (no-op in synchronous mode),
        // then evaluate any installed SLO alert rules on fresh rollups.
        telemetry::drain();
        telemetry::alerts_tick();
        self.steps.push(StepRecord {
            step,
            exec_time_s: out.exec_time_s,
            failed: out.failed,
            reward: out.reward,
            recommendation_s,
            q_estimate,
            twinq_iterations,
            action: res.evaluated_action,
            resilience: res.accounting,
            guardrail: grecord,
        });
        self.state = out.next_state;
        self.next_step = step + 1;

        if self.log.is_some() {
            let delta = StepDelta {
                seq: step as u64,
                // PANIC-SAFETY: the record for this step was pushed just
                // above, so `steps` is non-empty.
                record: self.steps.last().expect("step record just pushed").clone(),
                transition,
                loop_rng_pre_train: loop_rng_pre_train.to_vec(),
                loop_rng_post: self.rng.state().to_vec(),
                agent_rng_post: self.agent.rng_state().to_vec(),
                spent_s: self.spent_s,
                eval_count: self.env.eval_count(),
                env_state: self.state.clone(),
                step_in_episode: self.env.inner().step_in_episode(),
                resilience: self.env.snapshot(),
                guardrail: self.guard.enabled().then(|| self.guard.snapshot()),
            };
            // PANIC-SAFETY: guarded by the `is_some` check above.
            let log = self.log.as_mut().expect("commitlog present");
            match log.append(&delta) {
                Ok(()) => {}
                Err(e) if e.is_simulated_death() => {
                    telemetry::event!("session.end", outcome = "crashed", steps = step + 1);
                    return Ok(EngineStep::Finished(SessionOutcome::Crashed {
                        completed_steps: step + 1,
                    }));
                }
                Err(e) => return Err(e.into_io()),
            }
            telemetry::event!("recovery.checkpoint", step = step);

            // Periodic compaction: fold everything so far into a fresh
            // snapshot and drop the replayed-over segments.
            let every = self.session.commitlog.snapshot_every;
            if every > 0 && (step + 1) % every == 0 && step + 1 < self.cfg.steps {
                let cp = build_checkpoint(
                    &self.tuner_name,
                    step + 1,
                    &self.cfg,
                    &self.agent,
                    &self.rng,
                    &self.replay,
                    &self.steps,
                    self.spent_s,
                    &self.state,
                    &self.env,
                    &self.guard,
                );
                // PANIC-SAFETY: same `is_some`-guarded access as above.
                let log = self.log.as_mut().expect("commitlog present");
                match log.snapshot(&cp) {
                    Ok(()) => {}
                    Err(e) if e.is_simulated_death() => {
                        telemetry::event!("session.end", outcome = "crashed", steps = step + 1);
                        return Ok(EngineStep::Finished(SessionOutcome::Crashed {
                            completed_steps: step + 1,
                        }));
                    }
                    Err(e) => return Err(e.into_io()),
                }
            }
        }
        if self.session.kill_after == Some(step + 1) && step + 1 < self.cfg.steps {
            telemetry::event!("session.end", outcome = "killed", steps = step + 1);
            return Ok(EngineStep::Finished(SessionOutcome::Killed {
                completed_steps: step + 1,
            }));
        }
        if step + 1 == self.cfg.steps {
            return Ok(EngineStep::Finished(self.finish_completed()));
        }
        Ok(EngineStep::Running)
    }
}

/// The resilient online loop, driven to completion on the calling
/// thread: a thin wrapper over [`SessionEngine`]. A session resumed from
/// a mid-run checkpoint replays bit-identically (weights, both RNG
/// streams, replay contents, and the simulator's evaluation counter are
/// all restored), so a crash never changes the tuning result.
pub fn online_tune_resilient(
    agent: &mut Td3Agent,
    env: &mut ResilientEnv,
    cfg: &OnlineConfig,
    session: &ChaosSessionConfig,
    tuner_name: &str,
) -> io::Result<SessionOutcome> {
    let init = SessionEngine::create(
        agent.clone(),
        env.clone(),
        cfg.clone(),
        session.clone(),
        tuner_name,
    )?;
    let mut engine = match init {
        EngineInit::Dead(outcome) => return Ok(outcome),
        EngineInit::Ready(engine) => engine,
    };
    let ctx = engine.ctx().clone();
    let _session_scope = telemetry::session_scope(&ctx);
    let session_span = telemetry::span!("online.request", tuner = tuner_name);
    let outcome = loop {
        match engine.step_once()? {
            EngineStep::Running => {}
            EngineStep::Finished(outcome) => break outcome,
        }
    };
    drop(session_span);
    let (final_agent, final_env) = engine.into_parts();
    *agent = final_agent;
    *env = final_env;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use crate::offline::{train_td3, OfflineConfig};
    use spark_sim::{Cluster, Fault, FaultEvent, InputSize, Workload, WorkloadKind};

    fn env(seed: u64) -> TuningEnv {
        TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            seed,
        )
    }

    fn quick_agent(e: &mut TuningEnv) -> Td3Agent {
        let mut c = AgentConfig::for_dims(e.state_dim(), e.action_dim());
        c.hidden = vec![32, 32];
        c.warmup_steps = 64;
        c.batch_size = 32;
        let (agent, _, _) = train_td3(e, c, &OfflineConfig::deepcat(600, 9), &[]);
        agent
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = ResiliencePolicy::default();
        assert_eq!(p.backoff_s(0), 5.0);
        assert_eq!(p.backoff_s(1), 10.0);
        assert_eq!(p.backoff_s(10), 60.0);
    }

    #[test]
    fn transient_failure_is_retried_and_charged() {
        let mut r = ResilientEnv::new(env(3), ResiliencePolicy::default());
        r.install_plan(FaultPlan::custom(
            3,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::Transient { progress: 0.5 },
            }],
        ));
        let out = r.step(&vec![0.5; r.action_dim()]);
        assert_eq!(
            out.accounting.retries, 1,
            "retried once, second attempt clean"
        );
        assert!(!out.outcome.failed, "retry should succeed");
        // Overhead = wasted attempt + first backoff wait.
        assert!(out.accounting.overhead_s > ResiliencePolicy::default().backoff_s(0));
        assert!(out.outcome.reward.is_finite());
    }

    #[test]
    fn config_caused_failure_is_not_retried() {
        let mut r = ResilientEnv::new(env(3), ResiliencePolicy::default());
        // Near-zero memory: deterministic config-caused failure.
        let mut bad = vec![0.5; r.action_dim()];
        bad[0] = 0.0;
        bad[1] = 0.0;
        bad[2] = 0.0;
        bad[3] = 0.0;
        let out = r.step(&bad);
        if out.outcome.failed {
            assert_eq!(
                out.accounting.retries, 0,
                "deterministic failures are terminal"
            );
        }
    }

    #[test]
    fn config_caused_failures_count_toward_fallback() {
        // Regression guard: *config-caused* failures (not just transient
        // ones) must advance the consecutive-failure counter, so a tuner
        // stuck recommending broken configurations eventually falls back
        // to the last-known-good action.
        let mut p = ResiliencePolicy::default();
        p.fallback_after = 2;
        let mut r = ResilientEnv::new(env(3), p);
        let good = vec![0.5; r.action_dim()];
        let first = r.step(&good);
        assert!(!first.outcome.failed);
        assert_eq!(r.snapshot().consecutive_failures, 0);

        // Oversized executor heap on a minimal NodeManager: YARN
        // negotiation fails deterministically, no fault plan involved.
        let mut bad = vec![0.5; r.action_dim()];
        bad[spark_sim::knobs::idx::EXECUTOR_MEMORY_MB] = 1.0;
        bad[spark_sim::knobs::idx::NM_MEMORY_MB] = 0.0;
        bad[spark_sim::knobs::idx::SCHED_MAX_ALLOC_MB] = 1.0;

        let second = r.step(&bad);
        assert!(second.outcome.failed, "negotiation failure expected");
        assert_eq!(second.accounting.retries, 0, "config-caused: no retry");
        assert_eq!(
            r.snapshot().consecutive_failures,
            1,
            "config-caused failure must advance the counter"
        );

        let third = r.step(&bad);
        assert!(
            third.accounting.fell_back,
            "second consecutive config-caused failure must trigger fallback"
        );
        assert_eq!(third.evaluated_action, good);
        assert!(!third.outcome.failed, "fallback re-evaluates a good config");
        assert_eq!(r.snapshot().consecutive_failures, 0, "fallback resets");
    }

    #[test]
    fn timeout_abandons_and_charges_elapsed_only() {
        let mut p = ResiliencePolicy::default();
        p.eval_timeout_factor = 0.1; // everything times out
        let mut r = ResilientEnv::new(env(3), p.clone());
        let dflt = r.default_exec_time();
        let out = r.step(&vec![0.5; r.action_dim()]);
        assert!(out.accounting.timed_out);
        assert!(out.outcome.failed);
        assert!((out.outcome.exec_time_s - p.eval_timeout_factor * dflt).abs() < 1e-9);
        assert_eq!(out.accounting.retries, 0, "timeouts are terminal");
    }

    #[test]
    fn fallback_reevaluates_last_good_action() {
        let mut p = ResiliencePolicy::default();
        p.fallback_after = 1;
        p.max_retries = 0;
        let mut r = ResilientEnv::new(env(3), p);
        let good = vec![0.5; r.action_dim()];
        let first = r.step(&good);
        assert!(!first.outcome.failed);
        // Persistent transient faults: with retries off, the step fails
        // and immediately falls back.
        r.install_plan(FaultPlan::custom(
            3,
            vec![FaultEvent {
                at_eval: 2,
                fault: Fault::Transient { progress: 0.3 },
            }],
        ));
        let second = r.step(&vec![0.9; r.action_dim()]);
        assert!(second.accounting.fell_back);
        assert_eq!(second.evaluated_action, good);
        assert!(!second.outcome.failed, "fallback eval is fault-free");
    }

    #[test]
    fn lost_probes_are_imputed_before_reaching_the_agent() {
        let mut r = ResilientEnv::new(env(3), ResiliencePolicy::default());
        r.install_plan(FaultPlan::custom(
            3,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::ProbeLoss { node: 1 },
            }],
        ));
        let out = r.step(&vec![0.5; r.action_dim()]);
        assert!(out.accounting.imputed_probes > 0);
        assert!(out.outcome.next_state.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn resilient_session_completes_under_mixed_plan() {
        let mut e = env(21);
        let mut agent = quick_agent(&mut e);
        let mut r = ResilientEnv::new(e, ResiliencePolicy::default());
        r.install_plan(FaultPlan::named("mixed", 7).expect("known plan"));
        let cfg = OnlineConfig::deepcat(1);
        let out = online_tune_resilient(
            &mut agent,
            &mut r,
            &cfg,
            &ChaosSessionConfig::default(),
            "DeepCAT",
        )
        .expect("no checkpoint I/O involved");
        let report = match out {
            SessionOutcome::Completed(rep) => rep,
            SessionOutcome::Killed { .. } | SessionOutcome::Crashed { .. } => {
                panic!("no kill requested")
            }
        };
        assert_eq!(report.steps.len(), 5);
        assert!(report.steps.iter().all(|s| s.reward.is_finite()));
        assert!(report
            .steps
            .iter()
            .all(|s| s.exec_time_s.is_finite() && s.exec_time_s >= 0.0));
    }

    /// Unique per-test scratch dir (pid-qualified so concurrent `cargo
    /// test` invocations never collide), removed on drop.
    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "deepcat-resilience-test-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_session() {
        let dir = TestDir::new("kill-resume");
        let path = dir.0.join("chaos-checkpoint.json");
        let cfg = OnlineConfig::deepcat(1);

        // Uninterrupted reference run.
        let mut e = env(21);
        let mut agent = quick_agent(&mut e);
        let mut r = ResilientEnv::new(e, ResiliencePolicy::default());
        r.install_plan(FaultPlan::named("mixed", 7).expect("known plan"));
        let full = match online_tune_resilient(
            &mut agent,
            &mut r,
            &cfg,
            &ChaosSessionConfig::default(),
            "DeepCAT",
        )
        .unwrap()
        {
            SessionOutcome::Completed(rep) => rep,
            SessionOutcome::Killed { .. } | SessionOutcome::Crashed { .. } => {
                panic!("no kill requested")
            }
        };

        // Same run, killed after 2 steps...
        let mut e2 = env(21);
        let mut agent2 = quick_agent(&mut e2);
        let mut r2 = ResilientEnv::new(e2, ResiliencePolicy::default());
        r2.install_plan(FaultPlan::named("mixed", 7).expect("known plan"));
        let killed = online_tune_resilient(
            &mut agent2,
            &mut r2,
            &cfg,
            &ChaosSessionConfig {
                checkpoint: Some(path.clone()),
                resume: false,
                kill_after: Some(2),
                ..ChaosSessionConfig::default()
            },
            "DeepCAT",
        )
        .unwrap();
        assert!(matches!(
            killed,
            SessionOutcome::Killed { completed_steps: 2 }
        ));

        // ...then resumed in a fresh process (fresh env + agent shells).
        let mut e3 = env(21);
        let mut agent3 = quick_agent(&mut e3);
        let mut r3 = ResilientEnv::new(e3, ResiliencePolicy::default());
        r3.install_plan(FaultPlan::named("mixed", 7).expect("known plan"));
        let resumed = match online_tune_resilient(
            &mut agent3,
            &mut r3,
            &cfg,
            &ChaosSessionConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                kill_after: None,
                ..ChaosSessionConfig::default()
            },
            "DeepCAT",
        )
        .unwrap()
        {
            SessionOutcome::Completed(rep) => rep,
            SessionOutcome::Killed { .. } | SessionOutcome::Crashed { .. } => {
                panic!("resume runs to completion")
            }
        };

        assert_eq!(resumed.steps.len(), full.steps.len());
        assert_eq!(
            resumed.best_action, full.best_action,
            "bit-identical best action"
        );
        assert_eq!(resumed.best_exec_time_s, full.best_exec_time_s);
        for (a, b) in full.steps.iter().zip(resumed.steps.iter()) {
            assert_eq!(a.exec_time_s, b.exec_time_s, "step {}", a.step);
            assert_eq!(a.reward, b.reward, "step {}", a.step);
            assert_eq!(a.action, b.action, "step {}", a.step);
        }
    }

    #[test]
    fn fault_free_wrapper_matches_bare_environment_costs() {
        // The wrapper with default policy must be a no-op on healthy runs.
        let mut bare = env(11);
        let a = vec![0.5; bare.action_dim()];
        let direct = bare.step(&a);
        let mut wrapped = ResilientEnv::new(env(11), ResiliencePolicy::default());
        let res = wrapped.step(&a);
        assert_eq!(res.outcome.exec_time_s, direct.exec_time_s);
        assert_eq!(res.outcome.reward, direct.reward);
        assert_eq!(res.accounting, StepResilience::default());
    }
}
