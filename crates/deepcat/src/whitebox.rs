//! White-box-assisted tuning — the paper's stated future work ("how to
//! utilize software analysis methods to further reduce the online tuning
//! cost", §7, citing LOCAT and LITE).
//!
//! The idea implemented here: the run metrics of the previous evaluation
//! identify the bottleneck resource (CPU, memory pressure, shuffle, IO,
//! or outright failure), and the Twin-Q Optimizer's Gaussian perturbation
//! is *focused* on the knobs that mechanically govern that bottleneck —
//! the other dimensions keep the actor's recommendation. The search
//! explores a ~6–10-dimensional slice instead of the full 32-dimensional
//! ball, so the same iteration cap covers it far more densely.

use crate::td3::Td3Agent;
use crate::twinq::{TwinQOptimizer, TwinQResult};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use spark_sim::{idx, RunMetrics};

/// The resource class limiting the previous run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// High CPU utilization, little waiting: scale out / serialize cheaper.
    Cpu,
    /// GC pressure, spills or cache misses: memory sizing knobs.
    Memory,
    /// Heavy shuffle traffic: shuffle/compression/parallelism knobs.
    Shuffle,
    /// IO-wait dominated: HDFS and buffer knobs.
    Io,
    /// Containers died: memory and YARN safety knobs.
    Failure,
}

/// Diagnose the dominant bottleneck from the last run's metrics.
pub fn diagnose(metrics: &RunMetrics) -> Bottleneck {
    if metrics.container_kills > 0 {
        return Bottleneck::Failure;
    }
    if metrics.gc_frac > 0.12 || metrics.cache_hit < 0.7 || metrics.spill_mb > 500.0 {
        return Bottleneck::Memory;
    }
    if metrics.io_wait > 0.35 {
        return Bottleneck::Io;
    }
    if metrics.shuffle_mb > 1.5 * metrics.hdfs_read_mb.max(1.0) {
        return Bottleneck::Shuffle;
    }
    Bottleneck::Cpu
}

/// The knob indices mechanically coupled to a bottleneck class.
pub fn relevant_knobs(b: Bottleneck) -> &'static [usize] {
    match b {
        Bottleneck::Cpu => &[
            idx::EXECUTOR_CORES,
            idx::EXECUTOR_INSTANCES,
            idx::DEFAULT_PARALLELISM,
            idx::SERIALIZER,
            idx::TASK_CPUS,
            idx::NM_VCORES,
            idx::SPECULATION,
        ],
        Bottleneck::Memory => &[
            idx::EXECUTOR_MEMORY_MB,
            idx::MEMORY_FRACTION,
            idx::MEMORY_STORAGE_FRACTION,
            idx::SERIALIZER,
            idx::RDD_COMPRESS,
            idx::EXECUTOR_INSTANCES,
            idx::TASK_CPUS,
            idx::NM_MEMORY_MB,
        ],
        Bottleneck::Shuffle => &[
            idx::DEFAULT_PARALLELISM,
            idx::SHUFFLE_COMPRESS,
            idx::SHUFFLE_SPILL_COMPRESS,
            idx::SHUFFLE_FILE_BUFFER_KB,
            idx::REDUCER_MAX_SIZE_IN_FLIGHT_MB,
            idx::IO_COMPRESSION_CODEC,
            idx::SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD,
        ],
        Bottleneck::Io => &[
            idx::DFS_BLOCK_SIZE_MB,
            idx::DFS_REPLICATION,
            idx::DN_HANDLER_COUNT,
            idx::NN_HANDLER_COUNT,
            idx::IO_FILE_BUFFER_KB,
            idx::LOCALITY_WAIT_S,
            idx::SHUFFLE_COMPRESS,
        ],
        Bottleneck::Failure => &[
            idx::EXECUTOR_MEMORY_MB,
            idx::MEMORY_FRACTION,
            idx::EXECUTOR_CORES,
            idx::TASK_CPUS,
            idx::VMEM_PMEM_RATIO,
            idx::PMEM_CHECK,
            idx::SCHED_MAX_ALLOC_MB,
            idx::NM_MEMORY_MB,
        ],
    }
}

/// Twin-Q Optimizer with white-box focus: Algorithm 1 with the Gaussian
/// perturbation restricted to the bottleneck's knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WhiteBoxTwinQ {
    pub inner: TwinQOptimizer,
}

impl Default for WhiteBoxTwinQ {
    fn default() -> Self {
        Self {
            inner: TwinQOptimizer::default(),
        }
    }
}

impl WhiteBoxTwinQ {
    /// Optimize `action`, perturbing only the knobs relevant to the
    /// bottleneck diagnosed from `last_metrics` (falls back to the plain
    /// full-dimensional optimizer when no previous run exists).
    pub fn optimize(
        &self,
        agent: &Td3Agent,
        state: &[f64],
        action: Vec<f64>,
        last_metrics: Option<&RunMetrics>,
        rng: &mut impl Rng,
    ) -> (TwinQResult, Option<Bottleneck>) {
        let Some(metrics) = last_metrics else {
            return (self.inner.optimize(agent, state, action, rng), None);
        };
        let bottleneck = diagnose(metrics);
        let mask = relevant_knobs(bottleneck);
        // PANIC-SAFETY: TwinQConfig keeps sigma finite and >= 0.
        let normal = Normal::new(0.0, self.inner.sigma).expect("valid sigma");
        let initial_q = self.inner.smoothed_min_q(agent, state, &action, rng);
        let mut current = action;
        let mut current_q = initial_q;
        let (mut best, mut best_q) = (current.clone(), current_q);
        let mut iterations = 0;
        while current_q < self.inner.q_threshold && iterations < self.inner.max_iters {
            for &d in mask {
                current[d] = (current[d] + normal.sample(rng)).clamp(0.0, 1.0);
            }
            current_q = self.inner.smoothed_min_q(agent, state, &current, rng);
            if current_q > best_q {
                best_q = current_q;
                best = current.clone();
            }
            iterations += 1;
        }
        let result = if current_q >= self.inner.q_threshold {
            TwinQResult {
                action: current,
                initial_q,
                final_q: current_q,
                iterations,
                accepted: true,
            }
        } else {
            TwinQResult {
                action: best,
                initial_q,
                final_q: best_q,
                iterations,
                accepted: false,
            }
        };
        (result, Some(bottleneck))
    }
}

/// Online tuning with the white-box-focused Twin-Q Optimizer: identical
/// to [`crate::online::online_tune_td3`] but the perturbation search after
/// the first step is restricted to the diagnosed bottleneck's knobs.
pub fn online_tune_whitebox(
    agent: &mut Td3Agent,
    env: &mut crate::envwrap::TuningEnv,
    cfg: &crate::online::OnlineConfig,
) -> (crate::online::TuningReport, Vec<Option<Bottleneck>>) {
    use rand::SeedableRng;
    use rl::{GaussianNoise, ReplayMemory, Transition, UniformReplay};

    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x0417_11E5);
    let noise = GaussianNoise::new(env.action_dim(), cfg.exploration_sigma);
    let wb = WhiteBoxTwinQ { inner: cfg.twinq };
    let mut replay = UniformReplay::new(1024);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut bottlenecks = Vec::with_capacity(cfg.steps);
    let mut last_metrics: Option<RunMetrics> = None;
    let mut state = env.reset();
    for step in 0..cfg.steps {
        let t0 = telemetry::Stopwatch::start();
        let mut action = agent.select_action(&state);
        if cfg.exploration_sigma > 0.0 {
            action = noise.perturb(&action, &mut rng);
        }
        let mut twinq_iterations = 0;
        let mut bn = None;
        if cfg.use_twinq {
            let (res, b) = wb.optimize(agent, &state, action, last_metrics.as_ref(), &mut rng);
            twinq_iterations = res.iterations;
            action = res.action;
            bn = b;
        }
        bottlenecks.push(bn);
        let q_estimate = Some(agent.min_q(&state, &action));
        let recommendation_s = t0.elapsed_s();
        let out = env.step(&action);
        last_metrics = Some(out.metrics.clone());
        replay.push(Transition::new(
            state.clone(),
            action.clone(),
            out.reward,
            out.next_state.clone(),
            out.done,
        ));
        for _ in 0..cfg.fine_tune_steps {
            let batch_size = replay.len().min(agent.cfg.batch_size);
            if let Some(batch) = replay.sample(batch_size, &mut rng) {
                agent.train_step(&batch);
            }
        }
        steps.push(crate::online::StepRecord {
            step,
            exec_time_s: out.exec_time_s,
            failed: out.failed,
            reward: out.reward,
            recommendation_s,
            q_estimate,
            twinq_iterations,
            action,
            resilience: crate::online::StepResilience::default(),
            guardrail: crate::online::StepGuardrail::default(),
        });
        state = out.next_state;
    }
    (
        crate::online::finish_report("DeepCAT+WB", env, steps),
        bottlenecks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics::idle(3)
    }

    #[test]
    fn failure_dominates_the_diagnosis() {
        let mut m = metrics();
        m.container_kills = 2;
        m.gc_frac = 0.5;
        m.io_wait = 0.9;
        assert_eq!(diagnose(&m), Bottleneck::Failure);
    }

    #[test]
    fn memory_pressure_signals() {
        let mut m = metrics();
        m.gc_frac = 0.2;
        assert_eq!(diagnose(&m), Bottleneck::Memory);
        let mut m = metrics();
        m.cache_hit = 0.4;
        assert_eq!(diagnose(&m), Bottleneck::Memory);
        let mut m = metrics();
        m.spill_mb = 2000.0;
        assert_eq!(diagnose(&m), Bottleneck::Memory);
    }

    #[test]
    fn io_and_shuffle_and_cpu() {
        let mut m = metrics();
        m.io_wait = 0.5;
        assert_eq!(diagnose(&m), Bottleneck::Io);
        let mut m = metrics();
        m.shuffle_mb = 5000.0;
        m.hdfs_read_mb = 1000.0;
        assert_eq!(diagnose(&m), Bottleneck::Shuffle);
        assert_eq!(diagnose(&metrics()), Bottleneck::Cpu);
    }

    #[test]
    fn every_bottleneck_has_a_knob_set_within_bounds() {
        for b in [
            Bottleneck::Cpu,
            Bottleneck::Memory,
            Bottleneck::Shuffle,
            Bottleneck::Io,
            Bottleneck::Failure,
        ] {
            let knobs = relevant_knobs(b);
            assert!(!knobs.is_empty());
            assert!(knobs.iter().all(|&k| k < 32));
        }
    }

    #[test]
    fn whitebox_perturbs_only_masked_dimensions() {
        use crate::config::AgentConfig;
        use rand::SeedableRng;
        let mut cfg = AgentConfig::for_dims(2, 32);
        cfg.hidden = vec![8];
        let agent = Td3Agent::new(cfg, 1);
        let wb = WhiteBoxTwinQ {
            inner: TwinQOptimizer {
                q_threshold: 1e9, // force the full perturbation loop
                sigma: 0.2,
                max_iters: 12,
                smoothing_samples: 1,
            },
        };
        let mut m = metrics();
        m.io_wait = 0.9; // → Io bottleneck
        let start = vec![0.5; 32];
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (res, b) = wb.optimize(&agent, &[0.0, 0.0], start.clone(), Some(&m), &mut rng);
        assert_eq!(b, Some(Bottleneck::Io));
        let mask = relevant_knobs(Bottleneck::Io);
        for (d, (&a, &s)) in res.action.iter().zip(&start).enumerate() {
            if mask.contains(&d) {
                continue;
            }
            assert_eq!(a, s, "unmasked knob {d} must be untouched");
        }
        assert!(
            mask.iter().any(|&d| res.action[d] != start[d]),
            "masked knobs must move"
        );
    }

    #[test]
    fn whitebox_online_loop_runs_end_to_end() {
        use crate::config::AgentConfig;
        use crate::envwrap::TuningEnv;
        use crate::offline::{train_td3, OfflineConfig};
        use crate::online::OnlineConfig;
        use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, 71);
        let mut ac = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        ac.hidden = vec![32, 32];
        ac.warmup_steps = 96;
        let (mut agent, _, _) = train_td3(&mut env, ac, &OfflineConfig::deepcat(700, 5), &[]);
        let mut live =
            TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 72);
        let (report, bottlenecks) =
            online_tune_whitebox(&mut agent, &mut live, &OnlineConfig::deepcat(6));
        assert_eq!(report.steps.len(), 5);
        assert_eq!(bottlenecks.len(), 5);
        // Step 0 has no history; later steps must have a diagnosis.
        assert!(bottlenecks[0].is_none());
        assert!(bottlenecks[1..].iter().all(Option::is_some));
        assert!(report.speedup() > 1.5, "{}", report.speedup());
    }

    #[test]
    fn without_history_it_falls_back_to_plain_twinq() {
        use crate::config::AgentConfig;
        use rand::SeedableRng;
        let mut cfg = AgentConfig::for_dims(2, 32);
        cfg.hidden = vec![8];
        let agent = Td3Agent::new(cfg, 3);
        let wb = WhiteBoxTwinQ::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (res, b) = wb.optimize(&agent, &[0.0, 0.0], vec![0.5; 32], None, &mut rng);
        assert!(b.is_none());
        assert!(res.action.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
