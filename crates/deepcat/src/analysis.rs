//! Analysis utilities over tuning reports: aggregate repeated sessions
//! into summary statistics, compare tuners, and render markdown — the
//! post-processing layer an operator uses to decide which tuner to deploy.

use crate::online::TuningReport;
use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extremes of one metric across sessions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

impl Stat {
    /// Compute over a sample (population std of the observed sessions).
    pub fn of(values: &[f64]) -> Stat {
        assert!(!values.is_empty(), "need at least one value");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Stat {
            mean,
            std: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }

    /// Half-width of the ~95% normal confidence interval of the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        1.96 * self.std / ((self.n - 1) as f64).sqrt()
    }
}

/// Aggregated view of repeated tuning sessions by one tuner on one target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionSummary {
    pub tuner: String,
    pub workload: String,
    pub sessions: usize,
    pub best_exec_s: Stat,
    pub speedup: Stat,
    pub total_cost_s: Stat,
    pub recommendation_s: Stat,
    /// Fraction of online steps that failed (OOM / infeasible).
    pub failure_rate: f64,
}

/// Summarize repeated sessions. All reports must come from the same tuner
/// and workload (panics otherwise — mixing them is an analysis bug).
pub fn summarize(reports: &[TuningReport]) -> SessionSummary {
    assert!(!reports.is_empty(), "no sessions to summarize");
    let tuner = reports[0].tuner.clone();
    let workload = reports[0].workload.clone();
    for r in reports {
        assert_eq!(r.tuner, tuner, "mixed tuners in one summary");
        assert_eq!(r.workload, workload, "mixed workloads in one summary");
    }
    let best: Vec<f64> = reports.iter().map(|r| r.best_exec_time_s).collect();
    let speedup: Vec<f64> = reports.iter().map(|r| r.speedup()).collect();
    let cost: Vec<f64> = reports.iter().map(|r| r.total_cost_s()).collect();
    let rec: Vec<f64> = reports.iter().map(|r| r.total_rec_s).collect();
    let steps: usize = reports.iter().map(|r| r.steps.len()).sum();
    let failures: usize = reports
        .iter()
        .map(|r| r.steps.iter().filter(|s| s.failed).count())
        .sum();
    SessionSummary {
        tuner,
        workload,
        sessions: reports.len(),
        best_exec_s: Stat::of(&best),
        speedup: Stat::of(&speedup),
        total_cost_s: Stat::of(&cost),
        recommendation_s: Stat::of(&rec),
        failure_rate: failures as f64 / steps.max(1) as f64,
    }
}

/// Verdict of a pairwise comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The challenger's mean is better and the 95% CIs do not overlap.
    ClearlyBetter,
    /// The challenger's mean is better but the CIs overlap.
    LikelyBetter,
    /// Means within each other's CIs in both directions.
    Tie,
    /// The incumbent's mean is better.
    Worse,
}

/// Compare a challenger summary against an incumbent on best execution
/// time (lower is better).
pub fn compare(challenger: &SessionSummary, incumbent: &SessionSummary) -> Verdict {
    let (c, i) = (&challenger.best_exec_s, &incumbent.best_exec_s);
    let (cw, iw) = (c.ci95_half_width(), i.ci95_half_width());
    if c.mean + cw < i.mean - iw {
        Verdict::ClearlyBetter
    } else if c.mean < i.mean - iw {
        Verdict::LikelyBetter
    } else if c.mean <= i.mean + iw {
        Verdict::Tie
    } else {
        Verdict::Worse
    }
}

/// Render a set of summaries as a markdown table (one row per tuner).
pub fn to_markdown(summaries: &[SessionSummary]) -> String {
    let mut out = String::from(
        "| tuner | workload | sessions | best exec (s) | speedup | total cost (s) | failures |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for s in summaries {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} ± {:.1} | {:.2}x | {:.1} ± {:.1} | {:.0}% |\n",
            s.tuner,
            s.workload,
            s.sessions,
            s.best_exec_s.mean,
            s.best_exec_s.std,
            s.speedup.mean,
            s.total_cost_s.mean,
            s.total_cost_s.std,
            100.0 * s.failure_rate,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{StepGuardrail, StepRecord, StepResilience};

    fn report(tuner: &str, best: f64, cost: f64, failed: bool) -> TuningReport {
        let step = StepRecord {
            step: 0,
            exec_time_s: best,
            failed,
            reward: 0.0,
            recommendation_s: 0.01,
            q_estimate: None,
            twinq_iterations: 0,
            action: vec![0.5],
            resilience: StepResilience::default(),
            guardrail: StepGuardrail::default(),
        };
        TuningReport {
            tuner: tuner.into(),
            workload: "TS-D1".into(),
            steps: vec![
                StepRecord {
                    exec_time_s: cost - best,
                    ..step.clone()
                },
                step,
            ],
            best_exec_time_s: best,
            best_action: vec![0.5],
            total_eval_s: cost,
            total_rec_s: 0.02,
            default_exec_time_s: 100.0,
        }
    }

    #[test]
    fn stat_basics() {
        let s = Stat::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
        assert!(s.ci95_half_width() > 0.0);
        assert_eq!(Stat::of(&[5.0]).ci95_half_width(), f64::INFINITY);
    }

    #[test]
    fn summary_aggregates_sessions() {
        let reports = vec![
            report("DeepCAT", 40.0, 200.0, false),
            report("DeepCAT", 50.0, 260.0, true),
        ];
        let s = summarize(&reports);
        assert_eq!(s.sessions, 2);
        assert!((s.best_exec_s.mean - 45.0).abs() < 1e-12);
        assert!((s.speedup.mean - (100.0 / 40.0 + 100.0 / 50.0) / 2.0).abs() < 1e-12);
        assert!((s.failure_rate - 0.5).abs() < 1e-12); // 2 of 4 steps failed
    }

    #[test]
    #[should_panic(expected = "mixed tuners")]
    fn mixed_tuners_rejected() {
        summarize(&[report("A", 1.0, 2.0, false), report("B", 1.0, 2.0, false)]);
    }

    #[test]
    fn compare_verdicts() {
        let fast = summarize(&[
            report("A", 40.0, 1.0, false),
            report("A", 41.0, 1.0, false),
            report("A", 39.0, 1.0, false),
        ]);
        let slow = summarize(&[
            report("B", 80.0, 1.0, false),
            report("B", 82.0, 1.0, false),
            report("B", 78.0, 1.0, false),
        ]);
        assert_eq!(compare(&fast, &slow), Verdict::ClearlyBetter);
        assert_eq!(compare(&slow, &fast), Verdict::Worse);
        assert_eq!(compare(&fast, &fast), Verdict::Tie);
    }

    #[test]
    fn markdown_renders_all_rows() {
        let s1 = summarize(&[report("A", 40.0, 200.0, false)]);
        let md = to_markdown(&[s1]);
        assert!(md.contains("| A | TS-D1 | 1 |"));
        assert!(md.lines().count() >= 3);
    }
}
