//! The paper's immediate reward function (Section 3.1, Eq. 1):
//!
//! ```text
//! r_t = (perf_e − perf_t) / perf_e
//! ```
//!
//! where `perf_t` is the measured execution time of the evaluated
//! configuration and `perf_e` is the *expected* performance — a target
//! execution time set as a speedup over the default configuration.

use serde::{Deserialize, Serialize};

/// Reward function parameterized by the expected performance `perf_e`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RewardFn {
    /// Target execution time `perf_e` in seconds.
    pub perf_e: f64,
}

/// The speedup over the default execution time used to set `perf_e`
/// ("according to the performance improvement achieved by prior studies").
pub const TARGET_SPEEDUP: f64 = 3.0;

impl RewardFn {
    /// Build from the default configuration's execution time using the
    /// paper's target-speedup convention.
    pub fn from_default_time(default_exec_s: f64) -> Self {
        assert!(default_exec_s > 0.0);
        Self {
            perf_e: default_exec_s / TARGET_SPEEDUP,
        }
    }

    /// Build with an explicit target time.
    pub fn with_target(perf_e: f64) -> Self {
        assert!(perf_e > 0.0);
        Self { perf_e }
    }

    /// Immediate reward for a measured execution time.
    pub fn reward(&self, exec_time_s: f64) -> f64 {
        (self.perf_e - exec_time_s) / self.perf_e
    }

    /// Inverse map: the execution time corresponding to a reward value
    /// (used to express the Twin-Q threshold in time units).
    pub fn exec_time_for_reward(&self, r: f64) -> f64 {
        self.perf_e * (1.0 - r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_is_zero_at_target() {
        let f = RewardFn::with_target(60.0);
        assert_eq!(f.reward(60.0), 0.0);
    }

    #[test]
    fn faster_than_target_is_positive_and_bounded_by_one() {
        let f = RewardFn::with_target(60.0);
        assert!(f.reward(30.0) > 0.0);
        assert!(f.reward(0.0) <= 1.0);
        assert_eq!(f.reward(0.0), 1.0);
    }

    #[test]
    fn slower_than_target_is_negative() {
        let f = RewardFn::with_target(60.0);
        assert!(f.reward(120.0) < 0.0);
        assert_eq!(f.reward(120.0), -1.0);
    }

    #[test]
    fn from_default_uses_target_speedup() {
        let f = RewardFn::from_default_time(240.0);
        assert_eq!(f.perf_e, 80.0);
        // The default configuration itself scores 1 − speedup target.
        assert_eq!(f.reward(240.0), 1.0 - TARGET_SPEEDUP);
    }

    #[test]
    fn exec_time_round_trips() {
        let f = RewardFn::with_target(80.0);
        for &t in &[20.0, 80.0, 400.0] {
            let r = f.reward(t);
            assert!((f.exec_time_for_reward(r) - t).abs() < 1e-9);
        }
    }
}
