//! Episodic RL view of the tuning problem: wraps a [`SparkEnv`] with the
//! paper's reward function and episode bookkeeping (a tuning session of a
//! few sequential configuration evaluations).

use crate::reward::RewardFn;
use spark_sim::{Cluster, FailureKind, InjectionSummary, RunMetrics, SparkEnv, Workload};

/// Result of one tuning step.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    pub next_state: Vec<f64>,
    pub reward: f64,
    pub done: bool,
    /// Measured execution time charged for this evaluation (seconds).
    pub exec_time_s: f64,
    pub failed: bool,
    /// Failure detail, when the evaluation failed. Transient environment
    /// faults ([`FailureKind::is_transient`]) are retry candidates;
    /// configuration-caused failures are not.
    pub failure: Option<FailureKind>,
    /// What the environment's fault plan injected into this evaluation.
    pub injected: InjectionSummary,
    /// Internal run metrics (used by OtterTune-style workload mapping).
    pub metrics: RunMetrics,
}

/// The tuning environment: a (cluster, workload) target plus reward
/// shaping and episode state.
#[derive(Clone, Debug)]
pub struct TuningEnv {
    env: SparkEnv,
    reward_fn: RewardFn,
    episode_len: usize,
    step_in_episode: usize,
    state: Vec<f64>,
}

impl TuningEnv {
    /// Build from a pre-constructed [`SparkEnv`]; `perf_e` derives from the
    /// measured default execution time (Eq. 1 of the paper).
    pub fn new(env: SparkEnv, episode_len: usize) -> Self {
        assert!(episode_len > 0);
        let reward_fn = RewardFn::from_default_time(env.default_exec_time());
        let state = env.idle_state();
        Self {
            env,
            reward_fn,
            episode_len,
            step_in_episode: 0,
            state,
        }
    }

    /// Convenience constructor from a cluster + workload.
    pub fn for_workload(cluster: Cluster, workload: Workload, seed: u64) -> Self {
        Self::new(SparkEnv::new(cluster, workload, seed), 5)
    }

    pub fn reward_fn(&self) -> RewardFn {
        self.reward_fn
    }

    pub fn spark(&self) -> &SparkEnv {
        &self.env
    }

    pub fn state_dim(&self) -> usize {
        self.env.state_dim()
    }

    pub fn action_dim(&self) -> usize {
        self.env.action_dim()
    }

    pub fn default_exec_time(&self) -> f64 {
        self.env.default_exec_time()
    }

    /// Total configuration evaluations performed (the costly operation).
    pub fn eval_count(&self) -> u64 {
        self.env.eval_count()
    }

    /// Current observed state.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Start a new episode; returns the initial (idle-cluster) state.
    pub fn reset(&mut self) -> Vec<f64> {
        self.step_in_episode = 0;
        self.state = self.env.idle_state();
        self.state.clone()
    }

    /// Evaluate the configuration encoded by `action` and advance the
    /// episode.
    pub fn step(&mut self, action: &[f64]) -> StepOutcome {
        // The costly operation the paper's cost model charges for; child
        // of `offline.step` / `online.step`, parent of `sim.engine_step`.
        let _span = telemetry::span!("env.eval");
        let result = self.env.evaluate_action(action);
        let reward = self.reward_fn.reward(result.exec_time_s);
        let next_state = self.env.observe(&result);
        self.step_in_episode += 1;
        let done = self.step_in_episode >= self.episode_len;
        self.state = next_state.clone();
        if done {
            self.step_in_episode = 0;
        }
        StepOutcome {
            next_state,
            reward,
            done,
            exec_time_s: result.exec_time_s,
            failed: result.failed,
            failure: result.failure,
            injected: result.injected,
            metrics: result.metrics,
        }
    }

    /// Mutable access to the wrapped [`SparkEnv`] (fault-plan
    /// installation, checkpoint restore).
    pub fn spark_mut(&mut self) -> &mut SparkEnv {
        &mut self.env
    }

    /// Episode position, for checkpointing.
    pub fn step_in_episode(&self) -> usize {
        self.step_in_episode
    }

    /// Restore episode state when resuming from a checkpoint: the
    /// current observed state vector and position within the episode.
    pub fn restore_episode(&mut self, state: Vec<f64>, step_in_episode: usize) {
        assert_eq!(state.len(), self.env.state_dim());
        self.state = state;
        self.step_in_episode = step_in_episode % self.episode_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{InputSize, WorkloadKind};

    fn env() -> TuningEnv {
        TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            1,
        )
    }

    #[test]
    fn reward_matches_formula() {
        let mut e = env();
        let a = vec![0.5; 32];
        let out = e.step(&a);
        let expect = e.reward_fn().reward(out.exec_time_s);
        assert_eq!(out.reward, expect);
    }

    #[test]
    fn episode_terminates_at_len() {
        let mut e = env();
        e.reset();
        let a = vec![0.5; 32];
        for i in 0..5 {
            let out = e.step(&a);
            assert_eq!(out.done, i == 4, "step {i}");
        }
        // Next episode starts fresh.
        let out = e.step(&a);
        assert!(!out.done);
    }

    #[test]
    fn default_action_scores_negative_reward() {
        // perf_e = default/4, so the default configuration itself must be
        // far below target.
        let mut e = env();
        let dflt = e
            .spark()
            .space()
            .normalize(&e.spark().space().default_config());
        let out = e.step(&dflt);
        assert!(out.reward < 0.0, "reward {}", out.reward);
    }

    #[test]
    fn reset_returns_idle_state() {
        let mut e = env();
        let s = e.reset();
        assert_eq!(s.len(), e.state_dim());
        assert!(s.iter().all(|&v| v < 0.01));
    }
}
