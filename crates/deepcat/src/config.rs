//! Agent hyper-parameters shared by the TD3 and DDPG implementations.

use serde::{Deserialize, Serialize};

/// Hyper-parameters for the actor-critic agents.
///
/// The defaults follow the TD3 reference implementation adapted to the
/// paper's setting: actions normalized to `[0,1]^32`, short tuning
/// episodes, and immediate rewards that directly score each configuration
/// (Section 3.1), which justifies a small discount factor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgentConfig {
    pub state_dim: usize,
    pub action_dim: usize,
    /// Hidden layer widths for actor and critics.
    pub hidden: Vec<usize>,
    pub actor_lr: f64,
    pub critic_lr: f64,
    /// Discount factor γ. The paper's reward is immediate and
    /// action-driven, so the effective horizon is short.
    pub gamma: f64,
    /// Polyak averaging rate τ for target networks.
    pub tau: f64,
    /// Std-dev of exploration noise added to actions during offline
    /// training.
    pub exploration_noise: f64,
    /// TD3 target-policy smoothing noise std-dev.
    pub policy_noise: f64,
    /// TD3 smoothing noise clip.
    pub noise_clip: f64,
    /// TD3 delayed policy update period `d`.
    pub policy_delay: u32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Environment steps taken uniformly at random before learning starts.
    pub warmup_steps: usize,
    /// Episode length during offline training (the paper fine-tunes with 5
    /// online steps; offline episodes use the same horizon).
    pub episode_len: usize,
    /// Rewards are clipped to `[-reward_clip, reward_clip]` to keep the
    /// OOM-penalty transitions from destabilizing the critics.
    pub reward_clip: f64,
}

impl AgentConfig {
    /// Defaults for the paper's 9-dim state / 32-dim action problem.
    pub fn for_dims(state_dim: usize, action_dim: usize) -> Self {
        Self {
            state_dim,
            action_dim,
            hidden: vec![64, 64],
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            gamma: 0.05,
            tau: 0.01,
            exploration_noise: 0.2,
            policy_noise: 0.1,
            noise_clip: 0.25,
            policy_delay: 2,
            batch_size: 64,
            warmup_steps: 256,
            episode_len: 5,
            reward_clip: 5.0,
        }
    }

    /// Clip a raw reward to the configured range.
    pub fn clip_reward(&self, r: f64) -> f64 {
        r.clamp(-self.reward_clip, self.reward_clip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AgentConfig::for_dims(9, 32);
        assert_eq!(c.state_dim, 9);
        assert_eq!(c.action_dim, 32);
        assert!(c.gamma > 0.0 && c.gamma < 1.0);
        assert!(c.tau > 0.0 && c.tau < 1.0);
        assert!(c.policy_delay >= 1);
    }

    #[test]
    fn reward_clip_is_symmetric() {
        let c = AgentConfig::for_dims(1, 1);
        assert_eq!(c.clip_reward(100.0), c.reward_clip);
        assert_eq!(c.clip_reward(-100.0), -c.reward_clip);
        assert_eq!(c.clip_reward(0.3), 0.3);
    }
}
