//! Storage abstraction for the durable commitlog (DESIGN.md §15).
//!
//! All commitlog I/O goes through the [`Storage`] trait so that every
//! durability claim can be *proven* under injected faults rather than
//! assumed. Three implementations:
//!
//! * [`RealStorage`] — thin wrapper over `std::fs` with explicit
//!   fsync / directory-sync operations.
//! * [`MemStorage`] — a `BTreeMap`-backed in-memory filesystem for fast
//!   property tests (thousands of cases without touching disk).
//! * [`FaultyStorage`] — wraps any inner storage and injects seeded,
//!   deterministic faults (torn writes, short writes, ENOSPC, fsync
//!   failure, bit-flips) according to a [`StoragePlan`], in the same
//!   spirit as `spark-sim/src/faults.rs` injects runtime faults.
//!
//! The fault schedule is keyed by a 1-based counter over *mutating write
//! operations* (record appends and snapshot writes). The counter lives in
//! the storage instance, which the fleet driver shares across simulated
//! process incarnations via [`SharedStorage`]; a crash fault therefore
//! fires exactly once and the recovered incarnation keeps writing through
//! the same (now quiet) device, modeling a persistent disk that survives
//! one power loss.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Error surface for storage operations. Injected faults are
/// distinguished from genuine I/O errors so the session driver can treat
/// a simulated crash as "the process died here" rather than as a bug.
#[derive(Debug)]
pub enum StorageError {
    /// A simulated crash: the process is considered dead at this point.
    /// Everything not yet durable may be lost.
    Crash {
        /// Stable label of the fault that fired (see [`StorageFault::label`]).
        fault: &'static str,
    },
    /// Simulated `ENOSPC`: the write did not (fully) land.
    NoSpace,
    /// A genuine I/O error from the underlying filesystem.
    Io(io::Error),
}

impl StorageError {
    /// True when the error models process death (crash or disk-full),
    /// i.e. the session should stop and later resume via recovery.
    pub fn is_simulated_death(&self) -> bool {
        matches!(self, StorageError::Crash { .. } | StorageError::NoSpace)
    }

    /// Convert into a plain `io::Error` for APIs that speak `io::Result`.
    pub fn into_io(self) -> io::Error {
        match self {
            StorageError::Crash { fault } => io::Error::new(
                io::ErrorKind::Interrupted,
                format!("simulated crash fault: {fault}"),
            ),
            StorageError::NoSpace => io::Error::new(io::ErrorKind::Other, "simulated ENOSPC"),
            StorageError::Io(e) => e,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Crash { fault } => write!(f, "simulated crash fault: {fault}"),
            StorageError::NoSpace => write!(f, "simulated ENOSPC"),
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Record of one injected fault, accumulated inside the storage shim and
/// drained by the commitlog with [`Storage::take_injected`] so telemetry
/// is emitted *after* the storage lock is released (see the
/// `concurrency.guard_across_emit` lint family).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedStorageFault {
    /// 1-based write-op index at which the fault fired.
    pub at_op: u64,
    /// Stable fault label (`torn_write`, `fsync_fail`, ...).
    pub label: &'static str,
    /// File the fault was applied to.
    pub file: String,
}

/// Minimal filesystem surface used by the commitlog. Implementations must
/// be deterministic given the same call sequence (`list` returns sorted
/// names) so recovery is reproducible.
pub trait Storage: Send + fmt::Debug {
    fn create_dir_all(&mut self, dir: &Path) -> Result<(), StorageError>;
    /// Sorted file names (not paths) directly under `dir`. A missing
    /// directory yields an empty list.
    fn list(&mut self, dir: &Path) -> Result<Vec<String>, StorageError>;
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StorageError>;
    /// Append `bytes` to `path`, creating the file if needed.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError>;
    /// Replace the full contents of `path` (creating it if needed).
    fn write_all(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError>;
    /// Flush file contents + metadata to stable storage.
    fn fsync(&mut self, path: &Path) -> Result<(), StorageError>;
    /// Flush directory entries (needed after rename/create for the new
    /// name itself to be durable).
    fn sync_dir(&mut self, dir: &Path) -> Result<(), StorageError>;
    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StorageError>;
    fn remove(&mut self, path: &Path) -> Result<(), StorageError>;
    /// Truncate `path` to `len` bytes (used by recovery to cut a torn
    /// tail, and by the fault shim to model lost unsynced writes).
    fn truncate(&mut self, path: &Path, len: u64) -> Result<(), StorageError>;
    /// Drain the list of faults injected since the last call. Default:
    /// none (real/in-memory storage never injects).
    fn take_injected(&mut self) -> Vec<InjectedStorageFault> {
        Vec::new()
    }
}

/// Shared handle to a storage backend. The fleet driver hands the *same*
/// handle to every incarnation of a session so the fault shim's write-op
/// counter survives simulated process death.
pub type SharedStorage = Arc<parking_lot::Mutex<Box<dyn Storage>>>;

/// Wrap a concrete storage in a [`SharedStorage`] handle.
pub fn shared_storage(storage: impl Storage + 'static) -> SharedStorage {
    let boxed: Box<dyn Storage> = Box::new(storage);
    Arc::new(parking_lot::Mutex::new(boxed))
}

// ---------------------------------------------------------------------------
// RealStorage
// ---------------------------------------------------------------------------

/// `std::fs`-backed storage with explicit fsync discipline.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealStorage;

impl RealStorage {
    pub fn new() -> Self {
        RealStorage
    }
}

impl Storage for RealStorage {
    fn create_dir_all(&mut self, dir: &Path) -> Result<(), StorageError> {
        fs::create_dir_all(dir)?;
        Ok(())
    }

    fn list(&mut self, dir: &Path) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StorageError> {
        Ok(fs::read(path)?)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        Ok(())
    }

    fn write_all(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        fs::write(path, bytes)?;
        Ok(())
    }

    fn fsync(&mut self, path: &Path) -> Result<(), StorageError> {
        let f = fs::File::open(path)?;
        f.sync_all()?;
        Ok(())
    }

    fn sync_dir(&mut self, dir: &Path) -> Result<(), StorageError> {
        // Opening a directory read-only and calling sync_all is the
        // portable-on-unix way to fsync directory entries.
        let f = fs::File::open(dir)?;
        f.sync_all()?;
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StorageError> {
        fs::rename(from, to)?;
        Ok(())
    }

    fn remove(&mut self, path: &Path) -> Result<(), StorageError> {
        fs::remove_file(path)?;
        Ok(())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> Result<(), StorageError> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemStorage
// ---------------------------------------------------------------------------

/// In-memory storage for property tests: a sorted map from absolute path
/// to file bytes. Deterministic listing comes for free from `BTreeMap`.
#[derive(Debug, Default)]
pub struct MemStorage {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct read access for tests (no fault accounting).
    pub fn file(&self, path: &Path) -> Option<&Vec<u8>> {
        self.files.get(path)
    }

    /// Direct mutable access for tests that corrupt bytes in place.
    pub fn file_mut(&mut self, path: &Path) -> Option<&mut Vec<u8>> {
        self.files.get_mut(path)
    }

    fn missing(path: &Path) -> StorageError {
        StorageError::Io(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no such file: {}", path.display()),
        ))
    }
}

impl Storage for MemStorage {
    fn create_dir_all(&mut self, dir: &Path) -> Result<(), StorageError> {
        self.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list(&mut self, dir: &Path) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        for path in self.files.keys() {
            if path.parent() == Some(dir) {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StorageError> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| Self::missing(path))
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        self.files
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn write_all(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        self.files.insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn fsync(&mut self, _path: &Path) -> Result<(), StorageError> {
        Ok(())
    }

    fn sync_dir(&mut self, _dir: &Path) -> Result<(), StorageError> {
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StorageError> {
        match self.files.remove(from) {
            Some(bytes) => {
                self.files.insert(to.to_path_buf(), bytes);
                Ok(())
            }
            None => Err(Self::missing(from)),
        }
    }

    fn remove(&mut self, path: &Path) -> Result<(), StorageError> {
        match self.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(Self::missing(path)),
        }
    }

    fn truncate(&mut self, path: &Path, len: u64) -> Result<(), StorageError> {
        match self.files.get_mut(path) {
            Some(bytes) => {
                bytes.truncate(len as usize);
                Ok(())
            }
            None => Err(Self::missing(path)),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// One storage fault, applied at a scheduled write op.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StorageFault {
    /// The process dies mid-write: only a prefix of the buffer lands,
    /// then the op fails with a crash.
    TornWrite {
        /// Fraction of the buffer that reaches the device (clamped 0..1).
        keep_fraction: f64,
    },
    /// The write syscall writes fewer bytes than asked and the device
    /// then reports full; the session dies with `NoSpace`.
    ShortWrite {
        /// Number of leading bytes that land before the device fills.
        keep_bytes: u64,
    },
    /// The device is full before any byte lands.
    Enospc,
    /// The write itself "succeeds" but the following fsync of that file
    /// fails and everything not yet synced is lost (truncated back to
    /// the last synced length), then the process dies.
    FsyncFail,
    /// Silent media corruption: one bit of the written buffer is flipped
    /// and the op reports success. Latent — pair with a later crash so
    /// recovery actually rescans the corrupt record.
    BitFlip {
        /// Byte offset into the written buffer (taken modulo its length).
        byte: u64,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
}

impl StorageFault {
    /// Stable label used in telemetry events and docs.
    pub fn label(&self) -> &'static str {
        match self {
            StorageFault::TornWrite { .. } => "torn_write",
            StorageFault::ShortWrite { .. } => "short_write",
            StorageFault::Enospc => "enospc",
            StorageFault::FsyncFail => "fsync_fail",
            StorageFault::BitFlip { .. } => "bit_flip",
        }
    }
}

/// A fault scheduled at a specific write op.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageFaultEvent {
    /// 1-based index over mutating write ops (appends + snapshot writes).
    pub at_op: u64,
    pub fault: StorageFault,
}

/// Deterministic storage-fault schedule, mirroring `spark-sim`'s
/// `FaultPlan` for runtime faults.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoragePlan {
    pub name: String,
    pub seed: u64,
    pub events: Vec<StorageFaultEvent>,
}

/// Names accepted by [`StoragePlan::named`].
pub const STORAGE_PLAN_NAMES: &[&str] = &["clean", "torn", "short", "enospc", "fsync", "bitflip"];

impl StoragePlan {
    /// No faults at all.
    pub fn clean() -> Self {
        StoragePlan {
            name: "clean".to_string(),
            seed: 0,
            events: Vec::new(),
        }
    }

    /// A canned single-fault plan by name, firing at write op `at_op`.
    /// Unknown names fall back to `clean`.
    pub fn named(name: &str, at_op: u64, seed: u64) -> Self {
        let events = match name {
            "torn" => vec![StorageFaultEvent {
                at_op,
                fault: StorageFault::TornWrite {
                    keep_fraction: 0.25 + (seed % 3) as f64 * 0.25,
                },
            }],
            "short" => vec![StorageFaultEvent {
                at_op,
                fault: StorageFault::ShortWrite {
                    keep_bytes: 1 + seed % 11,
                },
            }],
            "enospc" => vec![StorageFaultEvent {
                at_op,
                fault: StorageFault::Enospc,
            }],
            "fsync" => vec![StorageFaultEvent {
                at_op,
                fault: StorageFault::FsyncFail,
            }],
            // A bit flip alone is latent; pair it with a torn write on the
            // next op so recovery observes (and truncates at) the corrupt
            // record.
            "bitflip" => vec![
                StorageFaultEvent {
                    at_op,
                    fault: StorageFault::BitFlip {
                        byte: 16 + seed % 8,
                        bit: (seed % 8) as u8,
                    },
                },
                StorageFaultEvent {
                    at_op: at_op + 1,
                    fault: StorageFault::TornWrite { keep_fraction: 0.5 },
                },
            ],
            _ => Vec::new(),
        };
        let name = if events.is_empty() { "clean" } else { name };
        StoragePlan {
            name: name.to_string(),
            seed,
            events,
        }
    }

    /// A crash scheduled at write op `at_op`, with the fault flavor
    /// rotating deterministically by `seed`. Every flavor kills the
    /// process at (or one op after, for the latent bit-flip) `at_op`.
    pub fn kill_at(at_op: u64, seed: u64) -> Self {
        // PANIC-SAFETY: index is seed % len with a non-empty literal array.
        let flavor = ["torn", "short", "fsync", "bitflip", "torn"][(seed % 5) as usize];
        let mut plan = Self::named(flavor, at_op, seed);
        plan.name = format!("kill_at_{at_op}_{flavor}");
        plan
    }
}

// ---------------------------------------------------------------------------
// FaultyStorage
// ---------------------------------------------------------------------------

/// Storage wrapper that injects the faults of a [`StoragePlan`].
///
/// Bookkeeping: `lens` tracks the current byte length of every file
/// written through the shim and `synced` the length known to be durable;
/// `FsyncFail` rolls the file back to its synced length, which is exactly
/// the guarantee a real disk gives you when an fsync fails after a crash.
#[derive(Debug)]
pub struct FaultyStorage<S: Storage> {
    inner: S,
    plan: StoragePlan,
    ops: u64,
    lens: BTreeMap<PathBuf, u64>,
    synced: BTreeMap<PathBuf, u64>,
    /// Files whose next fsync must fail (armed by `FsyncFail`).
    fsync_poisoned: BTreeSet<PathBuf>,
    injected: Vec<InjectedStorageFault>,
}

impl<S: Storage> FaultyStorage<S> {
    pub fn new(inner: S, plan: StoragePlan) -> Self {
        FaultyStorage {
            inner,
            plan,
            ops: 0,
            lens: BTreeMap::new(),
            synced: BTreeMap::new(),
            fsync_poisoned: BTreeSet::new(),
            injected: Vec::new(),
        }
    }

    /// Number of mutating write ops seen so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn fault_at(&self, op: u64) -> Option<StorageFault> {
        self.plan
            .events
            .iter()
            .find(|e| e.at_op == op)
            .map(|e| e.fault.clone())
    }

    fn len_of(&mut self, path: &Path) -> Result<u64, StorageError> {
        if let Some(len) = self.lens.get(path) {
            return Ok(*len);
        }
        let len = match self.inner.read(path) {
            Ok(bytes) => bytes.len() as u64,
            Err(_) => 0,
        };
        self.lens.insert(path.to_path_buf(), len);
        self.synced.entry(path.to_path_buf()).or_insert(len);
        Ok(len)
    }

    fn record(&mut self, op: u64, label: &'static str, path: &Path) {
        self.injected.push(InjectedStorageFault {
            at_op: op,
            label,
            file: path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("?")
                .to_string(),
        });
    }

    /// Perform a (possibly faulted) write of `bytes`. `replace` selects
    /// `write_all` over `append` semantics on the inner storage.
    fn write_op(&mut self, path: &Path, bytes: &[u8], replace: bool) -> Result<(), StorageError> {
        self.ops += 1;
        let op = self.ops;
        let base = if replace {
            if let Err(e) = self.len_of(path) {
                return Err(e);
            }
            self.lens.insert(path.to_path_buf(), 0);
            // Rewrites start from scratch: nothing of the new content is
            // synced yet.
            self.synced.insert(path.to_path_buf(), 0);
            if self.inner.read(path).is_ok() {
                self.inner.truncate(path, 0)?;
            }
            0
        } else {
            self.len_of(path)?
        };
        let fault = self.fault_at(op);
        match fault {
            None => {
                self.inner.append(path, bytes)?;
                self.lens
                    .insert(path.to_path_buf(), base + bytes.len() as u64);
                Ok(())
            }
            Some(StorageFault::TornWrite { keep_fraction }) => {
                let frac = keep_fraction.clamp(0.0, 1.0);
                let keep = ((bytes.len() as f64) * frac) as usize;
                let keep = keep.min(bytes.len());
                if keep > 0 {
                    // PANIC-SAFETY: keep is clamped to bytes.len() above.
                    self.inner.append(path, &bytes[..keep])?;
                }
                self.lens.insert(path.to_path_buf(), base + keep as u64);
                self.record(op, "torn_write", path);
                Err(StorageError::Crash {
                    fault: "torn_write",
                })
            }
            Some(StorageFault::ShortWrite { keep_bytes }) => {
                let keep = (keep_bytes as usize).min(bytes.len());
                if keep > 0 {
                    // PANIC-SAFETY: keep is clamped to bytes.len() above.
                    self.inner.append(path, &bytes[..keep])?;
                }
                self.lens.insert(path.to_path_buf(), base + keep as u64);
                self.record(op, "short_write", path);
                Err(StorageError::NoSpace)
            }
            Some(StorageFault::Enospc) => {
                self.record(op, "enospc", path);
                Err(StorageError::NoSpace)
            }
            Some(StorageFault::FsyncFail) => {
                // The write itself lands; the *next* fsync of this file
                // fails and rolls back to the synced length.
                self.inner.append(path, bytes)?;
                self.lens
                    .insert(path.to_path_buf(), base + bytes.len() as u64);
                self.fsync_poisoned.insert(path.to_path_buf());
                Ok(())
            }
            Some(StorageFault::BitFlip { byte, bit }) => {
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let idx = (byte % corrupted.len() as u64) as usize;
                    // PANIC-SAFETY: idx is reduced modulo the non-empty
                    // buffer length.
                    corrupted[idx] ^= 1u8 << (bit % 8);
                }
                self.inner.append(path, &corrupted)?;
                self.lens
                    .insert(path.to_path_buf(), base + corrupted.len() as u64);
                self.record(op, "bit_flip", path);
                Ok(())
            }
        }
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn create_dir_all(&mut self, dir: &Path) -> Result<(), StorageError> {
        self.inner.create_dir_all(dir)
    }

    fn list(&mut self, dir: &Path) -> Result<Vec<String>, StorageError> {
        self.inner.list(dir)
    }

    fn read(&mut self, path: &Path) -> Result<Vec<u8>, StorageError> {
        self.inner.read(path)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        self.write_op(path, bytes, false)
    }

    fn write_all(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        self.write_op(path, bytes, true)
    }

    fn fsync(&mut self, path: &Path) -> Result<(), StorageError> {
        if self.fsync_poisoned.remove(path) {
            let synced = self.synced.get(path).copied().unwrap_or(0);
            // Unsynced bytes are lost: roll the file back to its durable
            // prefix, exactly as a crash after a failed fsync would.
            self.inner.truncate(path, synced)?;
            self.lens.insert(path.to_path_buf(), synced);
            let op = self.ops;
            self.record(op, "fsync_fail", path);
            return Err(StorageError::Crash {
                fault: "fsync_fail",
            });
        }
        self.inner.fsync(path)?;
        let len = self.len_of(path)?;
        self.synced.insert(path.to_path_buf(), len);
        Ok(())
    }

    fn sync_dir(&mut self, dir: &Path) -> Result<(), StorageError> {
        self.inner.sync_dir(dir)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StorageError> {
        self.inner.rename(from, to)?;
        if let Some(len) = self.lens.remove(from) {
            self.lens.insert(to.to_path_buf(), len);
        }
        if let Some(len) = self.synced.remove(from) {
            self.synced.insert(to.to_path_buf(), len);
        }
        if self.fsync_poisoned.remove(from) {
            self.fsync_poisoned.insert(to.to_path_buf());
        }
        Ok(())
    }

    fn remove(&mut self, path: &Path) -> Result<(), StorageError> {
        self.inner.remove(path)?;
        self.lens.remove(path);
        self.synced.remove(path);
        self.fsync_poisoned.remove(path);
        Ok(())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> Result<(), StorageError> {
        self.inner.truncate(path, len)?;
        self.lens.insert(path.to_path_buf(), len);
        if let Some(s) = self.synced.get_mut(path) {
            if *s > len {
                *s = len;
            }
        }
        Ok(())
    }

    fn take_injected(&mut self) -> Vec<InjectedStorageFault> {
        std::mem::take(&mut self.injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn mem_storage_round_trip() {
        let mut s = MemStorage::new();
        s.create_dir_all(&p("/log")).expect("mkdir");
        s.append(&p("/log/a"), b"hello ").expect("append");
        s.append(&p("/log/a"), b"world").expect("append");
        assert_eq!(s.read(&p("/log/a")).expect("read"), b"hello world");
        s.write_all(&p("/log/b"), b"x").expect("write");
        assert_eq!(s.list(&p("/log")).expect("list"), vec!["a", "b"]);
        s.rename(&p("/log/b"), &p("/log/c")).expect("rename");
        s.truncate(&p("/log/a"), 5).expect("truncate");
        assert_eq!(s.read(&p("/log/a")).expect("read"), b"hello");
        s.remove(&p("/log/c")).expect("remove");
        assert_eq!(s.list(&p("/log")).expect("list"), vec!["a"]);
    }

    #[test]
    fn torn_write_keeps_prefix_and_crashes() {
        let plan = StoragePlan {
            name: "t".into(),
            seed: 0,
            events: vec![StorageFaultEvent {
                at_op: 2,
                fault: StorageFault::TornWrite { keep_fraction: 0.5 },
            }],
        };
        let mut s = FaultyStorage::new(MemStorage::new(), plan);
        s.append(&p("/f"), b"aaaa").expect("clean append");
        let err = s.append(&p("/f"), b"bbbb").expect_err("must crash");
        assert!(err.is_simulated_death());
        assert_eq!(s.read(&p("/f")).expect("read"), b"aaaabb");
        // The device survives the crash: later ops succeed.
        s.append(&p("/f"), b"cc").expect("post-crash append");
        assert_eq!(s.read(&p("/f")).expect("read"), b"aaaabbcc");
        let injected = s.take_injected();
        assert_eq!(injected.len(), 1);
        assert_eq!(injected.first().map(|f| f.label), Some("torn_write"));
        assert!(s.take_injected().is_empty());
    }

    #[test]
    fn fsync_fail_rolls_back_to_synced_length() {
        let plan = StoragePlan {
            name: "f".into(),
            seed: 0,
            events: vec![StorageFaultEvent {
                at_op: 2,
                fault: StorageFault::FsyncFail,
            }],
        };
        let mut s = FaultyStorage::new(MemStorage::new(), plan);
        s.append(&p("/f"), b"durable|").expect("append");
        s.fsync(&p("/f")).expect("fsync");
        s.append(&p("/f"), b"lost")
            .expect("poisoned append succeeds");
        let err = s.fsync(&p("/f")).expect_err("fsync must fail");
        assert!(err.is_simulated_death());
        assert_eq!(s.read(&p("/f")).expect("read"), b"durable|");
    }

    #[test]
    fn bit_flip_corrupts_silently() {
        let plan = StoragePlan {
            name: "b".into(),
            seed: 0,
            events: vec![StorageFaultEvent {
                at_op: 1,
                fault: StorageFault::BitFlip { byte: 1, bit: 0 },
            }],
        };
        let mut s = FaultyStorage::new(MemStorage::new(), plan);
        s.append(&p("/f"), &[0u8, 0, 0]).expect("append succeeds");
        assert_eq!(s.read(&p("/f")).expect("read"), vec![0u8, 1, 0]);
    }

    #[test]
    fn enospc_writes_nothing() {
        let plan = StoragePlan::named("enospc", 1, 7);
        let mut s = FaultyStorage::new(MemStorage::new(), plan);
        let err = s.append(&p("/f"), b"xx").expect_err("enospc");
        assert!(matches!(err, StorageError::NoSpace));
        assert!(s.read(&p("/f")).is_err());
    }

    #[test]
    fn kill_at_plans_always_crash() {
        for seed in 0..10u64 {
            let plan = StoragePlan::kill_at(3, seed);
            assert!(!plan.events.is_empty(), "plan {} has no events", plan.name);
            let crashes = plan.events.iter().any(|e| {
                matches!(
                    e.fault,
                    StorageFault::TornWrite { .. }
                        | StorageFault::ShortWrite { .. }
                        | StorageFault::Enospc
                        | StorageFault::FsyncFail
                )
            });
            assert!(crashes, "plan {} never kills the process", plan.name);
        }
    }
}
