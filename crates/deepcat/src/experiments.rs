//! Drivers that regenerate every table and figure of the paper's
//! evaluation (Section 5). Each function returns serializable rows; the
//! bench targets in the `bench` crate print them as the tables/series the
//! paper reports.

use crate::config::AgentConfig;
use crate::envwrap::TuningEnv;
use crate::offline::{train_ddpg, train_td3, OfflineConfig};
use crate::online::{online_tune_ddpg, online_tune_td3, OnlineConfig, TuningReport};
use crate::tuners::{build_repository, OtterTune, RandomSearch, Tuner};
use crate::twinq::TwinQOptimizer;
use serde::Serialize;
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

/// Shared experiment scale parameters. The paper trains for 3–4 days on a
/// physical cluster; against the simulator the same protocol runs in
/// seconds, so the defaults here are sized for laptop regeneration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Offline training iterations for the DRL tuners.
    pub offline_iterations: usize,
    /// Online tuning steps per request (the paper fixes 5).
    pub online_steps: usize,
    /// Random samples per repository workload for OtterTune.
    pub repo_samples: usize,
    /// Base seed; every sub-experiment derives its own.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            offline_iterations: 1500,
            online_steps: 5,
            repo_samples: 120,
            seed: 2022,
        }
    }
}

impl ExperimentConfig {
    /// A faster profile for tests.
    pub fn quick() -> Self {
        Self {
            offline_iterations: 700,
            online_steps: 5,
            repo_samples: 60,
            seed: 2022,
        }
    }
}

/// Run `f` over `items` on up to `available_parallelism` worker threads,
/// preserving order. Uses crossbeam scoped threads with a shared atomic
/// work queue (no unsafe, no external thread pool).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let slots: Vec<parking_lot::Mutex<Option<R>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let inputs: Vec<parking_lot::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| parking_lot::Mutex::new(Some(t)))
        .collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // PANIC-SAFETY: the atomic counter hands each index to
                // exactly one worker.
                let item = inputs[i].lock().take().expect("each index taken once");
                *slots[i].lock() = Some(f(item));
            });
        }
    })
    // PANIC-SAFETY: propagating a worker panic is the intended failure
    // mode of the experiment harness.
    .expect("worker panicked");
    slots
        .into_iter()
        // PANIC-SAFETY: the loop above exits only after every index was
        // claimed and its slot written.
        .map(|s| s.into_inner().expect("all slots filled"))
        .collect()
}

fn agent_cfg(env: &TuningEnv) -> AgentConfig {
    AgentConfig::for_dims(env.state_dim(), env.action_dim())
}

/// Offline-environment seed for a workload (the "standard environment").
fn offline_seed(base: u64, w: Workload) -> u64 {
    base ^ (w.kind as u64) << 4 ^ (w.input as u64) << 12
}

/// Online-environment seed (the "real user environment": same workload,
/// fresh run-to-run noise).
fn online_seed(base: u64, w: Workload) -> u64 {
    offline_seed(base, w) ^ 0x00FF_1234
}

/// Background load of the live cluster during online tuning. The offline
/// "standard environment" is idle; the real user environment runs alongside
/// other services, displacing the optimum — this is exactly the
/// environment gap the paper's online fine-tuning stage exists to close.
pub const ONLINE_BACKGROUND_LOAD: f64 = 0.15;

/// The live ("real user") environment for online tuning.
fn online_env(cluster: &Cluster, w: Workload, seed: u64) -> TuningEnv {
    TuningEnv::for_workload(
        cluster.with_background_load(ONLINE_BACKGROUND_LOAD),
        w,
        seed,
    )
}

// --------------------------------------------------------------------------
// Tables 1 & 2
// --------------------------------------------------------------------------

/// Table 1 row: workload characteristics.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    pub workload: String,
    pub category: String,
    pub inputs: Vec<String>,
    pub input_bytes: Vec<u64>,
}

/// Regenerate Table 1.
pub fn table1() -> Vec<Table1Row> {
    WorkloadKind::all()
        .into_iter()
        .map(|kind| Table1Row {
            workload: format!("{kind:?}"),
            category: kind.category().to_string(),
            inputs: InputSize::all()
                .into_iter()
                .map(|i| Workload::new(kind, i).input_description())
                .collect(),
            input_bytes: InputSize::all()
                .into_iter()
                .map(|i| Workload::new(kind, i).input_bytes())
                .collect(),
        })
        .collect()
}

/// Table 2 row: tuned parameters per pipeline component.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Row {
    pub component: String,
    pub parameters: usize,
}

/// Regenerate Table 2.
pub fn table2() -> Vec<Table2Row> {
    use spark_sim::{Component, KnobSpace};
    let space = KnobSpace::pipeline();
    [Component::Spark, Component::Yarn, Component::Hdfs]
        .into_iter()
        .map(|c| Table2Row {
            component: format!("{c:?}"),
            parameters: space.count_by_component(c),
        })
        .collect()
}

// --------------------------------------------------------------------------
// Figure 2 — CDF of random configurations
// --------------------------------------------------------------------------

/// One CDF point of Fig. 2.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2Row {
    /// Relative performance to the found-optimal configuration
    /// (`best_time / time`; 1.0 = optimal).
    pub relative_performance: f64,
    pub cumulative_probability: f64,
}

/// Summary of the Fig. 2 experiment.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2Result {
    pub rows: Vec<Fig2Row>,
    pub default_exec_s: f64,
    pub best_exec_s: f64,
    pub frac_better_than_default: f64,
    pub frac_within_10pct_of_best: f64,
}

/// Fig. 2: evaluate 200 random configurations for TeraSort-D1 and report
/// their CDF relative to the optimum found by a larger random search.
pub fn fig2(cfg: &ExperimentConfig) -> Fig2Result {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
    // "Found optimal": a larger random search, like the paper's reference.
    let (_, best) = RandomSearch::new(cfg.seed).search(&mut env, 600);
    let default_exec_s = env.default_exec_time();
    let mut times = Vec::with_capacity(200);
    let mut rng_env = TuningEnv::for_workload(Cluster::cluster_a(), w, online_seed(cfg.seed, w));
    let mut rs = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed ^ 0xF16_2);
    for _ in 0..200 {
        let a = rng_env.spark().space().random_action(&mut rs);
        let out = rng_env.step(&a);
        times.push(out.exec_time_s);
    }
    let mut rel: Vec<f64> = times.iter().map(|t| best / t).collect();
    rel.sort_by(|a, b| a.total_cmp(b));
    let n = rel.len();
    let rows = rel
        .iter()
        .enumerate()
        .map(|(i, &r)| Fig2Row {
            relative_performance: r,
            cumulative_probability: (i + 1) as f64 / n as f64,
        })
        .collect();
    Fig2Result {
        rows,
        default_exec_s,
        best_exec_s: best,
        frac_better_than_default: times.iter().filter(|&&t| t < default_exec_s).count() as f64
            / n as f64,
        frac_within_10pct_of_best: times.iter().filter(|&&t| t <= best * 1.1).count() as f64
            / n as f64,
    }
}

// --------------------------------------------------------------------------
// Figure 3 — twin-Q trend vs real reward
// --------------------------------------------------------------------------

/// One Fig. 3 sample.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Row {
    pub iteration: usize,
    pub reward_smoothed: f64,
    pub min_q_smoothed: f64,
}

/// Fig. 3: during offline training, the smaller twin-Q tracks the real
/// reward trend.
pub fn fig3(cfg: &ExperimentConfig) -> Vec<Fig3Row> {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
    let ac = agent_cfg(&env);
    let off = OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed);
    let (_, log, _) = train_td3(&mut env, ac, &off, &[]);
    let rewards = log.smoothed_rewards(12);
    let qs = log.smoothed_min_q(12);
    rewards
        .into_iter()
        .zip(qs)
        .map(|((iter, r), (_, q))| Fig3Row {
            iteration: iter,
            reward_smoothed: r,
            min_q_smoothed: q,
        })
        .collect()
}

// --------------------------------------------------------------------------
// Figure 4 — RDPER ablation over offline iterations
// --------------------------------------------------------------------------

/// One Fig. 4 point: best online execution time from models trained for
/// `iterations` offline steps.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Row {
    pub iterations: usize,
    pub td3_best_s: f64,
    pub td3_rdper_best_s: f64,
}

/// Fig. 4: TD3 with conventional replay vs TD3 with RDPER, evaluated by 5
/// online tuning steps from snapshots at increasing offline budgets.
pub fn fig4(cfg: &ExperimentConfig, checkpoints: &[usize]) -> Vec<Fig4Row> {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    // Train long enough to reach the last checkpoint.
    let iters = checkpoints
        .iter()
        .copied()
        .max()
        .unwrap_or(cfg.offline_iterations);
    let variants = [
        OfflineConfig::td3_uniform(iters, cfg.seed),
        OfflineConfig::deepcat(iters, cfg.seed),
    ];
    let results: Vec<Vec<f64>> = par_map(variants.to_vec(), |off| {
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
        let ac = agent_cfg(&env);
        let (_, _, snaps) = train_td3(&mut env, ac, &off, checkpoints);
        snaps
            .into_iter()
            .map(|(i, agent)| {
                // Plain online tuning for both arms — isolates the replay
                // mechanism (the paper's Fig. 4 protocol). Averaged over a
                // few online sessions to tame 5-step session noise.
                (0..SWEEP_SEEDS)
                    .map(|session| {
                        let mut a = agent.clone();
                        let mut online_env = online_env(
                            &Cluster::cluster_a(),
                            w,
                            online_seed(cfg.seed, w) ^ i as u64 ^ (session << 32),
                        );
                        let oc = OnlineConfig {
                            steps: cfg.online_steps,
                            seed: cfg.seed ^ session,
                            ..OnlineConfig::without_twinq(cfg.seed)
                        };
                        online_tune_td3(&mut a, &mut online_env, &oc, "TD3").best_exec_time_s
                    })
                    .sum::<f64>()
                    / SWEEP_SEEDS as f64
            })
            .collect()
    });
    checkpoints
        .iter()
        .enumerate()
        .map(|(k, &iters)| Fig4Row {
            iterations: iters,
            td3_best_s: results[0][k],
            td3_rdper_best_s: results[1][k],
        })
        .collect()
}

// --------------------------------------------------------------------------
// Figure 5 — Twin-Q Optimizer ablation
// --------------------------------------------------------------------------

/// Fig. 5 result: per-step execution times with and without the Twin-Q
/// Optimizer, from the same offline model.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Result {
    pub with_twinq_step_s: Vec<f64>,
    pub without_twinq_step_s: Vec<f64>,
    pub with_total_s: f64,
    pub without_total_s: f64,
    pub with_best_s: f64,
    pub without_best_s: f64,
}

/// Number of online sessions averaged in the ablation and sweep figures.
/// A single 5-step session is noisy; the paper's physical-cluster runs are
/// smoothed by averaging repeated executions, and we do the analogue here.
pub const SWEEP_SEEDS: u64 = 4;

/// Fig. 5: run 5 online steps with and without the Twin-Q Optimizer from
/// the same offline model, averaged over [`SWEEP_SEEDS`] online sessions.
pub fn fig5(cfg: &ExperimentConfig) -> Fig5Result {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
    let ac = agent_cfg(&env);
    let off = OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed);
    let (agent, _, _) = train_td3(&mut env, ac, &off, &[]);
    let run = |use_twinq: bool, session: u64| {
        let mut a = agent.clone();
        let mut online_env = online_env(
            &Cluster::cluster_a(),
            w,
            online_seed(cfg.seed, w) ^ (session << 24),
        );
        let oc = OnlineConfig {
            steps: cfg.online_steps,
            use_twinq,
            seed: cfg.seed ^ session,
            ..OnlineConfig::deepcat(cfg.seed)
        };
        online_tune_td3(&mut a, &mut online_env, &oc, "DeepCAT")
    };
    let n = SWEEP_SEEDS as f64;
    let mut out = Fig5Result {
        with_twinq_step_s: vec![0.0; cfg.online_steps],
        without_twinq_step_s: vec![0.0; cfg.online_steps],
        with_total_s: 0.0,
        without_total_s: 0.0,
        with_best_s: 0.0,
        without_best_s: 0.0,
    };
    for session in 0..SWEEP_SEEDS {
        let with = run(true, session);
        let without = run(false, session);
        for (acc, s) in out.with_twinq_step_s.iter_mut().zip(&with.steps) {
            *acc += s.exec_time_s / n;
        }
        for (acc, s) in out.without_twinq_step_s.iter_mut().zip(&without.steps) {
            *acc += s.exec_time_s / n;
        }
        out.with_total_s += with.total_eval_s / n;
        out.without_total_s += without.total_eval_s / n;
        out.with_best_s += with.best_exec_time_s / n;
        out.without_best_s += without.best_exec_time_s / n;
    }
    out
}

// --------------------------------------------------------------------------
// Figures 6–8 — main comparison across the 12 workload-input pairs
// --------------------------------------------------------------------------

/// Per-(workload, tuner) outcome of the main comparison.
#[derive(Clone, Debug, Serialize)]
pub struct ComparisonRow {
    pub workload: String,
    pub tuner: String,
    pub default_s: f64,
    pub best_s: f64,
    pub speedup: f64,
    pub total_eval_s: f64,
    pub total_rec_s: f64,
    pub best_so_far_s: Vec<f64>,
    pub accumulated_cost_s: Vec<f64>,
}

impl ComparisonRow {
    fn from_report(r: &TuningReport) -> Self {
        ComparisonRow {
            workload: r.workload.clone(),
            tuner: r.tuner.clone(),
            default_s: r.default_exec_time_s,
            best_s: r.best_exec_time_s,
            speedup: r.speedup(),
            total_eval_s: r.total_eval_s,
            total_rec_s: r.total_rec_s,
            best_so_far_s: r.best_so_far(),
            accumulated_cost_s: r.accumulated_cost(),
        }
    }
}

/// Run DeepCAT / CDBTune / OtterTune on one workload-input pair.
pub fn compare_on(w: Workload, cluster: &Cluster, cfg: &ExperimentConfig) -> Vec<ComparisonRow> {
    let seed = cfg.seed;
    // --- DeepCAT ---
    let deepcat_report = {
        let mut env = TuningEnv::for_workload(cluster.clone(), w, offline_seed(seed, w));
        let ac = agent_cfg(&env);
        let off = OfflineConfig::deepcat(cfg.offline_iterations, seed);
        let (mut agent, _, _) = train_td3(&mut env, ac, &off, &[]);
        let mut online_env = online_env(cluster, w, online_seed(seed, w));
        let oc = OnlineConfig {
            steps: cfg.online_steps,
            ..OnlineConfig::deepcat(seed)
        };
        online_tune_td3(&mut agent, &mut online_env, &oc, "DeepCAT")
    };
    // --- CDBTune ---
    let cdbtune_report = {
        let mut env = TuningEnv::for_workload(cluster.clone(), w, offline_seed(seed, w));
        let ac = agent_cfg(&env);
        let off = OfflineConfig::cdbtune(cfg.offline_iterations, seed);
        let (mut agent, _) = train_ddpg(&mut env, ac, &off);
        let mut online_env = online_env(cluster, w, online_seed(seed, w));
        let oc = OnlineConfig {
            steps: cfg.online_steps,
            ..OnlineConfig::without_twinq(seed)
        };
        online_tune_ddpg(&mut agent, &mut online_env, &oc, "CDBTune")
    };
    // --- OtterTune --- (repository holds *other* workloads; the target is
    // a new workload it must map, as in the paper's setting)
    let ottertune_report = {
        let repo_workloads: Vec<Workload> = Workload::all_pairs()
            .into_iter()
            .filter(|x| *x != w)
            .collect();
        let repo = build_repository(cluster, &repo_workloads, cfg.repo_samples, seed);
        let mut tuner = OtterTune::with_repository(repo, seed);
        let mut online_env = online_env(cluster, w, online_seed(seed, w));
        let mut offline_env = TuningEnv::for_workload(cluster.clone(), w, offline_seed(seed, w));
        tuner.offline_train(&mut offline_env);
        tuner.online_tune(&mut online_env, cfg.online_steps)
    };
    vec![
        ComparisonRow::from_report(&deepcat_report),
        ComparisonRow::from_report(&cdbtune_report),
        ComparisonRow::from_report(&ottertune_report),
    ]
}

/// Figs. 6–8: the full 12-pair × 3-tuner comparison, parallel over pairs.
pub fn comparison(cfg: &ExperimentConfig) -> Vec<ComparisonRow> {
    let cluster = Cluster::cluster_a();
    par_map(Workload::all_pairs(), |w| compare_on(w, &cluster, cfg))
        .into_iter()
        .flatten()
        .collect()
}

/// Mean speedup per tuner over a set of comparison rows.
pub fn mean_speedups(rows: &[ComparisonRow]) -> Vec<(String, f64)> {
    let mut by_tuner: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();
    for r in rows {
        let e = by_tuner.entry(&r.tuner).or_default();
        e.0 += r.speedup;
        e.1 += 1;
    }
    by_tuner
        .into_iter()
        .map(|(k, (s, n))| (k.to_string(), s / n as f64))
        .collect()
}

// --------------------------------------------------------------------------
// Figure 9 — workload adaptability
// --------------------------------------------------------------------------

/// One Fig. 9 bar.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9Row {
    /// e.g. "M_TS→PR" for a DeepCAT model trained on TeraSort tuning
    /// PageRank, or a baseline name.
    pub model: String,
    pub best_s: f64,
    pub total_cost_s: f64,
}

/// Average (best execution time, total cost) of a TD3 agent's online
/// sessions over [`SWEEP_SEEDS`] live-environment seeds.
fn averaged_sessions_td3(
    agent: &crate::td3::Td3Agent,
    live_cluster: &Cluster,
    w: Workload,
    cfg: &ExperimentConfig,
) -> (f64, f64) {
    let n = SWEEP_SEEDS as f64;
    let (mut best, mut cost) = (0.0, 0.0);
    for session in 0..SWEEP_SEEDS {
        let mut a = agent.clone();
        let mut env = TuningEnv::for_workload(
            live_cluster.clone(),
            w,
            online_seed(cfg.seed, w) ^ (session << 24),
        );
        let oc = OnlineConfig {
            steps: cfg.online_steps,
            seed: cfg.seed ^ session,
            ..OnlineConfig::deepcat(cfg.seed)
        };
        let r = online_tune_td3(&mut a, &mut env, &oc, "DeepCAT");
        best += r.best_exec_time_s / n;
        cost += r.total_cost_s() / n;
    }
    (best, cost)
}

/// As [`averaged_sessions_td3`], for a DDPG agent (CDBTune, no Twin-Q).
fn averaged_sessions_ddpg(
    agent: &crate::ddpg::DdpgAgent,
    live_cluster: &Cluster,
    w: Workload,
    cfg: &ExperimentConfig,
) -> (f64, f64) {
    let n = SWEEP_SEEDS as f64;
    let (mut best, mut cost) = (0.0, 0.0);
    for session in 0..SWEEP_SEEDS {
        let mut a = agent.clone();
        let mut env = TuningEnv::for_workload(
            live_cluster.clone(),
            w,
            online_seed(cfg.seed, w) ^ (session << 24),
        );
        let oc = OnlineConfig {
            steps: cfg.online_steps,
            seed: cfg.seed ^ session,
            ..OnlineConfig::without_twinq(cfg.seed)
        };
        let r = online_tune_ddpg(&mut a, &mut env, &oc, "CDBTune");
        best += r.best_exec_time_s / n;
        cost += r.total_cost_s() / n;
    }
    (best, cost)
}

/// As [`averaged_sessions_td3`], for an OtterTune tuner (reseeded per
/// session so its EI search varies).
fn averaged_sessions_ottertune(
    repo: &surrogate::Repository,
    live_cluster: &Cluster,
    w: Workload,
    cfg: &ExperimentConfig,
) -> (f64, f64) {
    let n = SWEEP_SEEDS as f64;
    let (mut best, mut cost) = (0.0, 0.0);
    for session in 0..SWEEP_SEEDS {
        let mut tuner = OtterTune::with_repository(repo.clone(), cfg.seed ^ session);
        let mut offline_env =
            TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
        tuner.offline_train(&mut offline_env);
        let mut env = TuningEnv::for_workload(
            live_cluster.clone(),
            w,
            online_seed(cfg.seed, w) ^ (session << 24),
        );
        let r = tuner.online_tune(&mut env, cfg.online_steps);
        best += r.best_exec_time_s / n;
        cost += r.total_cost_s() / n;
    }
    (best, cost)
}

/// Fig. 9: DeepCAT models trained on each workload tune PageRank-D1;
/// CDBTune and OtterTune are trained for PageRank directly.
pub fn fig9(cfg: &ExperimentConfig) -> Vec<Fig9Row> {
    let target = Workload::new(WorkloadKind::PageRank, InputSize::D1);
    let cluster = Cluster::cluster_a();
    let live = cluster.with_background_load(ONLINE_BACKGROUND_LOAD);
    let sources = [
        WorkloadKind::PageRank,
        WorkloadKind::WordCount,
        WorkloadKind::TeraSort,
        WorkloadKind::KMeans,
    ];
    let mut rows: Vec<Fig9Row> = par_map(sources.to_vec(), |src| {
        let train_w = Workload::new(src, InputSize::D1);
        let mut env =
            TuningEnv::for_workload(cluster.clone(), train_w, offline_seed(cfg.seed, train_w));
        let ac = agent_cfg(&env);
        let off = OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed);
        let (agent, _, _) = train_td3(&mut env, ac, &off, &[]);
        let (best_s, total_cost_s) = averaged_sessions_td3(&agent, &live, target, cfg);
        Fig9Row {
            model: format!("M_{}→PR", train_w.kind),
            best_s,
            total_cost_s,
        }
    });
    // Baselines trained on the target itself, averaged the same way.
    {
        let mut env =
            TuningEnv::for_workload(cluster.clone(), target, offline_seed(cfg.seed, target));
        let ac = agent_cfg(&env);
        let off = OfflineConfig::cdbtune(cfg.offline_iterations, cfg.seed);
        let (agent, _) = train_ddpg(&mut env, ac, &off);
        let (best_s, total_cost_s) = averaged_sessions_ddpg(&agent, &live, target, cfg);
        rows.push(Fig9Row {
            model: "CDBTune".into(),
            best_s,
            total_cost_s,
        });
    }
    {
        let repo_workloads: Vec<Workload> = Workload::all_pairs()
            .into_iter()
            .filter(|x| *x != target)
            .collect();
        let repo = build_repository(&cluster, &repo_workloads, cfg.repo_samples, cfg.seed);
        let (best_s, total_cost_s) = averaged_sessions_ottertune(&repo, &live, target, cfg);
        rows.push(Fig9Row {
            model: "OtterTune".into(),
            best_s,
            total_cost_s,
        });
    }
    rows
}

// --------------------------------------------------------------------------
// Figure 10 — hardware adaptability
// --------------------------------------------------------------------------

/// One Fig. 10 bar: a tuner trained on Cluster-A tuning on Cluster-B.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Row {
    pub workload: String,
    pub tuner: String,
    pub speedup_over_default_b: f64,
    pub total_cost_s: f64,
}

/// Fig. 10: offline models from Cluster-A applied to Cluster-B for
/// WordCount-D1 and PageRank-D1.
pub fn fig10(cfg: &ExperimentConfig) -> Vec<Fig10Row> {
    let targets = [
        Workload::new(WorkloadKind::WordCount, InputSize::D1),
        Workload::new(WorkloadKind::PageRank, InputSize::D1),
    ];
    par_map(targets.to_vec(), |w| {
        let cluster_a = Cluster::cluster_a();
        // The live target is Cluster-B itself (the hardware change *is*
        // the environment shift under study).
        let cluster_b = Cluster::cluster_b();
        let default_b = TuningEnv::for_workload(cluster_b.clone(), w, online_seed(cfg.seed, w))
            .default_exec_time();
        let mut rows = Vec::with_capacity(3);
        // DeepCAT.
        {
            let mut env = TuningEnv::for_workload(cluster_a.clone(), w, offline_seed(cfg.seed, w));
            let ac = agent_cfg(&env);
            let off = OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed);
            let (agent, _, _) = train_td3(&mut env, ac, &off, &[]);
            let (best_s, total_cost_s) = averaged_sessions_td3(&agent, &cluster_b, w, cfg);
            rows.push(Fig10Row {
                workload: w.to_string(),
                tuner: "DeepCAT".into(),
                speedup_over_default_b: default_b / best_s,
                total_cost_s,
            });
        }
        // CDBTune.
        {
            let mut env = TuningEnv::for_workload(cluster_a.clone(), w, offline_seed(cfg.seed, w));
            let ac = agent_cfg(&env);
            let off = OfflineConfig::cdbtune(cfg.offline_iterations, cfg.seed);
            let (agent, _) = train_ddpg(&mut env, ac, &off);
            let (best_s, total_cost_s) = averaged_sessions_ddpg(&agent, &cluster_b, w, cfg);
            rows.push(Fig10Row {
                workload: w.to_string(),
                tuner: "CDBTune".into(),
                speedup_over_default_b: default_b / best_s,
                total_cost_s,
            });
        }
        // OtterTune: repository collected on Cluster-A.
        {
            let repo_workloads: Vec<Workload> = Workload::all_pairs()
                .into_iter()
                .filter(|x| *x != w)
                .collect();
            let repo = build_repository(&cluster_a, &repo_workloads, cfg.repo_samples, cfg.seed);
            let (best_s, total_cost_s) = averaged_sessions_ottertune(&repo, &cluster_b, w, cfg);
            rows.push(Fig10Row {
                workload: w.to_string(),
                tuner: "OtterTune".into(),
                speedup_over_default_b: default_b / best_s,
                total_cost_s,
            });
        }
        rows
    })
    .into_iter()
    .flatten()
    .collect()
}

// --------------------------------------------------------------------------
// Figures 11 & 12 — hyper-parameter sweeps
// --------------------------------------------------------------------------

/// One Fig. 11 point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11Row {
    pub beta: f64,
    pub best_s: f64,
    pub total_cost_s: f64,
}

/// Fig. 11: sweep the RDPER high-reward ratio β from 0.1 to 0.9.
pub fn fig11(cfg: &ExperimentConfig) -> Vec<Fig11Row> {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let betas: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    par_map(betas, |beta| {
        let n = SWEEP_SEEDS as f64;
        let (mut best_s, mut total_cost_s) = (0.0, 0.0);
        for session in 0..SWEEP_SEEDS {
            let mut env = TuningEnv::for_workload(
                Cluster::cluster_a(),
                w,
                offline_seed(cfg.seed ^ session.wrapping_mul(13), w),
            );
            let ac = agent_cfg(&env);
            let off = OfflineConfig {
                replay: crate::offline::ReplayKind::RdPer {
                    reward_threshold: 0.3,
                    beta,
                },
                ..OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed ^ session)
            };
            let (mut agent, _, _) = train_td3(&mut env, ac, &off, &[]);
            let mut online_env = online_env(
                &Cluster::cluster_a(),
                w,
                online_seed(cfg.seed, w) ^ (session << 24),
            );
            let oc = OnlineConfig {
                steps: cfg.online_steps,
                seed: cfg.seed ^ session,
                ..OnlineConfig::deepcat(cfg.seed)
            };
            let report = online_tune_td3(&mut agent, &mut online_env, &oc, "DeepCAT");
            best_s += report.best_exec_time_s / n;
            total_cost_s += report.total_cost_s() / n;
        }
        Fig11Row {
            beta,
            best_s,
            total_cost_s,
        }
    })
}

/// One Fig. 12 point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig12Row {
    pub q_th: f64,
    pub best_s: f64,
    pub total_cost_s: f64,
}

/// Fig. 12: sweep the Twin-Q threshold `Q_th` on a fixed offline model.
pub fn fig12(cfg: &ExperimentConfig) -> Vec<Fig12Row> {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
    let ac = agent_cfg(&env);
    let off = OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed);
    let (agent, _, _) = train_td3(&mut env, ac, &off, &[]);
    [0.1, 0.2, 0.3, 0.4, 0.5]
        .into_iter()
        .map(|q_th| {
            let n = SWEEP_SEEDS as f64;
            let (mut best_s, mut total_cost_s) = (0.0, 0.0);
            for session in 0..SWEEP_SEEDS {
                let mut a = agent.clone();
                let mut online_env = online_env(
                    &Cluster::cluster_a(),
                    w,
                    online_seed(cfg.seed, w) ^ (session << 24),
                );
                let oc = OnlineConfig {
                    steps: cfg.online_steps,
                    twinq: TwinQOptimizer::with_threshold(q_th),
                    seed: cfg.seed ^ session,
                    ..OnlineConfig::deepcat(cfg.seed)
                };
                let report = online_tune_td3(&mut a, &mut online_env, &oc, "DeepCAT");
                best_s += report.best_exec_time_s / n;
                total_cost_s += report.total_cost_s() / n;
            }
            Fig12Row {
                q_th,
                best_s,
                total_cost_s,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Ablations beyond the paper's figures
// --------------------------------------------------------------------------

/// One cell of the algorithm × replay ablation matrix.
#[derive(Clone, Debug, Serialize)]
pub struct AblationCell {
    pub algorithm: String,
    pub replay: String,
    pub best_s: f64,
    pub total_cost_s: f64,
}

/// Ablation: cross TD3/DDPG with uniform / TD-error PER / RDPER replay on
/// TeraSort-D1. Decomposes DeepCAT's gains between the algorithm switch
/// (TD3) and the replay mechanism (RDPER) — the two knobs the paper's
/// Figs. 4 and 6 vary only jointly against CDBTune.
pub fn ablation_matrix(cfg: &ExperimentConfig) -> Vec<AblationCell> {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let live = Cluster::cluster_a().with_background_load(ONLINE_BACKGROUND_LOAD);
    let replays = [
        ("uniform", crate::offline::ReplayKind::Uniform),
        ("td-per", crate::offline::ReplayKind::TdPer),
        (
            "rdper",
            crate::offline::ReplayKind::RdPer {
                reward_threshold: 0.3,
                beta: 0.6,
            },
        ),
    ];
    let mut jobs: Vec<(&str, &str, crate::offline::ReplayKind)> = Vec::new();
    for algo in ["td3", "ddpg"] {
        for (rname, rk) in replays {
            jobs.push((algo, rname, rk));
        }
    }
    par_map(jobs, |(algo, rname, rk)| {
        let n = SWEEP_SEEDS as f64;
        let (mut best_s, mut total_cost_s) = (0.0, 0.0);
        for session in 0..SWEEP_SEEDS {
            let mut env = TuningEnv::for_workload(
                Cluster::cluster_a(),
                w,
                offline_seed(cfg.seed ^ session.wrapping_mul(29), w),
            );
            let ac = agent_cfg(&env);
            let off = OfflineConfig {
                replay: rk,
                ..OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed ^ session)
            };
            let (b, c) = match algo {
                "td3" => {
                    let (agent, _, _) = train_td3(&mut env, ac, &off, &[]);
                    averaged_one_session_td3(&agent, &live, w, cfg, session)
                }
                _ => {
                    let (agent, _) = train_ddpg(&mut env, ac, &off);
                    averaged_one_session_ddpg(&agent, &live, w, cfg, session)
                }
            };
            best_s += b / n;
            total_cost_s += c / n;
        }
        AblationCell {
            algorithm: algo.to_string(),
            replay: rname.to_string(),
            best_s,
            total_cost_s,
        }
    })
}

fn averaged_one_session_td3(
    agent: &crate::td3::Td3Agent,
    live: &Cluster,
    w: Workload,
    cfg: &ExperimentConfig,
    session: u64,
) -> (f64, f64) {
    let mut a = agent.clone();
    let mut env =
        TuningEnv::for_workload(live.clone(), w, online_seed(cfg.seed, w) ^ (session << 24));
    // Twin-Q disabled so the matrix isolates algorithm × replay.
    let oc = OnlineConfig {
        steps: cfg.online_steps,
        seed: cfg.seed ^ session,
        ..OnlineConfig::without_twinq(cfg.seed)
    };
    let r = online_tune_td3(&mut a, &mut env, &oc, "TD3");
    (r.best_exec_time_s, r.total_cost_s())
}

fn averaged_one_session_ddpg(
    agent: &crate::ddpg::DdpgAgent,
    live: &Cluster,
    w: Workload,
    cfg: &ExperimentConfig,
    session: u64,
) -> (f64, f64) {
    let mut a = agent.clone();
    let mut env =
        TuningEnv::for_workload(live.clone(), w, online_seed(cfg.seed, w) ^ (session << 24));
    let oc = OnlineConfig {
        steps: cfg.online_steps,
        seed: cfg.seed ^ session,
        ..OnlineConfig::without_twinq(cfg.seed)
    };
    let r = online_tune_ddpg(&mut a, &mut env, &oc, "DDPG");
    (r.best_exec_time_s, r.total_cost_s())
}

/// One row of the search-baseline comparison.
#[derive(Clone, Debug, Serialize)]
pub struct SearchRow {
    pub tuner: String,
    pub steps: usize,
    pub best_s: f64,
    pub total_cost_s: f64,
}

/// Search-based baselines vs DeepCAT: BestConfig and random search need
/// many times DeepCAT's 5-evaluation budget to reach comparable quality —
/// the quantified version of the paper's reason for excluding them.
pub fn search_comparison(cfg: &ExperimentConfig) -> Vec<SearchRow> {
    use crate::tuners::{BestConfig, RandomSearch};
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let live = Cluster::cluster_a().with_background_load(ONLINE_BACKGROUND_LOAD);
    let mut rows = Vec::new();

    // DeepCAT with its 5-step budget.
    {
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, offline_seed(cfg.seed, w));
        let ac = agent_cfg(&env);
        let off = OfflineConfig::deepcat(cfg.offline_iterations, cfg.seed);
        let (agent, _, _) = train_td3(&mut env, ac, &off, &[]);
        let (best_s, total_cost_s) = averaged_sessions_td3(&agent, &live, w, cfg);
        rows.push(SearchRow {
            tuner: "DeepCAT".into(),
            steps: cfg.online_steps,
            best_s,
            total_cost_s,
        });
    }
    // Search baselines at the same and at a generous budget.
    for steps in [cfg.online_steps, 6 * cfg.online_steps] {
        let n = SWEEP_SEEDS as f64;
        let (mut bc_best, mut bc_cost, mut rs_best, mut rs_cost) = (0.0, 0.0, 0.0, 0.0);
        for session in 0..SWEEP_SEEDS {
            let mut env = TuningEnv::for_workload(
                live.clone(),
                w,
                online_seed(cfg.seed, w) ^ (session << 24),
            );
            let mut bc = BestConfig::new(cfg.seed ^ session);
            let r = bc.online_tune(&mut env, steps);
            bc_best += r.best_exec_time_s / n;
            bc_cost += r.total_cost_s() / n;
            let mut env = TuningEnv::for_workload(
                live.clone(),
                w,
                online_seed(cfg.seed, w) ^ (session << 24) ^ 1,
            );
            let mut rs = RandomSearch::new(cfg.seed ^ session);
            let r = rs.online_tune(&mut env, steps);
            rs_best += r.best_exec_time_s / n;
            rs_cost += r.total_cost_s() / n;
        }
        rows.push(SearchRow {
            tuner: "BestConfig".into(),
            steps,
            best_s: bc_best,
            total_cost_s: bc_cost,
        });
        rows.push(SearchRow {
            tuner: "Random".into(),
            steps,
            best_s: rs_best,
            total_cost_s: rs_cost,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_is_empty() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].workload, "WordCount");
        assert_eq!(t[0].inputs, vec!["3.2 GB", "10 GB", "20 GB"]);
        assert_eq!(t[3].category, "ML");
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        let get = |c: &str| t.iter().find(|r| r.component == c).unwrap().parameters;
        assert_eq!(get("Spark"), 20);
        assert_eq!(get("Yarn"), 7);
        assert_eq!(get("Hdfs"), 5);
    }

    #[test]
    fn fig2_cdf_properties() {
        let cfg = ExperimentConfig::quick();
        let r = fig2(&cfg);
        assert_eq!(r.rows.len(), 200);
        // CDF is monotone in both coordinates.
        for w in r.rows.windows(2) {
            assert!(w[1].relative_performance >= w[0].relative_performance);
            assert!(w[1].cumulative_probability > w[0].cumulative_probability);
        }
        // Paper's shape: most configs beat default, few are near-optimal.
        assert!(
            r.frac_better_than_default > 0.5,
            "{}",
            r.frac_better_than_default
        );
        assert!(
            r.frac_within_10pct_of_best < 0.15,
            "{}",
            r.frac_within_10pct_of_best
        );
    }
}
