//! Offline training stage (Figure 1, left): train a DRL agent against the
//! standard environment by trial and error, filling a replay memory and
//! taking one gradient step per environment step.

use crate::config::AgentConfig;
use crate::ddpg::DdpgAgent;
use crate::envwrap::TuningEnv;
use crate::td3::Td3Agent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{PrioritizedReplay, RdPer, ReplayMemory, Transition, UniformReplay};
use serde::{Deserialize, Serialize};

/// Which replay memory to train with.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ReplayKind {
    /// Conventional uniform experience replay.
    Uniform,
    /// TD-error prioritized replay, proportional variant (what CDBTune
    /// uses).
    TdPer,
    /// TD-error prioritized replay, rank-based variant (robust to outlier
    /// TD errors from failure-penalty transitions).
    RankPer,
    /// The paper's reward-driven PER with threshold `R_th` and ratio `β`.
    RdPer { reward_threshold: f64, beta: f64 },
}

impl ReplayKind {
    /// Instantiate the chosen replay memory.
    pub fn build(self, capacity: usize) -> Box<dyn ReplayMemory> {
        match self {
            ReplayKind::Uniform => Box::new(UniformReplay::new(capacity)),
            ReplayKind::TdPer => Box::new(PrioritizedReplay::new(capacity)),
            ReplayKind::RankPer => Box::new(rl::RankBasedReplay::new(capacity)),
            ReplayKind::RdPer {
                reward_threshold,
                beta,
            } => Box::new(RdPer::new(capacity, reward_threshold, beta)),
        }
    }
}

/// Offline-training configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// Environment steps (= gradient steps after warm-up).
    pub iterations: usize,
    pub replay: ReplayKind,
    pub capacity: usize,
    /// Record a log entry every `log_every` iterations.
    pub log_every: usize,
    pub seed: u64,
}

impl OfflineConfig {
    /// DeepCAT's offline recipe: RDPER with the paper's β = 0.6 and
    /// `R_th = 0.3` — a transition is "high-reward" when its configuration
    /// ran at least ~3× faster than the default (clearly better than the
    /// expected performance), which keeps `P_high` sparse.
    pub fn deepcat(iterations: usize, seed: u64) -> Self {
        Self {
            iterations,
            replay: ReplayKind::RdPer {
                reward_threshold: 0.3,
                beta: 0.6,
            },
            capacity: 100_000,
            log_every: 20,
            seed,
        }
    }

    /// Conventional TD3 (uniform replay) — the Fig. 4 ablation baseline.
    pub fn td3_uniform(iterations: usize, seed: u64) -> Self {
        Self {
            replay: ReplayKind::Uniform,
            ..Self::deepcat(iterations, seed)
        }
    }

    /// CDBTune's offline recipe: TD-error PER.
    pub fn cdbtune(iterations: usize, seed: u64) -> Self {
        Self {
            replay: ReplayKind::TdPer,
            ..Self::deepcat(iterations, seed)
        }
    }
}

/// One log record of the offline training trajectory.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IterRecord {
    pub iteration: usize,
    /// Immediate reward of the action taken at this iteration.
    pub reward: f64,
    /// `min(Q1, Q2)` of the (state, action) just taken — Fig. 3's signal.
    pub min_q: f64,
    /// Execution time of the evaluated configuration (seconds).
    pub exec_time_s: f64,
}

/// Offline training trajectory log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainLog {
    pub records: Vec<IterRecord>,
}

impl TrainLog {
    /// Smoothed series `(iteration, mean reward)` with a trailing window.
    pub fn smoothed_rewards(&self, window: usize) -> Vec<(usize, f64)> {
        smooth(&self.records, window, |r| r.reward)
    }

    /// Smoothed series of the min twin-Q values.
    pub fn smoothed_min_q(&self, window: usize) -> Vec<(usize, f64)> {
        smooth(&self.records, window, |r| r.min_q)
    }
}

fn smooth(
    records: &[IterRecord],
    window: usize,
    f: impl Fn(&IterRecord) -> f64,
) -> Vec<(usize, f64)> {
    let w = window.max(1);
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let lo = i.saturating_sub(w - 1);
            let vals = &records[lo..=i];
            (
                r.iteration,
                vals.iter().map(&f).sum::<f64>() / vals.len() as f64,
            )
        })
        .collect()
}

/// Train a TD3 agent offline. `snapshots` lists iteration counts at which a
/// copy of the agent is captured (for convergence studies like Fig. 4); the
/// fully-trained agent and the training log are always returned.
pub fn train_td3(
    env: &mut TuningEnv,
    agent_cfg: AgentConfig,
    cfg: &OfflineConfig,
    snapshots: &[usize],
) -> (Td3Agent, TrainLog, Vec<(usize, Td3Agent)>) {
    let mut agent = Td3Agent::new(agent_cfg.clone(), cfg.seed);
    let mut replay = cfg.replay.build(cfg.capacity);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD_EF01);
    let mut log = TrainLog::default();
    let mut snaps = Vec::with_capacity(snapshots.len());
    let mut state = env.reset();
    let mut last_critic_loss = f64::NAN;
    let mut episode: u64 = 0;
    let mut episode_span = telemetry::span!("offline.episode", episode = episode);
    for iter in 0..cfg.iterations {
        let step_span = telemetry::span!("offline.step", iter = iter);
        let action = if iter < agent_cfg.warmup_steps {
            (0..agent_cfg.action_dim)
                .map(|_| rng.gen::<f64>())
                .collect::<Vec<_>>()
        } else {
            agent.select_action_noisy(&state)
        };
        let out = env.step(&action);
        if iter % cfg.log_every == 0 {
            let min_q = agent.min_q(&state, &action);
            telemetry::event!(
                "offline.iter",
                iteration = iter,
                reward = out.reward,
                min_q = min_q,
                exec_time_s = out.exec_time_s,
                critic_loss = last_critic_loss,
            );
            log.records.push(IterRecord {
                iteration: iter,
                reward: out.reward,
                min_q,
                exec_time_s: out.exec_time_s,
            });
        }
        replay.push(Transition::new(
            state,
            action,
            out.reward,
            out.next_state.clone(),
            out.done,
        ));
        state = if out.done {
            env.reset()
        } else {
            out.next_state
        };

        if replay.len() >= agent_cfg.warmup_steps.max(agent_cfg.batch_size) {
            if let Some(batch) = replay.sample(agent_cfg.batch_size, &mut rng) {
                let (stats, tds) = agent.train_step(&batch);
                replay.update_priorities(&batch.indices, &tds);
                last_critic_loss = stats.critic1_loss;
                telemetry::inc("offline.train_steps", 1);
                telemetry::set_gauge("offline.critic_loss", stats.critic1_loss);
                telemetry::set_gauge("offline.mean_min_q", stats.mean_min_q);
                if let Some(a) = stats.actor_loss {
                    telemetry::set_gauge("offline.actor_loss", a);
                }
            }
        }
        if snapshots.contains(&(iter + 1)) {
            snaps.push((iter + 1, agent.clone()));
        }
        // Close the step span before an episode rollover: a new episode
        // span started while the step guard is live would nest under it.
        drop(step_span);
        if out.done {
            episode += 1;
            drop(episode_span);
            episode_span = telemetry::span!("offline.episode", episode = episode);
        }
    }
    drop(episode_span);
    (agent, log, snaps)
}

/// Train a DDPG agent offline (the CDBTune baseline).
pub fn train_ddpg(
    env: &mut TuningEnv,
    agent_cfg: AgentConfig,
    cfg: &OfflineConfig,
) -> (DdpgAgent, TrainLog) {
    let mut agent = DdpgAgent::new(agent_cfg.clone(), cfg.seed);
    let mut replay = cfg.replay.build(cfg.capacity);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD_EF01);
    let mut log = TrainLog::default();
    let mut state = env.reset();
    let mut episode: u64 = 0;
    let mut episode_span = telemetry::span!("offline.episode", episode = episode);
    for iter in 0..cfg.iterations {
        let step_span = telemetry::span!("offline.step", iter = iter);
        let action = if iter < agent_cfg.warmup_steps {
            (0..agent_cfg.action_dim)
                .map(|_| rng.gen::<f64>())
                .collect::<Vec<_>>()
        } else {
            agent.select_action_noisy(&state)
        };
        let out = env.step(&action);
        if iter % cfg.log_every == 0 {
            let min_q = agent.q_value(&state, &action);
            telemetry::event!(
                "offline.iter",
                iteration = iter,
                reward = out.reward,
                min_q = min_q,
                exec_time_s = out.exec_time_s,
            );
            log.records.push(IterRecord {
                iteration: iter,
                reward: out.reward,
                min_q,
                exec_time_s: out.exec_time_s,
            });
        }
        replay.push(Transition::new(
            state,
            action,
            out.reward,
            out.next_state.clone(),
            out.done,
        ));
        state = if out.done {
            env.reset()
        } else {
            out.next_state
        };
        if replay.len() >= agent_cfg.warmup_steps.max(agent_cfg.batch_size) {
            if let Some(batch) = replay.sample(agent_cfg.batch_size, &mut rng) {
                let (stats, tds) = agent.train_step(&batch);
                replay.update_priorities(&batch.indices, &tds);
                telemetry::inc("offline.train_steps", 1);
                telemetry::set_gauge("offline.critic_loss", stats.critic_loss);
                telemetry::set_gauge("offline.actor_loss", stats.actor_loss);
                telemetry::set_gauge("offline.mean_min_q", stats.mean_q);
            }
        }
        drop(step_span);
        if out.done {
            episode += 1;
            drop(episode_span);
            episode_span = telemetry::span!("offline.episode", episode = episode);
        }
    }
    drop(episode_span);
    (agent, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    fn env() -> TuningEnv {
        TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            7,
        )
    }

    fn small_cfg(env: &TuningEnv) -> AgentConfig {
        let mut c = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        c.hidden = vec![32, 32];
        c.warmup_steps = 64;
        c.batch_size = 32;
        c
    }

    #[test]
    fn td3_training_improves_over_random() {
        let mut e = env();
        let cfg = OfflineConfig::deepcat(800, 3);
        let ac = small_cfg(&e);
        let (agent, log, _) = train_td3(&mut e, ac, &cfg, &[]);
        assert!(!agent.diverged());
        // Late rewards should beat early (post-warmup random) rewards.
        let early: f64 = log.records[..10].iter().map(|r| r.reward).sum::<f64>() / 10.0;
        let n = log.records.len();
        let late: f64 = log.records[n - 10..].iter().map(|r| r.reward).sum::<f64>() / 10.0;
        assert!(
            late > early,
            "training should improve rewards: early {early:.3}, late {late:.3}"
        );
    }

    #[test]
    fn snapshots_captured_at_requested_iterations() {
        let mut e = env();
        let cfg = OfflineConfig::td3_uniform(300, 4);
        let ac = small_cfg(&e);
        let (_, _, snaps) = train_td3(&mut e, ac, &cfg, &[100, 200, 300]);
        let iters: Vec<usize> = snaps.iter().map(|(i, _)| *i).collect();
        assert_eq!(iters, vec![100, 200, 300]);
    }

    #[test]
    fn ddpg_training_runs_and_logs() {
        let mut e = env();
        let cfg = OfflineConfig::cdbtune(400, 5);
        let ac = small_cfg(&e);
        let (agent, log) = train_ddpg(&mut e, ac, &cfg);
        assert!(!agent.diverged());
        assert_eq!(log.records.len(), 400 / cfg.log_every);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let mut e = env();
        let cfg = OfflineConfig::deepcat(400, 6);
        let ac = small_cfg(&e);
        let (_, log, _) = train_td3(&mut e, ac, &cfg, &[]);
        let raw: Vec<f64> = log.records.iter().map(|r| r.reward).collect();
        let smooth: Vec<f64> = log.smoothed_rewards(10).iter().map(|(_, v)| *v).collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&smooth) <= var(&raw));
    }

    #[test]
    fn replay_kind_builders() {
        assert_eq!(ReplayKind::Uniform.build(8).len(), 0);
        assert_eq!(ReplayKind::TdPer.build(8).len(), 0);
        assert_eq!(ReplayKind::RankPer.build(8).len(), 0);
        assert_eq!(
            ReplayKind::RdPer {
                reward_threshold: 0.0,
                beta: 0.6
            }
            .build(8)
            .len(),
            0
        );
    }
}
