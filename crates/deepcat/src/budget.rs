//! Budget-constrained online tuning (paper §5.2.3): "for real online
//! configuration auto-tuning applications, there is usually a
//! user-specified constraint on the total online tuning time consumption".
//!
//! [`BudgetedTuning`] wraps the TD3 online loop with a hard budget on
//! accumulated tuning cost (evaluation + recommendation seconds): it keeps
//! taking steps while the *expected* next step still fits, then reports the
//! best configuration found and the leftover budget. The expectation uses a
//! running mean of observed step costs, so one slow evaluation early on
//! makes the controller appropriately conservative.

use crate::envwrap::TuningEnv;
use crate::online::{online_tune_td3, OnlineConfig, StepRecord, TuningReport};
use crate::td3::Td3Agent;
use serde::{Deserialize, Serialize};

/// Result of a budget-constrained session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BudgetReport {
    /// The underlying per-step records (one per executed step).
    pub report: TuningReport,
    /// The user's budget (seconds of tuning cost).
    pub budget_s: f64,
    /// Cost actually spent.
    pub spent_s: f64,
    /// Steps executed before the controller stopped.
    pub steps_taken: usize,
    /// True if the session stopped because the next step would not fit
    /// (false ⇒ the step cap was reached first).
    pub stopped_by_budget: bool,
}

/// Budget-constrained tuning controller.
#[derive(Clone, Debug)]
pub struct BudgetedTuning {
    /// Total tuning-cost budget in seconds.
    pub budget_s: f64,
    /// Hard cap on steps regardless of budget (safety valve).
    pub max_steps: usize,
    /// Online-loop configuration used for each single step.
    pub online: OnlineConfig,
}

impl BudgetedTuning {
    pub fn new(budget_s: f64, seed: u64) -> Self {
        assert!(budget_s > 0.0);
        Self {
            budget_s,
            max_steps: 64,
            online: OnlineConfig::deepcat(seed),
        }
    }

    /// Run the session: one online step at a time while the predicted cost
    /// of the next step fits in the remaining budget.
    ///
    /// Each step is an independent single-step session (the fine-tuning
    /// replay does not persist across steps); the agent's *weights* do
    /// persist, which is where cross-step learning accumulates.
    pub fn run(&self, agent: &mut Td3Agent, env: &mut TuningEnv) -> BudgetReport {
        let mut steps: Vec<StepRecord> = Vec::new();
        let mut spent = 0.0;
        let mut stopped_by_budget = false;
        while steps.len() < self.max_steps {
            // Predict the next step's cost: mean of past steps, or — before
            // any observation — the default execution time (the only prior
            // the tuner has).
            let predicted = if steps.is_empty() {
                env.default_exec_time() * 0.5
            } else {
                spent / steps.len() as f64
            };
            if spent + predicted > self.budget_s {
                stopped_by_budget = true;
                break;
            }
            let one = OnlineConfig {
                steps: 1,
                seed: self.online.seed ^ (steps.len() as u64) << 8,
                ..self.online.clone()
            };
            let r = online_tune_td3(agent, env, &one, "DeepCAT");
            // PANIC-SAFETY: the config above requests exactly one step, so
            // the report carries exactly one record.
            let rec = r.steps.into_iter().next().expect("one step requested");
            spent += rec.exec_time_s + rec.recommendation_s;
            telemetry::set_gauge("budget.spent_s", spent);
            telemetry::event!(
                "budget.session_step",
                step = steps.len(),
                spent_s = spent,
                budget_s = self.budget_s,
                remaining_s = (self.budget_s - spent).max(0.0),
            );
            steps.push(StepRecord {
                step: steps.len(),
                ..rec
            });
            if spent >= self.budget_s {
                stopped_by_budget = true;
                break;
            }
        }
        assert!(
            !steps.is_empty(),
            "budget too small for even one evaluation"
        );
        telemetry::event!(
            "budget.stop",
            steps_taken = steps.len(),
            spent_s = spent,
            budget_s = self.budget_s,
            stopped_by_budget = stopped_by_budget,
        );
        let report = crate::online::finish_report("DeepCAT(budgeted)", env, steps);
        BudgetReport {
            budget_s: self.budget_s,
            spent_s: spent,
            steps_taken: report.steps.len(),
            stopped_by_budget,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use crate::offline::{train_td3, OfflineConfig};
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    fn trained(w: Workload, seed: u64) -> (Td3Agent, TuningEnv) {
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, seed);
        let mut ac = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        ac.hidden = vec![32, 32];
        ac.warmup_steps = 96;
        let (agent, _, _) = train_td3(&mut env, ac, &OfflineConfig::deepcat(700, seed), &[]);
        let live = TuningEnv::for_workload(
            Cluster::cluster_a().with_background_load(0.15),
            w,
            seed ^ 0xB0D,
        );
        (agent, live)
    }

    #[test]
    fn spends_within_budget_plus_one_step() {
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let (mut agent, mut env) = trained(w, 11);
        let budget = 150.0;
        let ctl = BudgetedTuning::new(budget, 1);
        let out = ctl.run(&mut agent, &mut env);
        // The controller may overshoot by at most the final step's cost
        // (it cannot preempt a running evaluation).
        let last_cost = out
            .report
            .steps
            .last()
            .map(|s| s.exec_time_s + s.recommendation_s)
            .unwrap();
        assert!(out.spent_s <= budget + last_cost);
        assert!(out.steps_taken >= 1);
    }

    #[test]
    fn larger_budget_takes_more_steps() {
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let (agent, env) = trained(w, 12);
        let small = BudgetedTuning::new(80.0, 2).run(&mut agent.clone(), &mut env.clone());
        let large = BudgetedTuning::new(400.0, 2).run(&mut agent.clone(), &mut env.clone());
        assert!(large.steps_taken >= small.steps_taken);
        assert!(large.report.best_exec_time_s <= small.report.best_exec_time_s * 1.2);
    }

    #[test]
    fn step_cap_is_respected() {
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let (mut agent, mut env) = trained(w, 13);
        let mut ctl = BudgetedTuning::new(1e9, 3);
        ctl.max_steps = 4;
        let out = ctl.run(&mut agent, &mut env);
        assert_eq!(out.steps_taken, 4);
        assert!(!out.stopped_by_budget);
    }

    #[test]
    fn budget_stop_is_flagged() {
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let (mut agent, mut env) = trained(w, 14);
        let ctl = BudgetedTuning::new(60.0, 4);
        let out = ctl.run(&mut agent, &mut env);
        assert!(out.stopped_by_budget);
    }
}
