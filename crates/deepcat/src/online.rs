//! Online tuning stage (Figure 1, right): fine-tune an offline-trained
//! agent on the live target environment for a fixed number of steps
//! (5, following CDBTune), tracking both the quality of the best
//! configuration found and the *total tuning cost* — evaluation time plus
//! recommendation time — that the paper optimizes.

use crate::ddpg::DdpgAgent;
use crate::envwrap::TuningEnv;
use crate::td3::Td3Agent;
use crate::twinq::TwinQOptimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{GaussianNoise, ReplayMemory, Transition, UniformReplay};
use serde::{Deserialize, Serialize};

/// Online-tuning configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Number of online tuning steps (the paper uses 5).
    pub steps: usize,
    /// Run the Twin-Q Optimizer before each evaluation (DeepCAT) or not
    /// (the ablation / baselines).
    pub use_twinq: bool,
    pub twinq: TwinQOptimizer,
    /// Gradient steps applied after each online evaluation (fine-tuning).
    pub fine_tune_steps: usize,
    /// Exploration noise σ added to the recommended action during online
    /// steps (kept small; the offline policy is already good).
    pub exploration_sigma: f64,
    pub seed: u64,
}

impl OnlineConfig {
    /// DeepCAT's online recipe.
    pub fn deepcat(seed: u64) -> Self {
        Self {
            steps: 5,
            use_twinq: true,
            twinq: TwinQOptimizer::default(),
            fine_tune_steps: 4,
            exploration_sigma: 0.25,
            seed,
        }
    }

    /// The same loop without the Twin-Q Optimizer (Fig. 5 ablation, and
    /// what CDBTune-style agents do).
    pub fn without_twinq(seed: u64) -> Self {
        Self {
            use_twinq: false,
            ..Self::deepcat(seed)
        }
    }
}

/// Resilience accounting for one online step. All-zero on the fault-free
/// fast path; populated by [`crate::resilience::ResilientEnv`] sessions.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepResilience {
    /// Transient-failure retries performed before this step's result.
    pub retries: u32,
    /// Extra evaluation seconds charged beyond the final attempt: wasted
    /// attempts, virtual backoff waits, abandoned-at-timeout time.
    pub overhead_s: f64,
    /// The evaluation hit the per-eval timeout and was abandoned.
    pub timed_out: bool,
    /// The step fell back to the last-known-good configuration.
    pub fell_back: bool,
    /// State entries imputed after lost uptime probes.
    pub imputed_probes: u32,
}

/// Guardrail accounting for one online step. All-default on sessions run
/// without guardrails; populated by [`crate::guardrail::Guardrail`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepGuardrail {
    /// The raw recommendation violated a feasibility rule and was
    /// rejected before evaluation.
    pub vetoed: bool,
    /// The repair projection rewrote the action onto the feasible region.
    pub repaired: bool,
    /// Names of the constraint rules whose repair fired, in rule order.
    pub rules: Vec<String>,
    /// The canary evaluation came in worse than `canary_factor x`
    /// last-known-good; the full run was aborted and the session rolled
    /// back to the last-known-good configuration.
    pub canary_aborted: bool,
    /// Evaluation seconds *not* charged thanks to the canary abort (the
    /// skipped remainder of the full run).
    pub saved_s: f64,
    /// The watchdog snapped this step back to the best-seen action.
    pub rolled_back: bool,
}

/// One online tuning step's record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepRecord {
    pub step: usize,
    /// Execution time of the evaluated configuration (seconds) — the
    /// final (kept) attempt only; retry/backoff waste is in
    /// [`StepResilience::overhead_s`].
    pub exec_time_s: f64,
    pub failed: bool,
    pub reward: f64,
    /// Wall-clock recommendation time for this step (seconds) — actor
    /// inference plus Twin-Q optimization (or GP fit + EI for OtterTune).
    pub recommendation_s: f64,
    /// `min(Q1,Q2)` estimate of the evaluated action, when available.
    pub q_estimate: Option<f64>,
    /// Rounds the Twin-Q Optimizer spent on this step (0 without it).
    pub twinq_iterations: usize,
    /// The evaluated normalized action.
    pub action: Vec<f64>,
    /// Retry/timeout/fallback accounting (all-zero when the session ran
    /// without a resilience wrapper or nothing went wrong).
    pub resilience: StepResilience,
    /// Guardrail accounting (all-default without guardrails).
    pub guardrail: StepGuardrail,
}

impl StepRecord {
    /// May this step's measurement become the session's best result?
    /// Failed evaluations are paid for but never win, and a
    /// canary-aborted step never ran to completion, so its (projected)
    /// time is not a usable tuning result either. This is the single
    /// source of truth for "best" eligibility across `finish_report`,
    /// `best_so_far`, and the chaos/report surfaces.
    pub fn is_eligible_best(&self) -> bool {
        !self.failed && !self.guardrail.canary_aborted
    }
}

/// Result of one online tuning session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuningReport {
    pub tuner: String,
    pub workload: String,
    pub steps: Vec<StepRecord>,
    /// Best (lowest) execution time observed across the session —
    /// successful evaluations only, unless every step failed.
    pub best_exec_time_s: f64,
    /// Action achieving the best execution time.
    pub best_action: Vec<f64>,
    /// Σ evaluation time — the dominant share of tuning cost.
    pub total_eval_s: f64,
    /// Σ recommendation time.
    pub total_rec_s: f64,
    /// The default configuration's execution time for this workload.
    pub default_exec_time_s: f64,
}

impl TuningReport {
    /// Speedup of the best found configuration over the default.
    pub fn speedup(&self) -> f64 {
        self.default_exec_time_s / self.best_exec_time_s
    }

    /// Total online tuning cost (evaluation + recommendation), seconds.
    pub fn total_cost_s(&self) -> f64 {
        self.total_eval_s + self.total_rec_s
    }

    /// Best-so-far execution time after each step. Only
    /// [`StepRecord::is_eligible_best`] steps can become the "best"
    /// configuration — a crashed or canary-aborted run is not a usable
    /// tuning result.
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.steps
            .iter()
            .map(|s| {
                if s.is_eligible_best() {
                    best = best.min(s.exec_time_s);
                }
                best
            })
            .collect()
    }

    /// Accumulated tuning cost after each step (evaluation time +
    /// resilience overhead + recommendation time).
    pub fn accumulated_cost(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.steps
            .iter()
            .map(|s| {
                acc += s.exec_time_s + s.resilience.overhead_s + s.recommendation_s;
                acc
            })
            .collect()
    }

    /// Steps whose kept evaluation failed (paid-but-failed; distinct from
    /// the evaluations the Twin-Q Optimizer *skipped* for free).
    pub fn failed_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.failed).count()
    }

    /// Total transient-failure retries across the session.
    pub fn total_retries(&self) -> u32 {
        self.steps.iter().map(|s| s.resilience.retries).sum()
    }

    /// Total fallbacks to the last-known-good configuration.
    pub fn total_fallbacks(&self) -> usize {
        self.steps.iter().filter(|s| s.resilience.fell_back).count()
    }

    /// Steps whose recommended action violated a hard constraint (the
    /// guardrail vetoed it before evaluation).
    pub fn total_vetoed(&self) -> usize {
        self.steps.iter().filter(|s| s.guardrail.vetoed).count()
    }

    /// Steps whose action the guardrail projected back to feasibility.
    pub fn total_repaired(&self) -> usize {
        self.steps.iter().filter(|s| s.guardrail.repaired).count()
    }

    /// Steps aborted at the canary stage (charged only the canary cost).
    pub fn total_canary_aborts(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.guardrail.canary_aborted)
            .count()
    }

    /// Steps where the watchdog rolled the session back to the best-seen
    /// configuration.
    pub fn total_rollbacks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.guardrail.rolled_back)
            .count()
    }

    /// Σ evaluation seconds the canary aborts avoided paying.
    pub fn guardrail_saved_s(&self) -> f64 {
        self.steps.iter().map(|s| s.guardrail.saved_s).sum()
    }
}

/// Run the online tuning session for a TD3-based tuner (DeepCAT with
/// `use_twinq`, the ablation without).
pub fn online_tune_td3(
    agent: &mut Td3Agent,
    env: &mut TuningEnv,
    cfg: &OnlineConfig,
    tuner_name: &str,
) -> TuningReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0417_11E5);
    let noise = GaussianNoise::new(env.action_dim(), cfg.exploration_sigma);
    let mut replay = UniformReplay::new(1024);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut state = env.reset();
    let mut spent_s = 0.0;
    // Session scoping: reuse the caller's ambient session if one is
    // open, otherwise open a fresh one for this tuning run so every
    // event below carries a session_id.
    let own_session = owned_session_scope(tuner_name, cfg.steps);
    let session_span = telemetry::span!("online.request", tuner = tuner_name);
    for step in 0..cfg.steps {
        let mut span = telemetry::span!("online.step", step = step, tuner = tuner_name);
        let t0 = telemetry::Stopwatch::start();
        let mut action = agent.select_action(&state);
        if cfg.exploration_sigma > 0.0 {
            action = noise.perturb(&action, &mut rng);
        }
        let mut twinq_iterations = 0;
        if cfg.use_twinq {
            let res = cfg.twinq.optimize(agent, &state, action, &mut rng);
            twinq_iterations = res.iterations;
            action = res.action;
        }
        let q_estimate = Some(agent.min_q(&state, &action));
        let recommendation_s = t0.elapsed_s();

        let out = env.step(&action);
        replay.push(Transition::new(
            state.clone(),
            action.clone(),
            out.reward,
            out.next_state.clone(),
            out.done,
        ));
        // Fine-tune on the online transitions gathered so far.
        for _ in 0..cfg.fine_tune_steps {
            let batch_size = replay.len().min(agent.cfg.batch_size);
            if let Some(batch) = replay.sample(batch_size, &mut rng) {
                agent.train_step(&batch);
            }
        }
        telemetry::inc("online.steps", 1);
        span.record("reward", out.reward);
        span.record("exec_time_s", out.exec_time_s);
        span.record("recommendation_s", recommendation_s);
        span.record("failed", out.failed);
        span.record("twinq_iterations", twinq_iterations);
        if let Some(q) = q_estimate {
            span.record("q_estimate", q);
        }
        drop(span);
        telemetry::observe_sketch("online.step_latency_s", t0.elapsed_s());
        telemetry::observe_sketch("online.step_reward", out.reward);
        telemetry::observe_sketch("online.step_cost_s", out.exec_time_s);
        spent_s += out.exec_time_s + recommendation_s;
        telemetry::set_gauge("budget.spent_s", spent_s);
        telemetry::event!("budget.update", step = step, spent_s = spent_s);
        // Step boundary: flush sharded buffers so console progress and the
        // live session rollup stay current (no-op in synchronous mode),
        // then evaluate any installed SLO alert rules on fresh rollups.
        telemetry::drain();
        telemetry::alerts_tick();
        steps.push(StepRecord {
            step,
            exec_time_s: out.exec_time_s,
            failed: out.failed,
            reward: out.reward,
            recommendation_s,
            q_estimate,
            twinq_iterations,
            action,
            resilience: StepResilience::default(),
            guardrail: StepGuardrail::default(),
        });
        state = out.next_state;
    }
    drop(session_span);
    if own_session.is_some() {
        telemetry::event!("session.end", outcome = "completed", steps = cfg.steps);
    }
    finish_report(tuner_name, env, steps)
}

/// Run the online tuning session for a DDPG-based tuner (CDBTune).
pub fn online_tune_ddpg(
    agent: &mut DdpgAgent,
    env: &mut TuningEnv,
    cfg: &OnlineConfig,
    tuner_name: &str,
) -> TuningReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0417_11E5);
    let noise = GaussianNoise::new(env.action_dim(), cfg.exploration_sigma);
    let mut replay = UniformReplay::new(1024);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut state = env.reset();
    let mut spent_s = 0.0;
    let own_session = owned_session_scope(tuner_name, cfg.steps);
    let session_span = telemetry::span!("online.request", tuner = tuner_name);
    for step in 0..cfg.steps {
        let mut span = telemetry::span!("online.step", step = step, tuner = tuner_name);
        let t0 = telemetry::Stopwatch::start();
        let mut action = agent.select_action(&state);
        if cfg.exploration_sigma > 0.0 {
            action = noise.perturb(&action, &mut rng);
        }
        let q_estimate = Some(agent.q_value(&state, &action));
        let recommendation_s = t0.elapsed_s();
        let out = env.step(&action);
        replay.push(Transition::new(
            state.clone(),
            action.clone(),
            out.reward,
            out.next_state.clone(),
            out.done,
        ));
        for _ in 0..cfg.fine_tune_steps {
            let batch_size = replay.len().min(agent.cfg.batch_size);
            if let Some(batch) = replay.sample(batch_size, &mut rng) {
                agent.train_step(&batch);
            }
        }
        telemetry::inc("online.steps", 1);
        span.record("reward", out.reward);
        span.record("exec_time_s", out.exec_time_s);
        span.record("recommendation_s", recommendation_s);
        span.record("failed", out.failed);
        if let Some(q) = q_estimate {
            span.record("q_estimate", q);
        }
        drop(span);
        telemetry::observe_sketch("online.step_latency_s", t0.elapsed_s());
        telemetry::observe_sketch("online.step_reward", out.reward);
        telemetry::observe_sketch("online.step_cost_s", out.exec_time_s);
        spent_s += out.exec_time_s + recommendation_s;
        telemetry::set_gauge("budget.spent_s", spent_s);
        telemetry::event!("budget.update", step = step, spent_s = spent_s);
        telemetry::drain();
        telemetry::alerts_tick();
        steps.push(StepRecord {
            step,
            exec_time_s: out.exec_time_s,
            failed: out.failed,
            reward: out.reward,
            recommendation_s,
            q_estimate,
            twinq_iterations: 0,
            action,
            resilience: StepResilience::default(),
            guardrail: StepGuardrail::default(),
        });
        state = out.next_state;
    }
    drop(session_span);
    if own_session.is_some() {
        telemetry::event!("session.end", outcome = "completed", steps = cfg.steps);
    }
    finish_report(tuner_name, env, steps)
}

/// Open a fresh ambient session scope labelled `tuner` — unless the
/// caller already established one, in which case its scope (and id) is
/// reused and `None` is returned. Emits `session.start` when it opens.
fn owned_session_scope(tuner: &str, steps: usize) -> Option<telemetry::SessionScope> {
    if !telemetry::enabled() || telemetry::current_session().is_some() {
        return None;
    }
    let ctx = telemetry::SessionCtx::next(tuner);
    let scope = telemetry::session_scope(&ctx);
    telemetry::event!(
        "session.start",
        label = ctx.label(),
        tuner = tuner,
        steps = steps
    );
    Some(scope)
}

/// Assemble a [`TuningReport`] from per-step records.
///
/// Failed and canary-aborted evaluations are *paid* (their charged time
/// counts toward `total_eval_s`) but never *win*: the best configuration
/// is chosen among [`StepRecord::is_eligible_best`] steps, falling back
/// to the full set only if every single evaluation was ineligible (so
/// the report stays well-formed under total chaos).
pub fn finish_report(tuner: &str, env: &TuningEnv, steps: Vec<StepRecord>) -> TuningReport {
    assert!(
        !steps.is_empty(),
        "a tuning session needs at least one step"
    );
    let best = steps
        .iter()
        .filter(|s| s.is_eligible_best())
        .min_by(|a, b| a.exec_time_s.total_cmp(&b.exec_time_s))
        .or_else(|| {
            steps
                .iter()
                .min_by(|a, b| a.exec_time_s.total_cmp(&b.exec_time_s))
        })
        // PANIC-SAFETY: guarded by the non-empty assertion above.
        .expect("non-empty");
    TuningReport {
        tuner: tuner.to_string(),
        workload: env.spark().label(),
        best_exec_time_s: best.exec_time_s,
        best_action: best.action.clone(),
        total_eval_s: steps
            .iter()
            .map(|s| s.exec_time_s + s.resilience.overhead_s)
            .sum(),
        total_rec_s: steps.iter().map(|s| s.recommendation_s).sum(),
        default_exec_time_s: env.default_exec_time(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use crate::offline::{train_td3, OfflineConfig};
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    fn env() -> TuningEnv {
        TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            21,
        )
    }

    fn quick_agent(e: &mut TuningEnv) -> Td3Agent {
        let mut c = AgentConfig::for_dims(e.state_dim(), e.action_dim());
        c.hidden = vec![32, 32];
        c.warmup_steps = 64;
        c.batch_size = 32;
        let (agent, _, _) = train_td3(e, c, &OfflineConfig::deepcat(600, 9), &[]);
        agent
    }

    #[test]
    fn report_has_five_steps_and_consistent_totals() {
        let mut e = env();
        let mut agent = quick_agent(&mut e);
        let report = online_tune_td3(&mut agent, &mut e, &OnlineConfig::deepcat(1), "DeepCAT");
        assert_eq!(report.steps.len(), 5);
        let eval_sum: f64 = report.steps.iter().map(|s| s.exec_time_s).sum();
        assert!((report.total_eval_s - eval_sum).abs() < 1e-9);
        assert!(report.best_exec_time_s <= report.steps[0].exec_time_s);
        assert!(report.speedup() > 1.0, "tuned should beat default");
    }

    #[test]
    fn best_so_far_is_monotone_nonincreasing() {
        let mut e = env();
        let mut agent = quick_agent(&mut e);
        let report = online_tune_td3(&mut agent, &mut e, &OnlineConfig::without_twinq(2), "TD3");
        let b = report.best_so_far();
        assert!(b.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*b.last().unwrap(), report.best_exec_time_s);
    }

    #[test]
    fn accumulated_cost_is_monotone_increasing() {
        let mut e = env();
        let mut agent = quick_agent(&mut e);
        let report = online_tune_td3(&mut agent, &mut e, &OnlineConfig::deepcat(3), "DeepCAT");
        let c = report.accumulated_cost();
        assert!(c.windows(2).all(|w| w[1] > w[0]));
        assert!((c.last().unwrap() - report.total_cost_s()).abs() < 1e-9);
    }

    #[test]
    fn ddpg_session_produces_report() {
        let mut e = env();
        let mut c = AgentConfig::for_dims(e.state_dim(), e.action_dim());
        c.hidden = vec![32, 32];
        let mut agent = DdpgAgent::new(c, 5);
        let report = online_tune_ddpg(
            &mut agent,
            &mut e,
            &OnlineConfig::without_twinq(4),
            "CDBTune",
        );
        assert_eq!(report.steps.len(), 5);
        assert_eq!(report.tuner, "CDBTune");
        assert!(report.total_rec_s > 0.0);
    }

    #[test]
    fn recommendation_time_is_far_below_eval_time() {
        let mut e = env();
        let mut agent = quick_agent(&mut e);
        let report = online_tune_td3(&mut agent, &mut e, &OnlineConfig::deepcat(6), "DeepCAT");
        // The paper reports sub-second recommendation vs minutes of
        // evaluation; the simulator charges simulated evaluation seconds
        // while recommendation is real compute time.
        assert!(report.total_rec_s < 1.0);
        assert!(report.total_eval_s > 10.0);
    }
}
