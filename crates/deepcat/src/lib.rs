//! # deepcat
//!
//! A from-scratch Rust reproduction of **DeepCAT** (Dou, Wang, Zhang,
//! Chen — *DeepCAT: A Cost-Efficient Online Configuration Auto-Tuning
//! Approach for Big Data Frameworks*, ICPP 2022): a deep-reinforcement-
//! learning tuner for the 32 performance knobs of a Spark/YARN/HDFS
//! pipeline, evaluated against a discrete-event cluster simulator
//! ([`spark_sim`]).
//!
//! The paper's three ingredients, all implemented here:
//!
//! * **TD3 instead of DDPG** ([`td3::Td3Agent`] vs [`ddpg::DdpgAgent`]) —
//!   twin critics with clipped double-Q targets mitigate the value
//!   overestimation that misleads DDPG-based tuners like CDBTune.
//! * **RDPER** ([`rl::RdPer`], driven from [`offline`]) — reward-driven
//!   prioritized experience replay: every training batch is guaranteed a
//!   β-fraction of rare high-reward transitions.
//! * **Twin-Q Optimizer** ([`twinq::TwinQOptimizer`]) — during online
//!   tuning, actions are scored by the twin critics before the costly
//!   real evaluation; predicted-sub-optimal actions are perturbed until
//!   an estimated close-to-optimal one emerges (Algorithm 1).
//!
//! The baselines the paper compares against are provided behind the same
//! [`tuners::Tuner`] trait: [`tuners::CdbTune`] (DDPG + TD-error PER),
//! [`tuners::OtterTune`] (Lasso + workload mapping + GP/EI), plus
//! [`tuners::BestConfig`] and [`tuners::RandomSearch`] from the
//! related-work discussion.
//!
//! Every table and figure of the paper's evaluation regenerates from
//! [`experiments`]; the `bench` crate wraps each in a bench target.
//!
//! ```
//! use deepcat::{DeepCat, Tuner, TuningEnv};
//! use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
//!
//! let workload = Workload::new(WorkloadKind::WordCount, InputSize::D1);
//! let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), workload, 7);
//! let mut tuner = DeepCat::for_env(&offline, 300, 7); // tiny budget for the doctest
//! tuner.offline_train(&mut offline);
//! let mut live = TuningEnv::for_workload(
//!     Cluster::cluster_a().with_background_load(0.15), workload, 8);
//! let report = tuner.online_tune(&mut live, 5);
//! assert_eq!(report.steps.len(), 5);
//! ```

pub mod analysis;
pub mod budget;
pub mod commitlog;
pub mod config;
pub mod ddpg;
pub mod envwrap;
pub mod experiments;
pub mod guardrail;
pub mod offline;
pub mod online;
pub mod parallel;
pub mod persist;
pub mod resilience;
pub mod reward;
pub mod scheduler;
pub mod service;
pub mod storage;
pub mod supervisor;
pub mod td3;
pub mod tuners;
pub mod twinq;
pub mod whitebox;

pub use analysis::{compare, summarize, to_markdown, SessionSummary, Stat, Verdict};
pub use budget::{BudgetReport, BudgetedTuning};
pub use commitlog::{Commitlog, CommitlogPolicy, Recovered, StepDelta};
pub use config::AgentConfig;
pub use ddpg::{DdpgAgent, DdpgStats};
pub use envwrap::{StepOutcome, TuningEnv};
pub use guardrail::{
    CanaryVerdict, Guardrail, GuardrailPolicy, GuardrailSnapshot, GuardrailTotals, Screened,
};
pub use offline::{train_ddpg, train_td3, IterRecord, OfflineConfig, ReplayKind, TrainLog};
pub use online::{
    online_tune_ddpg, online_tune_td3, OnlineConfig, StepGuardrail, StepRecord, StepResilience,
    TuningReport,
};
pub use parallel::{train_td3_parallel, ParallelConfig, ParallelStats};
pub use persist::{
    load_online_checkpoint, load_td3, save_online_checkpoint, save_td3, OnlineCheckpoint,
};
pub use resilience::{
    online_tune_resilient, ChaosSessionConfig, EngineInit, EngineStep, ResiliencePolicy,
    ResilienceSnapshot, ResilientEnv, ResilientOutcome, SessionEngine, SessionOutcome,
};
pub use reward::{RewardFn, TARGET_SPEEDUP};
pub use scheduler::{Scheduler, VirtualClock};
pub use service::{
    AdmitError, PostError, ServiceConfig, ServiceFault, ServiceFaultEvent, ServiceFaultPlan,
    SessionMsg, SessionResult, SessionSpec, TuningService, SERVICE_PLAN_NAMES,
};
pub use storage::{
    shared_storage, FaultyStorage, MemStorage, RealStorage, SharedStorage, Storage, StorageError,
    StorageFault, StorageFaultEvent, StoragePlan, STORAGE_PLAN_NAMES,
};
pub use supervisor::{RestartPolicy, SessionPhase, Supervisor, SupervisorVerdict};
pub use td3::{Td3Agent, Td3Checkpoint, TrainStats};
pub use tuners::{build_repository, BestConfig, CdbTune, DeepCat, OtterTune, RandomSearch, Tuner};
pub use twinq::{TwinQOptimizer, TwinQResult};
pub use whitebox::{diagnose, online_tune_whitebox, relevant_knobs, Bottleneck, WhiteBoxTwinQ};
