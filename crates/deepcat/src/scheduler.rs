//! Sharded work-stealing scheduler for the multi-tenant
//! [`crate::service::TuningService`], plus the virtual clock that keeps
//! multiplexed runs deterministic.
//!
//! Design constraints, in order:
//!
//! * **Determinism-compatible.** The scheduler never consults wall time.
//!   Backoff waits and stall charges advance a [`VirtualClock`] (atomic
//!   milliseconds), and a fully idle service fast-forwards the clock to
//!   the earliest parked wake-up instead of sleeping — so a run with
//!   injected faults finishes as fast as a fault-free one and produces
//!   the same virtual timeline on every run.
//! * **No nested locks.** Every method takes at most one internal lock
//!   at a time (a single shard, or the parked list), and nothing is
//!   emitted or computed while a lock is held. The lock-order graph the
//!   lint builds over this file is trivially acyclic.
//! * **Work stealing, not work sharing.** A session is submitted to the
//!   shard derived from its id; an idle worker drains its own shard
//!   first, then scans the others. Steal order rotates with the worker
//!   index so two idle workers don't contend on the same victim.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Monotonic virtual time in milliseconds, shared by the service, its
/// supervisors, and every injected stall. Purely logical: advancing it
/// costs an atomic add, never a sleep.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks_ms: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.ticks_ms.load(Ordering::Acquire)
    }

    /// Advance the clock by `delta_ms` and return the new time.
    pub fn advance_ms(&self, delta_ms: u64) -> u64 {
        self.ticks_ms.fetch_add(delta_ms, Ordering::AcqRel) + delta_ms
    }

    /// Jump the clock forward to `target_ms` if it is still behind it
    /// (CAS max — concurrent fast-forwards and advances compose safely).
    pub fn fast_forward(&self, target_ms: u64) {
        let mut cur = self.ticks_ms.load(Ordering::Acquire);
        while cur < target_ms {
            match self.ticks_ms.compare_exchange_weak(
                cur,
                target_ms,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Sharded run queue of session ids plus a virtual-time park list.
///
/// The queue holds *ready* sessions; a session waiting out a supervisor
/// backoff is parked with a virtual wake-up time and re-submitted by
/// [`Scheduler::unpark_due`] once the clock passes it.
#[derive(Debug)]
pub struct Scheduler {
    shards: Vec<Mutex<VecDeque<u64>>>,
    parked: Mutex<Vec<(u64, u64)>>, // (wake_ms, session_id)
    queued: AtomicUsize,
    dispatches: AtomicU64,
}

impl Scheduler {
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            parked: Mutex::new(Vec::new()),
            queued: AtomicUsize::new(0),
            dispatches: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, session_id: u64) -> usize {
        (session_id as usize) % self.shards.len()
    }

    /// Number of ready sessions currently queued across all shards.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    /// Total dispatches handed out so far (the global dispatch sequence
    /// number used for the fairness bound).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Acquire)
    }

    /// Enqueue a ready session on its home shard.
    pub fn submit(&self, session_id: u64) {
        self.queued.fetch_add(1, Ordering::AcqRel);
        // PANIC-SAFETY: shard_of computes index % len, in-bounds by
        // construction (new() guarantees at least one shard).
        let mut shard = self.shards[self.shard_of(session_id)].lock();
        shard.push_back(session_id);
    }

    /// Park a session until virtual time `wake_ms` (supervisor backoff).
    pub fn park(&self, session_id: u64, wake_ms: u64) {
        let mut parked = self.parked.lock();
        parked.push((wake_ms, session_id));
    }

    /// Move every parked session whose wake time has passed back onto the
    /// run queue. Returns how many woke. The due list is collected under
    /// the parked lock, then submitted after it is released (no nested
    /// shard+parked locking).
    pub fn unpark_due(&self, now_ms: u64) -> usize {
        let due: Vec<u64> = {
            let mut parked = self.parked.lock();
            let mut due = Vec::new();
            parked.retain(|&(wake_ms, id)| {
                if wake_ms <= now_ms {
                    due.push(id);
                    false
                } else {
                    true
                }
            });
            due
        };
        let woke = due.len();
        for id in due {
            self.submit(id);
        }
        woke
    }

    /// Earliest parked wake-up time, if any session is parked.
    pub fn next_wake_ms(&self) -> Option<u64> {
        let parked = self.parked.lock();
        parked.iter().map(|&(wake_ms, _)| wake_ms).min()
    }

    /// Number of parked sessions.
    pub fn parked_len(&self) -> usize {
        self.parked.lock().len()
    }

    /// Pop the next ready session for `worker`: its home shard first,
    /// then steal from the others in rotating order. Returns the session
    /// id and this dispatch's global sequence number.
    pub fn try_next(&self, worker: usize) -> Option<(u64, u64)> {
        let n = self.shards.len();
        for probe in 0..n {
            let shard_idx = (worker + probe) % n;
            let popped = {
                // PANIC-SAFETY: shard_idx is taken % n = shards.len().
                let mut shard = self.shards[shard_idx].lock();
                shard.pop_front()
            };
            if let Some(id) = popped {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                let seq = self.dispatches.fetch_add(1, Ordering::AcqRel);
                return Some((id, seq));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_fast_forwards_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        assert_eq!(clock.advance_ms(5), 5);
        clock.fast_forward(3); // behind: no-op
        assert_eq!(clock.now_ms(), 5);
        clock.fast_forward(40);
        assert_eq!(clock.now_ms(), 40);
    }

    #[test]
    fn submit_and_steal_covers_all_shards() {
        let sched = Scheduler::new(4);
        for id in 0..8u64 {
            sched.submit(id);
        }
        assert_eq!(sched.queued(), 8);
        // A single worker must drain every shard via stealing.
        let mut seen = Vec::new();
        while let Some((id, _seq)) = sched.try_next(1) {
            seen.push(id);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8u64).collect::<Vec<_>>());
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn parked_sessions_wake_only_when_due() {
        let sched = Scheduler::new(2);
        sched.park(7, 100);
        sched.park(9, 50);
        assert_eq!(sched.next_wake_ms(), Some(50));
        assert_eq!(sched.unpark_due(49), 0);
        assert_eq!(sched.unpark_due(50), 1);
        assert_eq!(sched.queued(), 1);
        assert_eq!(sched.try_next(0).map(|(id, _)| id), Some(9));
        assert_eq!(sched.unpark_due(1000), 1);
        assert_eq!(sched.try_next(0).map(|(id, _)| id), Some(7));
        assert_eq!(sched.parked_len(), 0);
    }

    #[test]
    fn dispatch_sequence_is_global_and_monotonic() {
        let sched = Scheduler::new(3);
        sched.submit(1);
        sched.submit(2);
        let (_, s0) = sched.try_next(0).unwrap();
        let (_, s1) = sched.try_next(2).unwrap();
        assert!(s1 > s0);
        assert_eq!(sched.dispatches(), 2);
    }
}
