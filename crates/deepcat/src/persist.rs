//! Model persistence: save and load trained agents as JSON checkpoints, so
//! a model trained offline once can serve many online tuning requests —
//! the deployment split the paper's architecture (Fig. 1) assumes.

use crate::guardrail::GuardrailSnapshot;
use crate::online::StepRecord;
use crate::resilience::ResilienceSnapshot;
use crate::td3::{Td3Agent, Td3Checkpoint};
use rl::Transition;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// Crash-safe file replacement: write to a temp file *in the target
/// directory* (rename is only atomic within a filesystem), fsync the
/// data, atomically rename over `path`, then fsync the directory so the
/// rename itself is durable. A crash at any point leaves either the old
/// complete file or the new complete file — never a torn mix.
fn atomic_write(path: &Path, body: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Save a TD3 agent's checkpoint to `path` (JSON, atomic replace).
pub fn save_td3(agent: &Td3Agent, path: &Path) -> io::Result<()> {
    let cp = agent.checkpoint();
    let body =
        serde_json::to_string(&cp).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    atomic_write(path, body.as_bytes())
}

/// Load a TD3 agent from a checkpoint written by [`save_td3`].
/// `seed` re-seeds the exploration noise only.
pub fn load_td3(path: &Path, seed: u64) -> io::Result<Td3Agent> {
    let body = std::fs::read_to_string(path)?;
    let cp: Td3Checkpoint =
        serde_json::from_str(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Td3Agent::from_checkpoint(cp, seed))
}

/// Full state of an in-flight resilient online session, written after
/// every completed step so a killed run resumes bit-identically: agent
/// weights, both RNG streams (the agent's target-smoothing RNG and the
/// session loop's exploration/sampling RNG, as 4 xoshiro words each),
/// replay contents, per-step records, spent budget, the simulator's
/// evaluation counter (fault schedules key off it), and the observed
/// environment state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineCheckpoint {
    pub tuner: String,
    /// First step the resumed session should execute.
    pub next_step: usize,
    pub total_steps: usize,
    pub agent: Td3Checkpoint,
    pub agent_rng: Vec<u64>,
    pub loop_rng: Vec<u64>,
    pub replay: Vec<Transition>,
    pub steps: Vec<StepRecord>,
    pub spent_s: f64,
    pub eval_count: u64,
    pub env_state: Vec<f64>,
    pub step_in_episode: usize,
    pub resilience: ResilienceSnapshot,
    /// Guardrail state (canary baseline, watchdog window, envelope);
    /// `None` when the session runs without guardrails.
    pub guardrail: Option<GuardrailSnapshot>,
}

/// Save an online-session checkpoint to `path` (JSON, atomic replace —
/// a crash mid-write must never corrupt the only copy).
pub fn save_online_checkpoint(cp: &OnlineCheckpoint, path: &Path) -> io::Result<()> {
    let body =
        serde_json::to_string(cp).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    atomic_write(path, body.as_bytes())
}

/// Load an online-session checkpoint written by [`save_online_checkpoint`].
pub fn load_online_checkpoint(path: &Path) -> io::Result<OnlineCheckpoint> {
    let body = std::fs::read_to_string(path)?;
    serde_json::from_str(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use rl::{Batch, Transition};

    /// Unique per-test scratch directory (pid + per-process counter, so
    /// concurrent `cargo test` invocations never collide), removed on
    /// drop.
    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "deepcat-persist-test-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }

        fn join(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn trained() -> Td3Agent {
        let mut cfg = AgentConfig::for_dims(2, 3);
        cfg.hidden = vec![8, 8];
        let mut agent = Td3Agent::new(cfg, 1);
        for _ in 0..50 {
            let transitions: Vec<Transition> = (0..8)
                .map(|i| {
                    let s = vec![0.1, 0.2];
                    let a = vec![0.3, 0.5, 0.7];
                    Transition::new(s.clone(), a, 0.5 - 0.01 * i as f64, s, true)
                })
                .collect();
            let n = transitions.len();
            agent.train_step(&Batch {
                transitions,
                weights: vec![1.0; n],
                indices: vec![0; n],
            });
        }
        agent
    }

    #[test]
    fn round_trip_preserves_policy_and_critics() {
        let agent = trained();
        let dir = TestDir::new("round-trip");
        let path = dir.join("agent.json");
        save_td3(&agent, &path).unwrap();
        let loaded = load_td3(&path, 99).unwrap();
        let s = [0.1, 0.2];
        assert_eq!(agent.select_action(&s), loaded.select_action(&s));
        let a = [0.3, 0.5, 0.7];
        assert_eq!(agent.q_values(&s, &a), loaded.q_values(&s, &a));
        assert_eq!(agent.train_steps(), loaded.train_steps());
    }

    #[test]
    fn loaded_agent_continues_training() {
        let agent = trained();
        let dir = TestDir::new("continue");
        let path = dir.join("agent.json");
        save_td3(&agent, &path).unwrap();
        let mut loaded = load_td3(&path, 5).unwrap();
        let transitions: Vec<Transition> = (0..8)
            .map(|_| {
                Transition::new(
                    vec![0.1, 0.2],
                    vec![0.5, 0.5, 0.5],
                    0.3,
                    vec![0.1, 0.2],
                    true,
                )
            })
            .collect();
        let n = transitions.len();
        let (stats, _) = loaded.train_step(&Batch {
            transitions,
            weights: vec![1.0; n],
            indices: vec![0; n],
        });
        assert!(stats.critic1_loss.is_finite());
        assert!(!loaded.diverged());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_td3(Path::new("/nonexistent/agent.json"), 0).is_err());
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let agent = trained();
        let dir = TestDir::new("atomic");
        let path = dir.join("agent.json");
        save_td3(&agent, &path).unwrap();
        // Overwrite the existing checkpoint: still loadable, and the
        // temp file used for the atomic replace must be gone.
        save_td3(&agent, &path).unwrap();
        assert!(load_td3(&path, 1).is_ok());
        let leftovers: Vec<_> = std::fs::read_dir(&dir.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file survived: {leftovers:?}");
    }
}
