//! The Twin-Q Optimizer (Algorithm 1 of the paper).
//!
//! Before paying for a real configuration evaluation during online tuning,
//! score the recommended action with both offline-trained critics. If
//! `min(Q1, Q2)` falls below the threshold `Q_th`, the action is deemed
//! sub-optimal: perturb it with Gaussian noise and re-score, looping until
//! an estimated close-to-optimal action emerges. No configuration is
//! actually executed during the search, so sub-optimal candidates are
//! filtered at negligible cost.

use crate::td3::Td3Agent;
use rl::GaussianNoise;
use serde::{Deserialize, Serialize};

/// Twin-Q Optimizer parameters.
///
/// ```
/// use deepcat::{AgentConfig, Td3Agent, TwinQOptimizer};
/// use rand::SeedableRng;
///
/// let agent = Td3Agent::new(AgentConfig::for_dims(2, 4), 7);
/// let opt = TwinQOptimizer::default(); // Q_th = 0.3, as the paper chooses
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let result = opt.optimize(&agent, &[0.1, 0.2], vec![0.5; 4], &mut rng);
/// assert!(result.action.iter().all(|v| (0.0..=1.0).contains(v)));
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TwinQOptimizer {
    /// Q-value threshold `Q_th` separating close-to-optimal from
    /// sub-optimal actions. The paper settles on 0.3 (Fig. 12).
    pub q_threshold: f64,
    /// Std-dev of the Gaussian perturbation `ε`.
    pub sigma: f64,
    /// Safety cap on perturbation rounds (Algorithm 1's loop has no bound;
    /// a cap keeps pathological critics from spinning forever).
    pub max_iters: usize,
    /// Number of jittered critic queries averaged per candidate. A single
    /// critic read can be exploited by the perturbation search (the
    /// optimizer's curse — the max over many candidates picks up
    /// estimation noise); averaging a few local queries smooths it out,
    /// the same remedy TD3 applies to its target policy.
    pub smoothing_samples: usize,
}

impl Default for TwinQOptimizer {
    fn default() -> Self {
        Self {
            q_threshold: 0.3,
            sigma: 0.08,
            max_iters: 64,
            smoothing_samples: 4,
        }
    }
}

/// Outcome of one optimization call.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TwinQResult {
    /// The action to actually evaluate.
    pub action: Vec<f64>,
    /// `min(Q1, Q2)` of the original recommended action.
    pub initial_q: f64,
    /// `min(Q1, Q2)` of the returned action.
    pub final_q: f64,
    /// Number of perturbation rounds performed (0 ⇒ the original action
    /// already cleared the threshold).
    pub iterations: usize,
    /// Whether the returned action clears `Q_th` (false only when the
    /// iteration cap was hit; the best-scoring candidate is returned).
    pub accepted: bool,
}

impl TwinQOptimizer {
    /// With the paper's chosen threshold `Q_th = 0.3`.
    pub fn with_threshold(q_threshold: f64) -> Self {
        Self {
            q_threshold,
            ..Self::default()
        }
    }

    /// The smoothed sub-optimality indicator: mean of `min(Q1, Q2)` over
    /// the action and a few jittered copies.
    pub fn smoothed_min_q(
        &self,
        agent: &Td3Agent,
        state: &[f64],
        action: &[f64],
        rng: &mut impl rand::Rng,
    ) -> f64 {
        let _span = telemetry::span!("twinq.rescore");
        let n = self.smoothing_samples.max(1);
        if n == 1 {
            return agent.min_q(state, action);
        }
        let jitter = GaussianNoise::new(action.len(), self.sigma * 0.25);
        let mut sum = agent.min_q(state, action);
        for _ in 1..n {
            let a = jitter.perturb(action, rng);
            sum += agent.min_q(state, &a);
        }
        sum / n as f64
    }

    /// Algorithm 1: optimize `action` for `state` under `agent`'s twin
    /// critics.
    pub fn optimize(
        &self,
        agent: &Td3Agent,
        state: &[f64],
        action: Vec<f64>,
        rng: &mut impl rand::Rng,
    ) -> TwinQResult {
        let noise = GaussianNoise::new(action.len(), self.sigma);
        let loop_span = telemetry::span!("twinq.loop");
        let initial_q = self.smoothed_min_q(agent, state, &action, rng);
        let mut current = action;
        let mut current_q = initial_q;
        let (mut best, mut best_q) = (current.clone(), current_q);
        let mut iterations = 0;
        while current_q < self.q_threshold && iterations < self.max_iters {
            current = noise.perturb(&current, rng);
            current_q = self.smoothed_min_q(agent, state, &current, rng);
            if current_q > best_q {
                best_q = current_q;
                best = current.clone();
            }
            iterations += 1;
        }
        drop(loop_span);
        let result = if current_q >= self.q_threshold {
            TwinQResult {
                action: current,
                initial_q,
                final_q: current_q,
                iterations,
                accepted: true,
            }
        } else {
            // Cap hit: fall back to the best candidate seen.
            TwinQResult {
                action: best,
                initial_q,
                final_q: best_q,
                iterations,
                accepted: false,
            }
        };
        telemetry::inc("twinq.calls", 1);
        // Each perturbation round scored a candidate with the critics
        // instead of paying for a real evaluation.
        telemetry::inc("twinq.eval_skipped", result.iterations as u64);
        if result.accepted {
            telemetry::inc("twinq.accepted", 1);
        }
        telemetry::event!(
            "twinq.decision",
            iterations = result.iterations,
            initial_q = result.initial_q,
            final_q = result.final_q,
            accepted = result.accepted,
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rl::{Batch, Transition};

    fn trained_agent() -> Td3Agent {
        // Bandit whose reward peaks at a* = (0.8, 0.2, 0.5): after training,
        // the critics score actions near a* highly.
        let mut cfg = AgentConfig::for_dims(2, 3);
        cfg.hidden = vec![16, 16];
        let mut agent = Td3Agent::new(cfg, 11);
        let target = [0.8, 0.2, 0.5];
        for _ in 0..800 {
            let mut transitions = Vec::new();
            for _ in 0..16 {
                let s = vec![0.1, 0.2];
                let a = agent.select_action_noisy(&s);
                let d2: f64 = a.iter().zip(&target).map(|(x, t)| (x - t) * (x - t)).sum();
                transitions.push(Transition::new(s.clone(), a, 1.0 - d2, s, true));
            }
            let n = transitions.len();
            agent.train_step(&Batch {
                transitions,
                weights: vec![1.0; n],
                indices: vec![0; n],
            });
        }
        agent
    }

    #[test]
    fn good_actions_pass_untouched() {
        let agent = trained_agent();
        let mut rng = StdRng::seed_from_u64(0);
        let state = [0.1, 0.2];
        let good = agent.select_action(&state);
        let opt = TwinQOptimizer {
            q_threshold: 0.2,
            sigma: 0.08,
            max_iters: 64,
            smoothing_samples: 4,
        };
        let res = opt.optimize(&agent, &state, good.clone(), &mut rng);
        assert!(res.accepted);
        assert_eq!(res.iterations, 0, "good action must not be perturbed");
        assert_eq!(res.action, good);
    }

    #[test]
    fn bad_actions_are_improved() {
        let agent = trained_agent();
        let mut rng = StdRng::seed_from_u64(1);
        let state = [0.1, 0.2];
        let bad = vec![0.05, 0.95, 0.05]; // far from the bandit optimum
        let q_bad = agent.min_q(&state, &bad);
        // Set the threshold above the bad action's score so the optimizer
        // must search; the policy's own action comfortably clears it.
        let q_good = agent.min_q(&state, &agent.select_action(&state));
        assert!(q_good > q_bad, "critics must rank the policy action higher");
        let threshold = q_bad + 0.6 * (q_good - q_bad);
        let opt = TwinQOptimizer {
            q_threshold: threshold,
            sigma: 0.1,
            max_iters: 512,
            smoothing_samples: 4,
        };
        let res = opt.optimize(&agent, &state, bad, &mut rng);
        assert!(res.final_q > q_bad, "{} vs {q_bad}", res.final_q);
        assert!(res.iterations > 0);
    }

    #[test]
    fn iteration_cap_returns_best_seen() {
        let agent = trained_agent();
        let mut rng = StdRng::seed_from_u64(2);
        let state = [0.1, 0.2];
        // Impossible threshold forces the cap.
        let opt = TwinQOptimizer {
            q_threshold: 1e6,
            sigma: 0.05,
            max_iters: 16,
            smoothing_samples: 1,
        };
        let res = opt.optimize(&agent, &state, vec![0.5, 0.5, 0.5], &mut rng);
        assert!(!res.accepted);
        assert_eq!(res.iterations, 16);
        assert!(
            res.final_q >= res.initial_q,
            "returns the best candidate seen"
        );
    }

    #[test]
    fn actions_stay_in_unit_box() {
        let agent = trained_agent();
        let mut rng = StdRng::seed_from_u64(3);
        let opt = TwinQOptimizer {
            q_threshold: 10.0,
            sigma: 0.3,
            max_iters: 32,
            smoothing_samples: 2,
        };
        let res = opt.optimize(&agent, &[0.1, 0.2], vec![0.0, 1.0, 0.5], &mut rng);
        assert!(res.action.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn default_matches_paper_settings() {
        let opt = TwinQOptimizer::default();
        assert_eq!(opt.q_threshold, 0.3);
    }
}
