//! Parallel offline training: multiple simulated environments collect
//! transitions concurrently while the learner thread takes gradient steps.
//!
//! The paper spends 3–4 days collecting offline experience on one physical
//! cluster; against a simulator the collection itself parallelizes
//! trivially, so this module provides the natural scale-out: `workers`
//! environment threads run the current policy (with exploration noise) and
//! stream transitions over a crossbeam channel; the learner folds them
//! into the replay memory, trains, and periodically broadcasts refreshed
//! actor weights back to the workers.
//!
//! Training is *not* bit-reproducible across worker counts (transition
//! arrival order is scheduling-dependent), but it is seeded per worker, so
//! the collected experience distribution is stable.

use crate::config::AgentConfig;
use crate::envwrap::TuningEnv;
use crate::offline::{OfflineConfig, TrainLog};
use crate::td3::Td3Agent;
use crossbeam::channel;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::Transition;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Configuration for parallel collection.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Environment worker threads.
    pub workers: usize,
    /// Gradient steps the learner takes per received transition.
    pub train_per_transition: usize,
    /// The learner pushes fresh actor weights to workers every this many
    /// gradient steps.
    pub sync_every: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            train_per_transition: 1,
            sync_every: 50,
        }
    }
}

/// Outcome counters of a parallel training run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelStats {
    pub transitions_collected: u64,
    pub gradient_steps: u64,
    pub weight_syncs: u64,
}

/// Train a TD3 agent with parallel environment collection.
///
/// `make_env` builds one environment per worker (each must carry its own
/// seed); `cfg.iterations` counts *gradient steps* so results are
/// budget-comparable with [`crate::offline::train_td3`].
pub fn train_td3_parallel(
    make_env: impl Fn(usize) -> TuningEnv + Sync,
    agent_cfg: AgentConfig,
    cfg: &OfflineConfig,
    par: &ParallelConfig,
) -> (Td3Agent, TrainLog, ParallelStats) {
    assert!(par.workers >= 1);
    let mut agent = Td3Agent::new(agent_cfg.clone(), cfg.seed);
    let mut replay = cfg.replay.build(cfg.capacity);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9A11E7);
    let mut log = TrainLog::default();
    let mut stats = ParallelStats::default();

    // Workers read the actor snapshot through an RwLock; the learner
    // replaces it on sync. A bounded channel applies back-pressure so
    // collection cannot run unboundedly ahead of training.
    let shared_actor: Arc<RwLock<Td3Agent>> = Arc::new(RwLock::new(agent.clone()));
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::bounded::<Transition>(1024);

    crossbeam::scope(|scope| {
        for worker in 0..par.workers {
            let tx = tx.clone();
            let shared_actor = Arc::clone(&shared_actor);
            let stop = Arc::clone(&stop);
            let make_env = &make_env;
            let agent_cfg = agent_cfg.clone();
            let seed = cfg.seed ^ ((worker as u64 + 1) << 20);
            scope.spawn(move |_| {
                let mut env = make_env(worker);
                let mut wrng = StdRng::seed_from_u64(seed);
                let mut state = env.reset();
                let mut steps = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let action = if steps < agent_cfg.warmup_steps / par.workers.max(1) {
                        (0..agent_cfg.action_dim)
                            .map(|_| wrng.gen::<f64>())
                            .collect()
                    } else {
                        // Exploration noise is applied locally so workers
                        // decorrelate even with identical snapshots.
                        let base = shared_actor.read().select_action(&state);
                        base.iter()
                            .map(|&a| {
                                (a + agent_cfg.exploration_noise * (wrng.gen::<f64>() * 2.0 - 1.0))
                                    .clamp(0.0, 1.0)
                            })
                            .collect::<Vec<f64>>()
                    };
                    let out = env.step(&action);
                    let t = Transition::new(
                        state,
                        action,
                        out.reward,
                        out.next_state.clone(),
                        out.done,
                    );
                    state = if out.done {
                        env.reset()
                    } else {
                        out.next_state
                    };
                    steps += 1;
                    if tx.send(t).is_err() {
                        break; // learner finished
                    }
                }
            });
        }
        drop(tx);

        // Learner loop.
        let min_fill = agent_cfg.warmup_steps.max(agent_cfg.batch_size);
        while stats.gradient_steps < cfg.iterations as u64 {
            let Ok(t) = rx.recv() else { break };
            let reward = t.reward;
            replay.push(t);
            stats.transitions_collected += 1;
            if replay.len() < min_fill {
                continue;
            }
            for _ in 0..par.train_per_transition {
                if stats.gradient_steps >= cfg.iterations as u64 {
                    break;
                }
                if let Some(batch) = replay.sample(agent_cfg.batch_size, &mut rng) {
                    let (train_stats, tds) = agent.train_step(&batch);
                    replay.update_priorities(&batch.indices, &tds);
                    stats.gradient_steps += 1;
                    if stats.gradient_steps % cfg.log_every as u64 == 0 {
                        log.records.push(crate::offline::IterRecord {
                            iteration: stats.gradient_steps as usize,
                            reward,
                            min_q: train_stats.mean_min_q,
                            exec_time_s: 0.0,
                        });
                    }
                    if stats.gradient_steps % par.sync_every as u64 == 0 {
                        *shared_actor.write() = agent.clone();
                        stats.weight_syncs += 1;
                    }
                }
            }
        }
        stop.store(true, Ordering::SeqCst);
        // Drain remaining sends so workers unblock and exit.
        while rx.try_recv().is_ok() {}
    })
    // PANIC-SAFETY: propagating a worker panic is the intended failure
    // mode of the parallel trainer.
    .expect("worker panicked");

    (agent, log, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    fn agent_cfg() -> AgentConfig {
        let mut c = AgentConfig::for_dims(9, 32);
        c.hidden = vec![32, 32];
        c.warmup_steps = 128;
        c.batch_size = 32;
        c
    }

    fn make_env(worker: usize) -> TuningEnv {
        TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            1000 + worker as u64,
        )
    }

    #[test]
    fn parallel_training_reaches_the_gradient_budget() {
        let cfg = OfflineConfig::deepcat(400, 3);
        let par = ParallelConfig {
            workers: 4,
            ..Default::default()
        };
        let (agent, log, stats) = train_td3_parallel(make_env, agent_cfg(), &cfg, &par);
        assert_eq!(stats.gradient_steps, 400);
        assert!(stats.transitions_collected >= 128, "{stats:?}");
        assert!(stats.weight_syncs >= 1);
        assert!(!agent.diverged());
        assert!(!log.records.is_empty());
    }

    #[test]
    fn parallel_training_produces_a_useful_policy() {
        let cfg = OfflineConfig::deepcat(900, 4);
        let par = ParallelConfig {
            workers: 4,
            ..Default::default()
        };
        let (mut agent, _, _) = train_td3_parallel(make_env, agent_cfg(), &cfg, &par);
        let mut live = TuningEnv::for_workload(
            Cluster::cluster_a().with_background_load(0.15),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            7777,
        );
        let report = crate::online::online_tune_td3(
            &mut agent,
            &mut live,
            &crate::online::OnlineConfig::deepcat(5),
            "DeepCAT",
        );
        assert!(report.speedup() > 2.0, "speedup {}", report.speedup());
    }

    #[test]
    fn single_worker_also_works() {
        let cfg = OfflineConfig::td3_uniform(150, 5);
        let par = ParallelConfig {
            workers: 1,
            ..Default::default()
        };
        let (_, _, stats) = train_td3_parallel(make_env, agent_cfg(), &cfg, &par);
        assert_eq!(stats.gradient_steps, 150);
    }
}
