//! Multi-tenant `TuningService`: N independent tuning sessions
//! multiplexed as message-driven session actors over the sharded
//! work-stealing [`crate::scheduler::Scheduler`], with robustness as the
//! headline contract (ROADMAP item 2).
//!
//! Each actor runs its [`SessionEngine`] steps inside a panic boundary
//! (`std::panic::catch_unwind` — safe code only), so a panicking or
//! deadline-blown session is *contained*: it is marked crashed and handed
//! to its per-session [`Supervisor`], which grants bounded restarts with
//! virtual-clock exponential backoff and quarantines restart storms.
//! Recovery goes through the session's PR 9 [`crate::commitlog::Commitlog`]
//! — a restarted actor re-creates its engine with `resume = true` and the
//! durable snapshot + tail replay rebuild the exact pre-crash state, so a
//! contained crash never changes a session's tuning result, and sibling
//! sessions are provably unperturbed (their step streams stay
//! byte-identical to a fault-free run).
//!
//! The service also provides:
//!
//! * **Admission control** — a capacity bound and a drain flag; both
//!   reject with a reason ([`AdmitError`]) instead of queueing unbounded
//!   work.
//! * **Bounded mailboxes with backpressure** — control messages
//!   ([`SessionMsg`]) beyond the per-session cap are rejected with
//!   [`PostError::MailboxFull`] and counted, never buffered unbounded.
//! * **Per-step deadlines** — an injected (or real, once engines do wall
//!   work) stall that exceeds [`ServiceConfig::step_deadline_s`] crashes
//!   the session; the stall is charged to the service's virtual clock and
//!   the session's `deadline_charged_s`, *not* into the engine's step
//!   records — which is exactly why the survivors' streams stay
//!   byte-identical.
//! * **Graceful drain** — [`TuningService::begin_drain`] stops intake;
//!   workers finish in-flight steps, checkpoint every live session to its
//!   commitlog, flush telemetry, and stop.
//! * **Deterministic fault injection** — a seeded [`ServiceFaultPlan`]
//!   injects panics, stalls, and storage faults at the scheduler boundary
//!   (never mid-step), so the whole supervision path is testable and
//!   every run of a plan produces the same virtual timeline.

use crate::online::OnlineConfig;
use crate::resilience::{
    ChaosSessionConfig, EngineInit, EngineStep, ResilientEnv, SessionEngine, SessionOutcome,
};
use crate::scheduler::{Scheduler, VirtualClock};
use crate::storage::{shared_storage, FaultyStorage, RealStorage, StoragePlan};
use crate::supervisor::{RestartPolicy, SessionPhase, Supervisor, SupervisorVerdict};
use crate::td3::Td3Agent;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use telemetry::SessionCtx;

/// Service-wide knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Admission cap: at most this many sessions, ever.
    pub max_sessions: usize,
    /// Bounded per-session mailbox capacity.
    pub mailbox_cap: usize,
    /// Restart budget + backoff for every session's supervisor.
    pub restart: RestartPolicy,
    /// A single step (including any injected stall) must finish within
    /// this many virtual seconds, or the session is crashed and resumed
    /// from its commitlog.
    pub step_deadline_s: f64,
    /// Worker threads stepping sessions.
    pub workers: usize,
    /// Run-queue shards (defaults to `workers`).
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            mailbox_cap: 8,
            restart: RestartPolicy::default(),
            step_deadline_s: 120.0,
            workers: 4,
            shards: 0,
        }
    }
}

/// Control message for one session actor. Stepping needs no explicit
/// messages — a live session is perpetually scheduled and each dispatch
/// runs one step (an implicit `Step`); the mailbox carries the rarer
/// control-plane requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionMsg {
    /// Run one online step (the implicit default).
    Step,
    /// Force a durable snapshot now.
    Checkpoint,
    /// Checkpoint and stop this session (per-session drain).
    Stop,
}

/// Why admission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The service is draining: no new intake.
    Draining,
    /// The admission cap is reached.
    Full { cap: usize },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Draining => write!(f, "service is draining"),
            AdmitError::Full { cap } => write!(f, "service is full (cap {cap})"),
        }
    }
}

/// Why a posted message was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PostError {
    /// No such session id.
    UnknownSession,
    /// The session already reached a terminal phase.
    Terminal,
    /// The bounded mailbox is full — backpressure, not buffering.
    MailboxFull { cap: usize },
}

impl fmt::Display for PostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostError::UnknownSession => write!(f, "unknown session"),
            PostError::Terminal => write!(f, "session is terminal"),
            PostError::MailboxFull { cap } => write!(f, "mailbox full (cap {cap})"),
        }
    }
}

/// Everything needed to (re)create a session's engine. The spec is
/// immutable after admission; a restart clones it, flips `resume` on,
/// and lets the commitlog rebuild the state.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Human-readable session name (becomes the telemetry label when the
    /// spec does not carry an explicit [`SessionCtx`]).
    pub name: String,
    pub agent: Td3Agent,
    pub env: ResilientEnv,
    pub cfg: OnlineConfig,
    pub session: ChaosSessionConfig,
    pub tuner_name: String,
}

/// One injected fault, applied at the scheduler boundary (before a step
/// runs), so the engine's own state is never corrupted mid-step and a
/// commitlog resume replays the interrupted step cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServiceFault {
    /// Panic the dispatch (contained by `catch_unwind`); fires once.
    Panic,
    /// Stall the dispatch for this many virtual seconds before the step;
    /// a stall beyond the step deadline crashes the session. Fires once.
    Stall { stall_s: f64 },
    /// Panic on *every* dispatch of this session from the trigger step on
    /// — a restart storm that must end in quarantine.
    PanicLoop,
    /// Wrap the session's commitlog storage in a [`FaultyStorage`] that
    /// simulates a process death at the `at_op`-th storage operation
    /// (applied at admission; fires once across incarnations).
    Storage { at_op: u64 },
}

/// A fault bound to one session (by admission order) and one step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceFaultEvent {
    /// Admission-order index of the target session (0-based).
    pub session: usize,
    /// The fault triggers when the session is about to run this step.
    pub step: usize,
    pub fault: ServiceFault,
}

/// Seeded, deterministic fault schedule for a whole service run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServiceFaultPlan {
    pub name: String,
    pub seed: u64,
    pub events: Vec<ServiceFaultEvent>,
}

/// Named service fault plans accepted by `deepcat-tune serve --faults`.
pub const SERVICE_PLAN_NAMES: &[&str] = &["none", "panic3", "storm", "disk"];

impl ServiceFaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        Self {
            name: "none".into(),
            seed: 0,
            events: Vec::new(),
        }
    }

    fn derived_step(seed: u64, idx: u64, steps: usize) -> usize {
        if steps < 2 {
            return 0;
        }
        // Mid-run: step in [1, steps-1], derived from the seed so two
        // runs of the same plan fault at the same point.
        let h =
            (seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        1 + (h % (steps as u64 - 1)) as usize
    }

    /// Build one of the named plans, scaled to `sessions` sessions each
    /// running `steps` steps. Returns `None` for an unknown name.
    pub fn named(name: &str, seed: u64, sessions: usize, steps: usize) -> Option<Self> {
        let sessions = sessions.max(1);
        let events = match name {
            "none" => Vec::new(),
            // The ci.sh containment proof: panic two sessions and stall a
            // third past the deadline, all mid-run. With 8 sessions this
            // touches sessions 2, 5, and 7 and leaves 5 untouched.
            "panic3" => vec![
                ServiceFaultEvent {
                    session: 2 % sessions,
                    step: Self::derived_step(seed, 0, steps),
                    fault: ServiceFault::Panic,
                },
                ServiceFaultEvent {
                    session: 5 % sessions,
                    step: Self::derived_step(seed, 1, steps),
                    fault: ServiceFault::Stall { stall_s: 1.0e6 },
                },
                ServiceFaultEvent {
                    session: 7 % sessions,
                    step: Self::derived_step(seed, 2, steps),
                    fault: ServiceFault::Panic,
                },
            ],
            // A restart storm: one session panics on every dispatch and
            // must end quarantined after the restart budget.
            "storm" => vec![ServiceFaultEvent {
                session: 1 % sessions,
                step: Self::derived_step(seed, 0, steps),
                fault: ServiceFault::PanicLoop,
            }],
            // A storage device that dies once mid-run; the session
            // resumes from the surviving commitlog prefix.
            "disk" => vec![ServiceFaultEvent {
                session: 3 % sessions,
                step: 0,
                fault: ServiceFault::Storage {
                    at_op: 6 + seed % 4,
                },
            }],
            _ => return None,
        };
        Some(Self {
            name: name.into(),
            seed,
            events,
        })
    }
}

/// Mutable per-session state, guarded by one mutex per session. A
/// session id is in the run queue at most once, so at most one worker
/// touches a slot at a time; the mutex exists for the control plane
/// (post/summaries) racing the data plane.
struct SlotState {
    phase: SessionPhase,
    engine: Option<Box<SessionEngine>>,
    mailbox: VecDeque<SessionMsg>,
    supervisor: Supervisor,
    outcome: Option<SessionOutcome>,
    mailbox_rejections: u64,
    deadline_charged_s: f64,
    drain_ms: u64,
    completed_steps: usize,
    resumed: bool,
    last_dispatch_seq: u64,
}

struct SessionSlot {
    id: u64,
    admit_index: usize,
    ctx: SessionCtx,
    spec: SessionSpec,
    state: Mutex<SlotState>,
}

/// Final per-session accounting returned by
/// [`TuningService::take_results`].
#[derive(Debug)]
pub struct SessionResult {
    pub id: u64,
    pub name: String,
    pub phase: SessionPhase,
    /// Terminal outcome; `None` for drained/quarantined-before-outcome
    /// sessions.
    pub outcome: Option<SessionOutcome>,
    pub restarts: u32,
    pub resumed: bool,
    pub mailbox_rejections: u64,
    pub deadline_charged_s: f64,
    pub drain_ms: u64,
    pub completed_steps: usize,
}

/// What `dispatch` decided to do after releasing the slot lock.
enum StepPlan {
    /// Session already terminal (or mid-backoff): nothing to do.
    Skip,
    /// (Re)create the engine; `resume` selects commitlog recovery.
    Create { resume: bool },
    /// Run the popped control message against the live engine.
    Run {
        engine: Box<SessionEngine>,
        msg: SessionMsg,
    },
    /// Drain: checkpoint (if an engine exists) and stop.
    Drain { engine: Option<Box<SessionEngine>> },
}

/// The multi-tenant tuning service. See the module docs for the
/// robustness contract.
pub struct TuningService {
    cfg: ServiceConfig,
    sched: Scheduler,
    clock: VirtualClock,
    slots: RwLock<BTreeMap<u64, Arc<SessionSlot>>>,
    faults: ServiceFaultPlan,
    fired: Mutex<BTreeSet<usize>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    drain_start_ms: AtomicU64,
    live: AtomicUsize,
    inflight: AtomicUsize,
    max_gap: AtomicU64,
}

static PANIC_HOOK: Once = Once::new();

/// Worker threads are named with this prefix; the process panic hook
/// stays silent for them (their panics are injected or contained), while
/// panics anywhere else keep the default backtrace.
const WORKER_THREAD_PREFIX: &str = "deepcat-svc-";

fn install_contained_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let contained = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !contained {
                previous(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload for the
/// `supervisor.panic_contained` event.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn injected_panic(session: u64, step: usize) -> ! {
    // PANIC-SAFETY: deliberate fault injection; every dispatch runs
    // inside the service's catch_unwind boundary, always contained.
    panic!("injected fault: session {session} panicked before step {step}")
}

impl TuningService {
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_faults(cfg, ServiceFaultPlan::none())
    }

    /// A service with a seeded fault schedule applied at the scheduler
    /// boundary.
    pub fn with_faults(cfg: ServiceConfig, faults: ServiceFaultPlan) -> Self {
        install_contained_panic_hook();
        let shards = if cfg.shards == 0 {
            cfg.workers.max(1)
        } else {
            cfg.shards
        };
        Self {
            sched: Scheduler::new(shards),
            clock: VirtualClock::new(),
            slots: RwLock::new(BTreeMap::new()),
            faults,
            fired: Mutex::new(BTreeSet::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            drain_start_ms: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            max_gap: AtomicU64::new(0),
            cfg,
        }
    }

    /// The service's virtual clock (milliseconds).
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Largest observed gap, in global dispatch sequence numbers, between
    /// two consecutive dispatches of the same live session — the fairness
    /// bound the proptests assert on. Backoff parks reset the baseline
    /// (a deliberately parked session is not being starved).
    pub fn max_dispatch_gap(&self) -> u64 {
        self.max_gap.load(Ordering::Acquire)
    }

    /// Sessions not yet in a terminal phase.
    pub fn live_sessions(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Admit a new session. Applies any admission-time storage fault from
    /// the plan, pins the session's telemetry identity, and enqueues it.
    pub fn admit(&self, mut spec: SessionSpec) -> Result<u64, AdmitError> {
        if self.draining.load(Ordering::Acquire) {
            // SESSION-SCOPE: rejected before a session identity exists;
            // deliberately process-wide.
            telemetry::event!(
                "service.rejected",
                name = spec.name.as_str(),
                reason = "draining"
            );
            return Err(AdmitError::Draining);
        }
        let admit_index = {
            let slots = self.slots.read();
            if slots.len() >= self.cfg.max_sessions {
                drop(slots);
                // SESSION-SCOPE: rejected before a session identity
                // exists; deliberately process-wide.
                telemetry::event!(
                    "service.rejected",
                    name = spec.name.as_str(),
                    reason = "full"
                );
                return Err(AdmitError::Full {
                    cap: self.cfg.max_sessions,
                });
            }
            slots.len()
        };
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        let ctx = spec
            .session
            .session
            .clone()
            .unwrap_or_else(|| SessionCtx::new(id, spec.name.as_str()));
        spec.session.session = Some(ctx.clone());

        // Admission-time storage fault: wrap the commitlog device so it
        // dies at the planned operation. The wrapped device lives in the
        // spec, so restarts keep talking to the *same* (already-dead-once)
        // device — `StoragePlan::kill_at` fires exactly once across
        // incarnations.
        for ev in &self.faults.events {
            if ev.session != admit_index {
                continue;
            }
            if let ServiceFault::Storage { at_op } = ev.fault {
                if spec.session.checkpoint.is_some() && spec.session.storage.is_none() {
                    spec.session.storage = Some(shared_storage(FaultyStorage::new(
                        RealStorage::new(),
                        StoragePlan::kill_at(at_op, self.faults.seed ^ admit_index as u64),
                    )));
                }
            }
        }

        let slot = Arc::new(SessionSlot {
            id,
            admit_index,
            ctx: ctx.clone(),
            spec,
            state: Mutex::new(SlotState {
                phase: SessionPhase::Admitted,
                engine: None,
                mailbox: VecDeque::new(),
                supervisor: Supervisor::new(self.cfg.restart.clone()),
                outcome: None,
                mailbox_rejections: 0,
                deadline_charged_s: 0.0,
                drain_ms: 0,
                completed_steps: 0,
                resumed: false,
                last_dispatch_seq: u64::MAX,
            }),
        });
        {
            let mut slots = self.slots.write();
            slots.insert(id, slot);
        }
        self.live.fetch_add(1, Ordering::AcqRel);
        self.sched.submit(id);
        let _scope = telemetry::session_scope(&ctx);
        telemetry::event!("service.admitted", session = id, label = ctx.label());
        Ok(id)
    }

    /// Post a control message to a session's bounded mailbox.
    pub fn post(&self, id: u64, msg: SessionMsg) -> Result<(), PostError> {
        let slot = {
            let slots = self.slots.read();
            slots.get(&id).cloned()
        };
        let Some(slot) = slot else {
            return Err(PostError::UnknownSession);
        };
        let verdict = {
            let mut st = slot.state.lock();
            if st.phase.is_terminal() {
                Err(PostError::Terminal)
            } else if st.mailbox.len() >= self.cfg.mailbox_cap {
                st.mailbox_rejections += 1;
                Err(PostError::MailboxFull {
                    cap: self.cfg.mailbox_cap,
                })
            } else {
                st.mailbox.push_back(msg);
                Ok(())
            }
        };
        if matches!(verdict, Err(PostError::MailboxFull { .. })) {
            let _scope = telemetry::session_scope(&slot.ctx);
            telemetry::event!(
                "mailbox.rejected",
                session = slot.id,
                cap = self.cfg.mailbox_cap
            );
        }
        verdict
    }

    /// Begin a graceful drain: stop intake now; every live session is
    /// checkpointed and stopped at its next dispatch.
    pub fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.drain_start_ms
            .store(self.clock.now_ms(), Ordering::Release);
        // SESSION-SCOPE: a service-wide lifecycle event, deliberately
        // unattributed.
        telemetry::event!(
            "service.drain_start",
            live = self.live.load(Ordering::Acquire)
        );
    }

    /// Run every admitted session to a terminal phase. Blocks the calling
    /// thread; spawns [`ServiceConfig::workers`] scoped worker threads.
    pub fn run(&self) {
        // SESSION-SCOPE: a service-wide lifecycle event, deliberately
        // unattributed.
        telemetry::event!(
            "service.start",
            sessions = self.live.load(Ordering::Acquire),
            workers = self.cfg.workers,
            shards = self.sched.shard_count(),
            faults = self.faults.name.as_str()
        );
        let workers = self.cfg.workers.max(1);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let builder =
                    std::thread::Builder::new().name(format!("{WORKER_THREAD_PREFIX}{w}"));
                builder
                    .spawn_scoped(scope, move || self.worker_loop(w))
                    // PANIC-SAFETY: thread spawning only fails on OS
                    // resource exhaustion; nothing to tune here.
                    .expect("spawn service worker");
            }
        });
        let drained = self.draining.load(Ordering::Acquire);
        if drained {
            // SESSION-SCOPE: a service-wide lifecycle event, deliberately
            // unattributed.
            telemetry::event!(
                "service.drain_complete",
                elapsed_ms = self
                    .clock
                    .now_ms()
                    .saturating_sub(self.drain_start_ms.load(Ordering::Acquire))
            );
        }
        telemetry::drain();
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.live.load(Ordering::Acquire) == 0 {
                return;
            }
            self.sched.unpark_due(self.clock.now_ms());
            if let Some((id, seq)) = self.sched.try_next(worker) {
                self.inflight.fetch_add(1, Ordering::AcqRel);
                self.dispatch(id, seq);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            // Fully idle with sessions parked in backoff: fast-forward the
            // virtual clock to the earliest wake-up instead of sleeping.
            // The inflight check keeps the jump conservative — a racing
            // worker may still be about to resubmit; a missed jump just
            // means another loop iteration.
            if self.sched.queued() == 0 && self.inflight.load(Ordering::Acquire) == 0 {
                if let Some(wake) = self.sched.next_wake_ms() {
                    self.clock.fast_forward(wake);
                    continue;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Look up an unfired scheduler-boundary fault for this session/step.
    /// `PanicLoop` is never marked fired — it keeps panicking from its
    /// trigger step on, which is what drives a restart storm into
    /// quarantine.
    fn pending_fault(&self, admit_index: usize, step: usize) -> Option<ServiceFault> {
        for (i, ev) in self.faults.events.iter().enumerate() {
            if ev.session != admit_index {
                continue;
            }
            match ev.fault {
                ServiceFault::Panic | ServiceFault::Stall { .. } => {
                    if ev.step != step {
                        continue;
                    }
                    let mut fired = self.fired.lock();
                    if fired.insert(i) {
                        return Some(ev.fault);
                    }
                }
                ServiceFault::PanicLoop => {
                    if step >= ev.step {
                        return Some(ev.fault);
                    }
                }
                ServiceFault::Storage { .. } => {} // applied at admission
            }
        }
        None
    }

    /// Flip a session to a terminal phase exactly once, decrementing the
    /// live count. Returns false if it already was terminal.
    fn finish(&self, st: &mut SlotState, phase: SessionPhase, outcome: Option<SessionOutcome>) {
        debug_assert!(phase.is_terminal());
        if st.phase.is_terminal() {
            return;
        }
        st.phase = phase;
        if outcome.is_some() {
            st.outcome = outcome;
        }
        self.live.fetch_sub(1, Ordering::AcqRel);
    }

    fn dispatch(&self, id: u64, seq: u64) {
        let slot = {
            let slots = self.slots.read();
            slots.get(&id).cloned()
        };
        let Some(slot) = slot else {
            return;
        };
        let _scope = telemetry::session_scope(&slot.ctx);

        let plan = {
            let mut st = slot.state.lock();
            if st.last_dispatch_seq != u64::MAX {
                let gap = seq.saturating_sub(st.last_dispatch_seq);
                self.max_gap.fetch_max(gap, Ordering::AcqRel);
            }
            st.last_dispatch_seq = seq;
            if st.phase.is_terminal() {
                StepPlan::Skip
            } else if self.draining.load(Ordering::Acquire) {
                StepPlan::Drain {
                    engine: st.engine.take(),
                }
            } else {
                match st.phase {
                    SessionPhase::Admitted => StepPlan::Create { resume: false },
                    SessionPhase::Backoff | SessionPhase::Restarting => {
                        st.phase = SessionPhase::Restarting;
                        StepPlan::Create {
                            resume: slot.spec.session.checkpoint.is_some(),
                        }
                    }
                    SessionPhase::Running => match st.engine.take() {
                        Some(engine) => StepPlan::Run {
                            engine,
                            msg: st.mailbox.pop_front().unwrap_or(SessionMsg::Step),
                        },
                        // An engine-less Running slot is unreachable (the
                        // id is queued at most once); treat as a restart.
                        None => StepPlan::Create {
                            resume: slot.spec.session.checkpoint.is_some(),
                        },
                    },
                    // Terminal phases handled above.
                    _ => StepPlan::Skip,
                }
            }
        };

        match plan {
            StepPlan::Skip => {}
            StepPlan::Create { resume } => self.create_engine(&slot, resume),
            StepPlan::Run { engine, msg } => self.run_engine(&slot, engine, msg),
            StepPlan::Drain { engine } => self.drain_session(&slot, engine),
        }
    }

    fn create_engine(&self, slot: &Arc<SessionSlot>, resume: bool) {
        let mut session = slot.spec.session.clone();
        session.resume = resume;
        let spec = &slot.spec;
        let created = panic::catch_unwind(AssertUnwindSafe(|| {
            SessionEngine::create(
                spec.agent.clone(),
                spec.env.clone(),
                spec.cfg.clone(),
                session,
                &spec.tuner_name,
            )
        }));
        match created {
            Ok(Ok(EngineInit::Ready(engine))) => {
                {
                    let mut st = slot.state.lock();
                    st.phase = SessionPhase::Running;
                    st.completed_steps = engine.next_step();
                    st.resumed = resume && engine.next_step() > 0;
                    st.engine = Some(engine);
                }
                self.sched.submit(slot.id);
            }
            // The engine already reported the crash (storage death during
            // open/create/initial-snapshot); the supervisor rules next.
            Ok(Ok(EngineInit::Dead(outcome))) => {
                {
                    let mut st = slot.state.lock();
                    if let SessionOutcome::Crashed { completed_steps }
                    | SessionOutcome::Killed { completed_steps } = outcome
                    {
                        st.completed_steps = st.completed_steps.max(completed_steps);
                    }
                }
                self.handle_crash(slot, "storage death during engine creation");
            }
            Ok(Err(err)) => {
                let reason = format!("engine creation failed: {err}");
                self.handle_crash(slot, &reason);
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                telemetry::event!(
                    "supervisor.panic_contained",
                    session = slot.id,
                    at = "create",
                    message = msg.as_str()
                );
                self.handle_crash(slot, "panic during engine creation");
            }
        }
    }

    fn run_engine(&self, slot: &Arc<SessionSlot>, mut engine: Box<SessionEngine>, msg: SessionMsg) {
        let step = engine.next_step();

        // Scheduler-boundary fault injection, before the step runs: the
        // engine's durable state is still exactly the post-(step-1) state,
        // so a commitlog resume replays the interrupted step cleanly.
        if msg == SessionMsg::Step {
            match self.pending_fault(slot.admit_index, step) {
                Some(ServiceFault::Panic) | Some(ServiceFault::PanicLoop) => {
                    drop(engine); // discarded: recovery goes through the commitlog
                    let outcome =
                        panic::catch_unwind(AssertUnwindSafe(|| injected_panic(slot.id, step)));
                    // PANIC-SAFETY: injected_panic diverges, so the Ok arm
                    // is unreachable; unwrap_err documents that.
                    let payload = outcome.unwrap_err();
                    let msg = panic_message(payload.as_ref());
                    telemetry::event!(
                        "supervisor.panic_contained",
                        session = slot.id,
                        at = "step",
                        step = step,
                        message = msg.as_str()
                    );
                    self.handle_crash(slot, "injected panic");
                    return;
                }
                Some(ServiceFault::Stall { stall_s }) => {
                    self.clock.advance_ms((stall_s * 1000.0).round() as u64);
                    telemetry::event!(
                        "service.stall_injected",
                        session = slot.id,
                        step = step,
                        stall_s = stall_s
                    );
                    if stall_s > self.cfg.step_deadline_s {
                        // The stall is charged to the *service* (virtual
                        // clock + per-session deadline account), never into
                        // the engine's step records — that is what keeps a
                        // recovered session's stream byte-identical.
                        {
                            let mut st = slot.state.lock();
                            st.deadline_charged_s += stall_s;
                        }
                        telemetry::event!(
                            "supervisor.deadline_blown",
                            session = slot.id,
                            step = step,
                            stall_s = stall_s,
                            deadline_s = self.cfg.step_deadline_s
                        );
                        drop(engine); // wedged: recovery goes through the commitlog
                        self.handle_crash(slot, "step deadline blown");
                        return;
                    }
                    {
                        let mut st = slot.state.lock();
                        st.deadline_charged_s += stall_s;
                    }
                }
                _ => {}
            }
        }

        match msg {
            SessionMsg::Checkpoint => {
                let res = engine.checkpoint_now();
                match res {
                    Ok(true) => {
                        {
                            let mut st = slot.state.lock();
                            st.engine = Some(engine);
                        }
                        self.sched.submit(slot.id);
                    }
                    Ok(false) => {
                        drop(engine);
                        self.handle_crash(slot, "storage death during checkpoint");
                    }
                    Err(err) => {
                        drop(engine);
                        let reason = format!("checkpoint failed: {err}");
                        self.handle_crash(slot, &reason);
                    }
                }
            }
            SessionMsg::Stop => {
                // Per-session drain: checkpoint, then stop scheduling.
                let _ = engine.checkpoint_now();
                let completed = engine.next_step();
                drop(engine);
                {
                    let mut st = slot.state.lock();
                    st.completed_steps = completed;
                    // GUARD-EMIT: finish only mutates the slot; it never emits.
                    self.finish(&mut st, SessionPhase::Drained, None);
                }
                telemetry::event!(
                    "service.session_done",
                    session = slot.id,
                    outcome = "stopped"
                );
            }
            SessionMsg::Step => {
                let stepped = panic::catch_unwind(AssertUnwindSafe(|| engine.step_once()));
                match stepped {
                    Ok(Ok(EngineStep::Running)) => {
                        self.clock.advance_ms(1);
                        {
                            let mut st = slot.state.lock();
                            st.completed_steps = engine.next_step();
                            st.engine = Some(engine);
                        }
                        self.sched.submit(slot.id);
                    }
                    Ok(Ok(EngineStep::Finished(outcome))) => {
                        self.clock.advance_ms(1);
                        drop(engine);
                        match outcome {
                            SessionOutcome::Completed(report) => {
                                {
                                    let mut st = slot.state.lock();
                                    st.completed_steps = report.steps.len().max(st.completed_steps);
                                    // GUARD-EMIT: finish only mutates the slot; it never emits.
                                    self.finish(
                                        &mut st,
                                        SessionPhase::Completed,
                                        Some(SessionOutcome::Completed(report)),
                                    );
                                }
                                telemetry::event!(
                                    "service.session_done",
                                    session = slot.id,
                                    outcome = "completed"
                                );
                            }
                            SessionOutcome::Killed { completed_steps }
                            | SessionOutcome::Crashed { completed_steps } => {
                                {
                                    let mut st = slot.state.lock();
                                    st.completed_steps = st.completed_steps.max(completed_steps);
                                }
                                self.handle_crash(slot, "session crashed mid-step");
                            }
                        }
                    }
                    Ok(Err(err)) => {
                        drop(engine);
                        let reason = format!("step failed: {err}");
                        self.handle_crash(slot, &reason);
                    }
                    Err(payload) => {
                        // A panic mid-step leaves the engine untrusted:
                        // discard it and resume from the durable state.
                        drop(engine);
                        let msg = panic_message(payload.as_ref());
                        telemetry::event!(
                            "supervisor.panic_contained",
                            session = slot.id,
                            at = "step",
                            step = step,
                            message = msg.as_str()
                        );
                        self.handle_crash(slot, "panic during step");
                    }
                }
            }
        }
    }

    /// Supervisor ruling after a contained crash: bounded restart with
    /// virtual-clock backoff, or quarantine.
    fn handle_crash(&self, slot: &Arc<SessionSlot>, reason: &str) {
        let verdict = {
            let mut st = slot.state.lock();
            st.engine = None;
            let verdict = st.supervisor.on_crash();
            match verdict {
                SupervisorVerdict::Restart { .. } => {
                    st.phase = SessionPhase::Backoff;
                    // A parked session is deliberately idle; don't count
                    // the backoff window against the fairness bound.
                    st.last_dispatch_seq = u64::MAX;
                }
                SupervisorVerdict::Quarantine { .. } => {
                    let completed_steps = st.completed_steps;
                    // GUARD-EMIT: finish only mutates the slot; it never emits.
                    self.finish(
                        &mut st,
                        SessionPhase::Quarantined,
                        Some(SessionOutcome::Crashed { completed_steps }),
                    );
                }
            }
            verdict
        };
        match verdict {
            SupervisorVerdict::Restart {
                attempt,
                backoff_ms,
            } => {
                let wake = self.clock.now_ms() + backoff_ms;
                telemetry::event!(
                    "supervisor.restart",
                    session = slot.id,
                    attempt = attempt,
                    backoff_ms = backoff_ms,
                    reason = reason
                );
                self.sched.park(slot.id, wake);
            }
            SupervisorVerdict::Quarantine { restarts } => {
                telemetry::event!(
                    "supervisor.quarantined",
                    session = slot.id,
                    restarts = restarts,
                    reason = reason
                );
                telemetry::event!(
                    "service.session_done",
                    session = slot.id,
                    outcome = "quarantined"
                );
            }
        }
    }

    /// Drain one session: checkpoint whatever is live, mark it Drained.
    fn drain_session(&self, slot: &Arc<SessionSlot>, engine: Option<Box<SessionEngine>>) {
        let mut completed = None;
        if let Some(mut engine) = engine {
            // Best-effort: a storage death here still drains the session;
            // whatever the commitlog holds is what a later resume gets.
            let _ = engine.checkpoint_now();
            completed = Some(engine.next_step());
        }
        let drain_ms = self
            .clock
            .now_ms()
            .saturating_sub(self.drain_start_ms.load(Ordering::Acquire));
        {
            let mut st = slot.state.lock();
            if let Some(completed) = completed {
                st.completed_steps = completed;
            }
            st.drain_ms = drain_ms;
            // GUARD-EMIT: finish only mutates the slot; it never emits.
            self.finish(&mut st, SessionPhase::Drained, None);
        }
        telemetry::event!("supervisor.drained", session = slot.id, drain_ms = drain_ms);
    }

    /// Take the per-session results (outcomes are moved out; calling
    /// twice yields summaries without outcomes).
    pub fn take_results(&self) -> Vec<SessionResult> {
        let slots: Vec<Arc<SessionSlot>> = {
            let slots = self.slots.read();
            slots.values().cloned().collect()
        };
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots {
            let mut st = slot.state.lock();
            out.push(SessionResult {
                id: slot.id,
                name: slot.spec.name.clone(),
                phase: st.phase,
                outcome: st.outcome.take(),
                restarts: st.supervisor.restarts(),
                resumed: st.resumed,
                mailbox_rejections: st.mailbox_rejections,
                deadline_charged_s: st.deadline_charged_s,
                drain_ms: st.drain_ms,
                completed_steps: st.completed_steps,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgentConfig;
    use crate::envwrap::TuningEnv;
    use crate::resilience::ResiliencePolicy;
    use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

    /// Unique per-test scratch dir (pid-qualified so concurrent `cargo
    /// test` invocations never collide), removed on drop.
    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("deepcat-service-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_env(seed: u64) -> ResilientEnv {
        let inner = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            seed,
        );
        ResilientEnv::new(inner, ResiliencePolicy::default())
    }

    fn tiny_agent(seed: u64) -> Td3Agent {
        let env = tiny_env(seed);
        let mut cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        cfg.hidden = vec![8, 8];
        cfg.warmup_steps = 4;
        cfg.batch_size = 4;
        Td3Agent::new(cfg, seed)
    }

    fn tiny_spec(name: &str, seed: u64, steps: usize) -> SessionSpec {
        let mut cfg = OnlineConfig::deepcat(seed);
        cfg.steps = steps;
        cfg.use_twinq = false;
        cfg.fine_tune_steps = 1;
        SessionSpec {
            name: name.to_string(),
            agent: tiny_agent(seed),
            env: tiny_env(seed),
            cfg,
            session: ChaosSessionConfig::default(),
            tuner_name: "svc-test".to_string(),
        }
    }

    fn svc_cfg(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn sessions_run_to_completion_and_match_solo() {
        let service = TuningService::new(svc_cfg(2));
        for i in 0..3u64 {
            service
                .admit(tiny_spec(&format!("s{i}"), 100 + i, 3))
                .unwrap();
        }
        service.run();
        let results = service.take_results();
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.phase, SessionPhase::Completed, "session {i}");
            let Some(SessionOutcome::Completed(report)) = &r.outcome else {
                panic!("session {i} has no completed outcome");
            };
            // Multiplexed result == solo result, bit for bit.
            let spec = tiny_spec(&format!("s{i}"), 100 + i as u64, 3);
            let mut agent = spec.agent.clone();
            let mut env = spec.env.clone();
            let solo = crate::resilience::online_tune_resilient(
                &mut agent,
                &mut env,
                &spec.cfg,
                &spec.session,
                &spec.tuner_name,
            )
            .unwrap();
            let SessionOutcome::Completed(solo) = solo else {
                panic!("solo run did not complete");
            };
            assert_eq!(report.steps.len(), solo.steps.len());
            for (a, b) in report.steps.iter().zip(solo.steps.iter()) {
                assert_eq!(a.reward, b.reward, "session {i}");
                assert_eq!(a.exec_time_s, b.exec_time_s, "session {i}");
                assert_eq!(a.action, b.action, "session {i}");
            }
        }
    }

    #[test]
    fn admission_is_bounded_and_drain_stops_intake() {
        let service = TuningService::new(ServiceConfig {
            max_sessions: 1,
            workers: 1,
            ..ServiceConfig::default()
        });
        service.admit(tiny_spec("a", 1, 2)).unwrap();
        assert_eq!(
            service.admit(tiny_spec("b", 2, 2)).unwrap_err(),
            AdmitError::Full { cap: 1 }
        );
        let service2 = TuningService::new(svc_cfg(1));
        service2.begin_drain();
        assert_eq!(
            service2.admit(tiny_spec("c", 3, 2)).unwrap_err(),
            AdmitError::Draining
        );
    }

    #[test]
    fn mailbox_backpressure_rejects_with_reason() {
        let service = TuningService::new(ServiceConfig {
            mailbox_cap: 2,
            workers: 1,
            ..ServiceConfig::default()
        });
        let id = service.admit(tiny_spec("bp", 7, 2)).unwrap();
        service.post(id, SessionMsg::Checkpoint).unwrap();
        service.post(id, SessionMsg::Checkpoint).unwrap();
        assert_eq!(
            service.post(id, SessionMsg::Checkpoint),
            Err(PostError::MailboxFull { cap: 2 })
        );
        assert_eq!(
            service.post(999, SessionMsg::Step),
            Err(PostError::UnknownSession)
        );
        service.run();
        let results = service.take_results();
        assert_eq!(results[0].mailbox_rejections, 1);
        assert_eq!(results[0].phase, SessionPhase::Completed);
    }

    #[test]
    fn injected_panic_is_contained_and_siblings_unperturbed() {
        let dir = TestDir::new("panic-contained");
        let plan = ServiceFaultPlan {
            name: "test".into(),
            seed: 9,
            events: vec![ServiceFaultEvent {
                session: 0,
                step: 1,
                fault: ServiceFault::Panic,
            }],
        };
        let service = TuningService::with_faults(svc_cfg(2), plan);
        let mut spec0 = tiny_spec("victim", 41, 3);
        spec0.session.checkpoint = Some(dir.0.join("victim"));
        service.admit(spec0).unwrap();
        service.admit(tiny_spec("sibling", 42, 3)).unwrap();
        service.run();
        let results = service.take_results();
        // The victim crashed once, restarted via its commitlog, completed.
        assert_eq!(results[0].restarts, 1);
        assert_eq!(results[0].phase, SessionPhase::Completed);
        assert!(results[0].resumed);
        // The sibling never noticed.
        assert_eq!(results[1].restarts, 0);
        assert_eq!(results[1].phase, SessionPhase::Completed);
        let Some(SessionOutcome::Completed(victim)) = &results[0].outcome else {
            panic!("victim has no outcome");
        };
        // And the victim's result equals its solo run: the crash cost
        // virtual time, not correctness.
        let solo_spec = tiny_spec("victim", 41, 3);
        let mut agent = solo_spec.agent.clone();
        let mut env = solo_spec.env.clone();
        let solo = crate::resilience::online_tune_resilient(
            &mut agent,
            &mut env,
            &solo_spec.cfg,
            &solo_spec.session,
            &solo_spec.tuner_name,
        )
        .unwrap();
        let SessionOutcome::Completed(solo) = solo else {
            panic!("solo run did not complete");
        };
        for (a, b) in victim.steps.iter().zip(solo.steps.iter()) {
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.action, b.action);
        }
    }

    #[test]
    fn restart_storm_ends_in_quarantine() {
        let plan = ServiceFaultPlan {
            name: "test-storm".into(),
            seed: 5,
            events: vec![ServiceFaultEvent {
                session: 0,
                step: 1,
                fault: ServiceFault::PanicLoop,
            }],
        };
        let service = TuningService::with_faults(
            ServiceConfig {
                workers: 2,
                restart: RestartPolicy {
                    max_restarts: 2,
                    ..RestartPolicy::default()
                },
                ..ServiceConfig::default()
            },
            plan,
        );
        service.admit(tiny_spec("stormy", 11, 3)).unwrap();
        service.admit(tiny_spec("calm", 12, 3)).unwrap();
        service.run();
        let results = service.take_results();
        assert_eq!(results[0].phase, SessionPhase::Quarantined);
        assert_eq!(results[0].restarts, 2);
        assert!(matches!(
            results[0].outcome,
            Some(SessionOutcome::Crashed { .. })
        ));
        assert_eq!(results[1].phase, SessionPhase::Completed);
    }

    #[test]
    fn deadline_blown_stall_crashes_and_recovers() {
        let dir = TestDir::new("stall-recovers");
        let plan = ServiceFaultPlan {
            name: "test-stall".into(),
            seed: 3,
            events: vec![ServiceFaultEvent {
                session: 0,
                step: 1,
                fault: ServiceFault::Stall { stall_s: 1.0e6 },
            }],
        };
        let service = TuningService::with_faults(svc_cfg(1), plan);
        let mut spec = tiny_spec("wedged", 21, 3);
        spec.session.checkpoint = Some(dir.0.join("wedged"));
        service.admit(spec).unwrap();
        service.run();
        let results = service.take_results();
        assert_eq!(results[0].phase, SessionPhase::Completed);
        assert_eq!(results[0].restarts, 1);
        assert!(results[0].deadline_charged_s >= 1.0e6);
        // The stall advanced the virtual clock, not the wall clock.
        assert!(service.now_ms() >= 1_000_000_000);
    }

    #[test]
    fn drain_checkpoints_and_stops_every_session() {
        let dir = TestDir::new("drain");
        let service = TuningService::new(svc_cfg(1));
        let mut spec = tiny_spec("drained", 31, 50);
        spec.session.checkpoint = Some(dir.0.join("drained"));
        let id = service.admit(spec).unwrap();
        // Drain immediately: the session must stop long before 50 steps.
        service.begin_drain();
        service.run();
        let results = service.take_results();
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].phase, SessionPhase::Drained);
        assert!(results[0].completed_steps < 50);
    }

    #[test]
    fn named_plans_are_deterministic_and_cover_the_names() {
        for name in SERVICE_PLAN_NAMES {
            let a = ServiceFaultPlan::named(name, 2022, 8, 4).unwrap();
            let b = ServiceFaultPlan::named(name, 2022, 8, 4).unwrap();
            assert_eq!(a.events, b.events, "plan {name} not deterministic");
        }
        assert!(ServiceFaultPlan::named("bogus", 1, 8, 4).is_none());
        // panic3 touches exactly 3 distinct sessions out of 8, mid-run.
        let plan = ServiceFaultPlan::named("panic3", 2022, 8, 4).unwrap();
        let sessions: BTreeSet<usize> = plan.events.iter().map(|e| e.session).collect();
        assert_eq!(sessions.len(), 3);
        for ev in &plan.events {
            assert!(ev.step >= 1 && ev.step < 4);
        }
    }
}
