//! Property tests of the resilience layer: for *arbitrary* fault
//! schedules, [`deepcat::ResilientEnv`] must never emit a non-finite
//! reward, state entry, or cost figure — and every sanitized transition
//! must pass the replay buffer's own insertion-boundary check.

use deepcat::{ResiliencePolicy, ResilientEnv, TuningEnv};
use proptest::prelude::*;
use rl::{ReplayMemory, Transition, UniformReplay};
use spark_sim::{Cluster, Fault, FaultEvent, FaultPlan, InputSize, Workload, WorkloadKind};

fn tuning_env(seed: u64) -> TuningEnv {
    TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    )
}

/// Decode one (kind, position, parameter) triple into a fault. Parameters
/// deliberately cover harsher ranges than the named plans use.
fn fault_from(kind: usize, at: u64, p: f64) -> Fault {
    match kind % 5 {
        0 => Fault::Transient {
            progress: 0.05 + 0.9 * p,
        },
        1 => Fault::Straggler {
            node: (at as usize) % 3,
            slowdown: 1.5 + 6.0 * p,
        },
        2 => Fault::ProbeLoss {
            node: (at as usize) % 3,
        },
        3 => Fault::NoiseSpike {
            magnitude: 10.0 * p,
        },
        _ => Fault::NodeCrash {
            node: (at as usize) % 3,
            evals: 1 + (p * 3.0) as u64,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn arbitrary_fault_schedules_never_poison_the_replay(
        schedule in proptest::collection::vec(
            (1u64..10, 0usize..5, 0.0f64..1.0), 0..6),
        seed in 1u64..500,
    ) {
        let events: Vec<FaultEvent> = schedule
            .iter()
            .map(|&(at, kind, p)| FaultEvent {
                at_eval: at,
                fault: fault_from(kind, at, p),
            })
            .collect();
        let policy = ResiliencePolicy::default();
        let clamp = policy.reward_clamp;
        let mut env = ResilientEnv::new(tuning_env(seed), policy);
        env.install_plan(FaultPlan::custom(seed, events));
        let mut replay = UniformReplay::new(64);
        let mut state = env.reset();
        let dims = env.action_dim();
        for step in 0..4usize {
            let action = vec![0.2 + 0.15 * step as f64; dims];
            let res = env.step(&action);
            prop_assert!(
                res.outcome.reward.is_finite() && res.outcome.reward.abs() <= clamp,
                "step {step}: reward {} escaped the clamp", res.outcome.reward
            );
            prop_assert!(
                res.outcome.next_state.iter().all(|v| v.is_finite()),
                "step {step}: non-finite state {:?}", res.outcome.next_state
            );
            prop_assert!(
                res.outcome.exec_time_s.is_finite() && res.outcome.exec_time_s >= 0.0,
                "step {step}: bad exec time {}", res.outcome.exec_time_s
            );
            prop_assert!(
                res.accounting.overhead_s.is_finite() && res.accounting.overhead_s >= 0.0,
                "step {step}: bad overhead {}", res.accounting.overhead_s
            );
            let before = replay.len();
            replay.push(Transition::new(
                state.clone(),
                res.evaluated_action.clone(),
                res.outcome.reward,
                res.outcome.next_state.clone(),
                false,
            ));
            prop_assert_eq!(
                replay.len(),
                before + 1,
                "sanitized transition rejected at the replay boundary"
            );
            state = res.outcome.next_state;
        }
    }

    #[test]
    fn fault_free_wrapper_is_cost_transparent(seed in 1u64..200) {
        // Without a plan, the wrapper must charge exactly what the bare
        // environment charges (no hidden overhead).
        let mut bare = tuning_env(seed);
        let dims = bare.action_dim();
        let action = vec![0.5; dims];
        let direct = bare.step(&action);
        let mut wrapped = ResilientEnv::new(tuning_env(seed), ResiliencePolicy::default());
        let res = wrapped.step(&action);
        prop_assert_eq!(res.outcome.exec_time_s, direct.exec_time_s);
        prop_assert_eq!(res.outcome.reward, direct.reward);
        prop_assert_eq!(res.accounting.overhead_s, 0.0);
        prop_assert_eq!(res.accounting.retries, 0u32);
    }
}
