//! Regression: the pre-service `deepcat-tune fleet` invocation (PR 9
//! flags, unchanged) must keep working now that `fleet` is a thin alias
//! over the multi-tenant `TuningService` path — same flags, same output
//! files, same reference-vs-recovered byte-identity contract.

use std::path::PathBuf;
use std::process::Command;

struct TestDir(PathBuf);

impl TestDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("deepcat-cli-fleet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn old_fleet_invocation_still_works_on_the_service_path() {
    let dir = TestDir::new();
    let out_dir = dir.0.join("fleet");
    let output = Command::new(env!("CARGO_BIN_EXE_deepcat-tune"))
        .args([
            "fleet",
            "--sessions",
            "2",
            "--steps",
            "3",
            "--iters",
            "40",
            "--kill-at",
            "1",
            "--deterministic",
            "--seed",
            "2022",
            "--out-dir",
        ])
        .arg(&out_dir)
        .output()
        .expect("spawn deepcat-tune");
    assert!(
        output.status.success(),
        "fleet exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    // The PR 9 contract: per-session reference/recovered step logs are
    // written and byte-identical after the injected crash + resume.
    for i in 0..2 {
        let reference = std::fs::read(out_dir.join(format!("session-{i}-reference.jsonl")))
            .expect("reference log exists");
        let recovered = std::fs::read(out_dir.join(format!("session-{i}-recovered.jsonl")))
            .expect("recovered log exists");
        assert!(!reference.is_empty(), "session {i} reference log is empty");
        assert_eq!(
            reference, recovered,
            "session {i} recovered log diverged from its reference"
        );
    }
}
