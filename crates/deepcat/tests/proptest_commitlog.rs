//! Property tests of the durable commitlog: for *arbitrary* tail
//! corruption (truncation at any byte offset, any single bit flipped),
//! recovery must never panic, never surface a corrupt record, and always
//! yield a contiguous valid prefix of what was appended — and a session
//! resumed from snapshot + tail replay must reproduce an uninterrupted
//! session exactly, whatever storage fault killed it.

use deepcat::{
    online_tune_resilient, shared_storage, train_td3, AgentConfig, ChaosSessionConfig, Commitlog,
    CommitlogPolicy, FaultyStorage, MemStorage, OfflineConfig, OnlineCheckpoint, OnlineConfig,
    ResiliencePolicy, ResilienceSnapshot, ResilientEnv, SessionOutcome, SharedStorage, StepDelta,
    StepRecord, StoragePlan, Td3Agent, TuningEnv, TuningReport,
};
use proptest::prelude::*;
use rl::Transition;
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Log-level corruption: arbitrary truncation / bit flips on the tail
// ---------------------------------------------------------------------------

/// A tiny but real agent checkpoint — recovery JSON-decodes snapshots,
/// so the payload must be a faithful [`OnlineCheckpoint`].
fn tiny_checkpoint(next_step: usize) -> OnlineCheckpoint {
    let mut cfg = AgentConfig::for_dims(2, 3);
    cfg.hidden = vec![4, 4];
    let agent = Td3Agent::new(cfg, 1);
    OnlineCheckpoint {
        tuner: "prop".to_string(),
        next_step,
        total_steps: 16,
        agent: agent.checkpoint(),
        agent_rng: agent.rng_state().to_vec(),
        loop_rng: vec![1, 2, 3, 4],
        replay: Vec::new(),
        steps: Vec::new(),
        spent_s: next_step as f64,
        eval_count: next_step as u64,
        env_state: vec![0.1, 0.2],
        step_in_episode: next_step,
        resilience: ResilienceSnapshot {
            last_good_action: None,
            last_state: vec![0.1, 0.2],
            consecutive_failures: 0,
        },
        guardrail: None,
    }
}

fn delta_at(seq: u64) -> StepDelta {
    StepDelta {
        seq,
        record: StepRecord {
            step: seq as usize,
            exec_time_s: 100.0 + seq as f64,
            failed: false,
            reward: 0.25 * seq as f64,
            recommendation_s: 0.0,
            q_estimate: Some(0.5),
            twinq_iterations: 3,
            action: vec![0.1, 0.2, 0.3],
            resilience: Default::default(),
            guardrail: Default::default(),
        },
        transition: Transition::new(
            vec![0.1, 0.2],
            vec![0.1, 0.2, 0.3],
            0.25 * seq as f64,
            vec![0.2, 0.3],
            true,
        ),
        loop_rng_pre_train: vec![seq, 1, 2, 3],
        loop_rng_post: vec![seq, 2, 3, 4],
        agent_rng_post: vec![seq, 3, 4, 5],
        spent_s: seq as f64,
        eval_count: seq,
        env_state: vec![0.3, 0.4],
        step_in_episode: seq as usize,
        resilience: ResilienceSnapshot {
            last_good_action: Some(vec![0.1, 0.2, 0.3]),
            last_state: vec![0.3, 0.4],
            consecutive_failures: 0,
        },
        guardrail: None,
    }
}

/// Write a healthy log: initial snapshot, `records` appended deltas, and
/// (with `snapshot_every > 0`) periodic compacted snapshots in between.
fn build_log(
    storage: &SharedStorage,
    dir: &Path,
    records: u64,
    snapshot_every: u64,
    segment_max_records: u64,
) -> Vec<StepDelta> {
    let policy = CommitlogPolicy {
        snapshot_every: snapshot_every as usize,
        segment_max_records,
    };
    let mut log = Commitlog::create(dir, storage.clone(), policy).expect("create log");
    log.snapshot(&tiny_checkpoint(0)).expect("initial snapshot");
    let mut deltas = Vec::new();
    for seq in 0..records {
        let delta = delta_at(seq);
        log.append(&delta).expect("append");
        deltas.push(delta);
        if snapshot_every > 0 && (seq + 1) % snapshot_every == 0 && seq + 1 < records {
            log.snapshot(&tiny_checkpoint((seq + 1) as usize))
                .expect("periodic snapshot");
        }
    }
    deltas
}

/// List the log directory's files through the storage trait.
fn list_files(storage: &SharedStorage, dir: &Path) -> Vec<PathBuf> {
    storage
        .lock()
        .list(dir)
        .expect("list")
        .into_iter()
        .map(|name| dir.join(name))
        .collect()
}

fn canon(delta: &StepDelta) -> String {
    serde_json::to_string(delta).expect("serialize delta")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever single corruption hits whatever file — truncation at an
    /// arbitrary offset or one flipped bit — `Commitlog::open` must not
    /// panic or error, the recovered tail must be a contiguous, bitwise
    /// prefix of what was appended, and a second open of the repaired
    /// log must be clean (recovery is idempotent).
    #[test]
    fn arbitrary_tail_corruption_recovers_a_valid_prefix(
        records in 1u64..10,
        snapshot_every in 0u64..4,
        segment_max in 1u64..4,
        file_pick in 0usize..64,
        offset_pick in 0usize..4096,
        flip in 0u8..2,
        bit in 0u8..8,
    ) {
        let storage = shared_storage(MemStorage::new());
        let dir = PathBuf::from("/prop/commitlog");
        let deltas = build_log(&storage, &dir, records, snapshot_every, segment_max);

        // Corrupt one file: either truncate it at an arbitrary offset or
        // flip a single bit at an arbitrary byte.
        let files = list_files(&storage, &dir);
        prop_assert!(!files.is_empty());
        let target = &files[file_pick % files.len()];
        {
            let mut s = storage.lock();
            let mut body = s.read(target).expect("read target");
            if !body.is_empty() {
                if flip == 1 {
                    let at = offset_pick % body.len();
                    body[at] ^= 1 << bit;
                } else {
                    body.truncate(offset_pick % (body.len() + 1));
                }
                s.write_all(target, &body).expect("write corruption");
            }
        }

        let policy = CommitlogPolicy {
            snapshot_every: snapshot_every as usize,
            segment_max_records: segment_max,
        };
        let (log, recovered) =
            Commitlog::open(&dir, storage.clone(), policy.clone()).expect("recovery must not error");
        match &recovered {
            Some(rec) => {
                prop_assert_eq!(rec.checkpoint.next_step as u64, rec.snapshot_step);
                // Contiguous sequence numbers from the snapshot on.
                for (k, delta) in rec.tail.iter().enumerate() {
                    prop_assert_eq!(delta.seq, rec.snapshot_step + k as u64);
                }
                // Every recovered record is bitwise one we appended — no
                // invented or corrupt record survives recovery.
                let end = rec.snapshot_step + rec.tail.len() as u64;
                prop_assert!(end <= records, "recovered past what was written");
                for delta in &rec.tail {
                    prop_assert_eq!(canon(delta), canon(&deltas[delta.seq as usize]));
                }
                prop_assert_eq!(log.next_seq(), end);
            }
            None => {
                // Total loss (e.g. the only snapshot was hit): the log
                // falls back to a fresh start at seq 0.
                prop_assert_eq!(log.next_seq(), 0);
            }
        }

        // Idempotence: recovery already repaired the log on disk, so a
        // second open finds nothing left to truncate and lands on the
        // same state.
        let (log2, recovered2) =
            Commitlog::open(&dir, storage.clone(), policy).expect("re-open must not error");
        prop_assert_eq!(log2.next_seq(), log.next_seq());
        if let Some(rec2) = &recovered2 {
            prop_assert_eq!(rec2.truncated_records, 0);
            prop_assert_eq!(rec2.truncated_bytes, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Session-level: snapshot + tail replay == uninterrupted session
// ---------------------------------------------------------------------------

fn fleet_agent() -> &'static Td3Agent {
    static AGENT: OnceLock<Td3Agent> = OnceLock::new();
    AGENT.get_or_init(|| {
        let mut env = TuningEnv::for_workload(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            9,
        );
        let mut cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        cfg.hidden = vec![32, 32];
        cfg.warmup_steps = 64;
        cfg.batch_size = 32;
        let (agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(500, 9), &[]);
        agent
    })
}

fn live_env(seed: u64) -> ResilientEnv {
    ResilientEnv::new(
        TuningEnv::for_workload(
            Cluster::cluster_a().with_background_load(0.15),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            seed,
        ),
        ResiliencePolicy::default(),
    )
}

fn deterministic_fields(report: &TuningReport) -> Vec<(usize, f64, f64, bool, Vec<f64>)> {
    report
        .steps
        .iter()
        .map(|s| (s.step, s.exec_time_s, s.reward, s.failed, s.action.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// A session killed by an injected storage fault at an *arbitrary*
    /// write op — mid-append, mid-snapshot, via torn write, short write,
    /// failed fsync, ENOSPC, or a latent bit flip — and resumed from its
    /// commitlog must land on exactly the uninterrupted session's steps
    /// and best configuration.
    #[test]
    fn crashed_session_replays_to_the_uninterrupted_result(
        kill_op in 1u64..12,
        flavor_seed in 0u64..10,
        env_seed in 1u64..200,
    ) {
        let cfg = OnlineConfig { steps: 3, ..OnlineConfig::deepcat(env_seed) };

        let mut reference_agent = fleet_agent().clone();
        let reference = match online_tune_resilient(
            &mut reference_agent,
            &mut live_env(env_seed),
            &cfg,
            &ChaosSessionConfig::default(),
            "prop-reference",
        ).expect("reference session") {
            SessionOutcome::Completed(r) => r,
            other => panic!("reference did not complete: {other:?}"),
        };

        let dir = PathBuf::from("/prop/session-commitlog");
        let storage = shared_storage(FaultyStorage::new(
            MemStorage::new(),
            StoragePlan::kill_at(kill_op, flavor_seed),
        ));
        let mut outcome = None;
        for attempt in 0..4usize {
            let session = ChaosSessionConfig {
                checkpoint: Some(dir.clone()),
                resume: attempt > 0,
                storage: Some(storage.clone()),
                commitlog: CommitlogPolicy { snapshot_every: 2, segment_max_records: 2 },
                ..ChaosSessionConfig::default()
            };
            let mut agent = fleet_agent().clone();
            match online_tune_resilient(&mut agent, &mut live_env(env_seed), &cfg, &session, "prop")
                .expect("session I/O")
            {
                SessionOutcome::Completed(r) => { outcome = Some(r); break; }
                SessionOutcome::Crashed { .. } => continue,
                SessionOutcome::Killed { .. } => panic!("unexpected kill"),
            }
        }
        let recovered = outcome.expect("session never completed within 4 attempts");
        prop_assert_eq!(
            deterministic_fields(&recovered),
            deterministic_fields(&reference)
        );
        prop_assert_eq!(recovered.best_action, reference.best_action);
        prop_assert_eq!(recovered.best_exec_time_s, reference.best_exec_time_s);
    }
}
