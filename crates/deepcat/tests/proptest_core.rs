//! Property-based tests of the DeepCAT-specific mechanisms: the reward
//! function, the Twin-Q optimizer's action hygiene, and report arithmetic.

use deepcat::{RewardFn, TwinQOptimizer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn reward_is_monotone_decreasing_in_exec_time(
        perf_e in 1.0f64..1000.0,
        t1 in 0.1f64..5000.0,
        dt in 0.1f64..100.0,
    ) {
        let f = RewardFn::with_target(perf_e);
        prop_assert!(f.reward(t1) > f.reward(t1 + dt));
    }

    #[test]
    fn reward_round_trips_through_exec_time(
        perf_e in 1.0f64..1000.0,
        t in 0.1f64..5000.0,
    ) {
        let f = RewardFn::with_target(perf_e);
        let r = f.reward(t);
        prop_assert!((f.exec_time_for_reward(r) - t).abs() < 1e-6 * t.max(1.0));
    }

    #[test]
    fn reward_is_bounded_above_by_one(perf_e in 1.0f64..1000.0, t in 0.0f64..1e6) {
        let f = RewardFn::with_target(perf_e);
        prop_assert!(f.reward(t) <= 1.0);
    }

    #[test]
    fn twinq_actions_always_stay_in_unit_box(
        start in proptest::collection::vec(0.0f64..1.0, 8),
        sigma in 0.01f64..0.5,
        seed in 0u64..50,
    ) {
        use deepcat::{AgentConfig, Td3Agent};
        use rand::SeedableRng;
        let mut cfg = AgentConfig::for_dims(2, 8);
        cfg.hidden = vec![8];
        let agent = Td3Agent::new(cfg, seed);
        let opt = TwinQOptimizer { q_threshold: 1e9, sigma, max_iters: 8, smoothing_samples: 2 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let res = opt.optimize(&agent, &[0.1, 0.2], start, &mut rng);
        prop_assert!(res.action.iter().all(|v| (0.0..=1.0).contains(v)));
        prop_assert!(res.final_q >= res.initial_q, "fallback returns best seen");
        prop_assert_eq!(res.iterations, 8);
        prop_assert!(!res.accepted);
    }
}
