//! Property tests of the multi-tenant [`deepcat::TuningService`]: for
//! *arbitrary* combinations of session count, worker count, and injected
//! scheduler-boundary faults (panics, deadline-blowing stalls, at any
//! step of any session), the service must
//!
//! * drive every admitted session to a terminal phase (no starvation —
//!   the max dispatch gap between consecutive turns of a live session
//!   stays within a fairness bound),
//! * never lose a step record (every completed session reports exactly
//!   its configured steps, contiguous from 0), and
//! * stay extraction-faithful: any single session replayed solo, from
//!   the same spec with no service and no faults, is bit-identical to
//!   what the multiplexed run produced for it — crashed-and-resumed
//!   sessions included.

use deepcat::{
    AgentConfig, ChaosSessionConfig, CommitlogPolicy, OnlineConfig, ResiliencePolicy, ResilientEnv,
    RestartPolicy, ServiceConfig, ServiceFault, ServiceFaultEvent, ServiceFaultPlan,
    SessionOutcome, SessionPhase, SessionSpec, Td3Agent, TuningEnv, TuningService,
};
use proptest::prelude::*;
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

/// Unique per-case scratch dir for commitlogs, removed on drop.
struct TestDir(std::path::PathBuf);

impl TestDir {
    fn new(tag: u64) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "deepcat-proptest-service-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_env(seed: u64) -> ResilientEnv {
    let inner = TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    );
    ResilientEnv::new(inner, ResiliencePolicy::default())
}

fn tiny_spec(name: &str, seed: u64, steps: usize) -> SessionSpec {
    let env = tiny_env(seed);
    let mut agent_cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    agent_cfg.hidden = vec![8, 8];
    agent_cfg.warmup_steps = 4;
    agent_cfg.batch_size = 4;
    let mut cfg = OnlineConfig::deepcat(seed);
    cfg.steps = steps;
    cfg.use_twinq = false;
    cfg.fine_tune_steps = 1;
    SessionSpec {
        name: name.to_string(),
        agent: Td3Agent::new(agent_cfg, seed),
        env,
        cfg,
        session: ChaosSessionConfig::default(),
        tuner_name: "svc-prop".to_string(),
    }
}

fn solo_steps(spec: &SessionSpec) -> Vec<deepcat::StepRecord> {
    let mut agent = spec.agent.clone();
    let mut env = spec.env.clone();
    let outcome = deepcat::online_tune_resilient(
        &mut agent,
        &mut env,
        &spec.cfg,
        &spec.session,
        &spec.tuner_name,
    )
    .expect("solo run is io-fault free");
    let SessionOutcome::Completed(report) = outcome else {
        panic!("solo run did not complete");
    };
    report.steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn arbitrary_faulted_interleavings_terminate_fairly_without_losing_steps(
        sessions in 1usize..=4,
        steps in 2usize..=4,
        workers in 1usize..=3,
        // 0 = no fault, 1 = panic, 2 = deadline-blowing stall
        fault_kind in 0usize..3,
        fault_target in 0usize..4,
        fault_step in 1usize..4,
        seed in 1u64..500,
    ) {
        let dir = TestDir::new(seed ^ (sessions as u64) << 8);
        let fault_target = fault_target % sessions;
        let events = match fault_kind {
            0 => Vec::new(),
            1 => vec![ServiceFaultEvent {
                session: fault_target,
                step: fault_step,
                fault: ServiceFault::Panic,
            }],
            _ => vec![ServiceFaultEvent {
                session: fault_target,
                step: fault_step,
                fault: ServiceFault::Stall { stall_s: 1.0e6 },
            }],
        };
        let service = TuningService::with_faults(
            ServiceConfig {
                workers,
                restart: RestartPolicy { max_restarts: 8, ..RestartPolicy::default() },
                ..ServiceConfig::default()
            },
            ServiceFaultPlan { name: "prop".into(), seed, events },
        );
        for i in 0..sessions {
            let mut spec = tiny_spec(&format!("p{i}"), seed + i as u64, steps);
            spec.session.checkpoint = Some(dir.0.join(format!("session-{i}")));
            spec.session.commitlog = CommitlogPolicy { snapshot_every: 2, segment_max_records: 2 };
            service.admit(spec).unwrap();
        }
        service.run();
        let results = service.take_results();
        prop_assert_eq!(results.len(), sessions);

        // Termination: with a generous restart budget, every session —
        // including the faulted one — must complete.
        for (i, r) in results.iter().enumerate() {
            prop_assert!(r.phase.is_terminal(), "session {i} ended in {}", r.phase);
            prop_assert_eq!(r.phase, SessionPhase::Completed, "session {i}");
            let Some(SessionOutcome::Completed(report)) = &r.outcome else {
                panic!("session {i} has no outcome");
            };
            // No lost step records: exactly `steps`, contiguous from 0.
            prop_assert_eq!(report.steps.len(), steps, "session {i}");
            for (k, record) in report.steps.iter().enumerate() {
                prop_assert_eq!(record.step, k, "session {i} lost a step record");
            }
        }

        // Fairness: between two consecutive dispatches of a live session,
        // at most a bounded number of other dispatches may be granted
        // (backoff-parked sessions are deliberately excluded). Each
        // dispatched session is re-queued behind the others, so the gap
        // is O(sessions); the bound leaves slack for worker interleaving.
        let bound = (4 * sessions + 8) as u64;
        prop_assert!(
            service.max_dispatch_gap() <= bound,
            "dispatch gap {} exceeds fairness bound {bound}",
            service.max_dispatch_gap()
        );

        // Extraction fidelity: the faulted session replayed solo (no
        // service, no faults, no commitlog) matches the multiplexed run
        // bit for bit.
        let spec = tiny_spec(&format!("p{fault_target}"), seed + fault_target as u64, steps);
        let solo = solo_steps(&spec);
        let Some(SessionOutcome::Completed(report)) = &results[fault_target].outcome else {
            panic!("faulted session has no outcome");
        };
        prop_assert_eq!(solo.len(), report.steps.len());
        for (a, b) in solo.iter().zip(report.steps.iter()) {
            prop_assert_eq!(a.step, b.step);
            prop_assert_eq!(a.reward, b.reward);
            prop_assert_eq!(a.exec_time_s, b.exec_time_s);
            prop_assert_eq!(a.failed, b.failed);
            prop_assert_eq!(&a.action, &b.action);
        }
    }
}
