//! Property-based tests of the analysis statistics.

use deepcat::{Stat, Verdict};
use proptest::prelude::*;

proptest! {
    #[test]
    fn stat_bounds_hold(values in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Stat::of(&values);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn stat_is_translation_equivariant(
        values in proptest::collection::vec(-100.0f64..100.0, 2..32),
        shift in -50.0f64..50.0,
    ) {
        let a = Stat::of(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let b = Stat::of(&shifted);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6);
        prop_assert!((b.std - a.std).abs() < 1e-6, "std is shift-invariant");
    }

    #[test]
    fn constant_samples_have_zero_spread(v in -100.0f64..100.0, n in 2usize..16) {
        let s = Stat::of(&vec![v; n]);
        prop_assert!(s.std < 1e-9, "std {} for constant {v}", s.std);
        prop_assert_eq!(s.min, s.max);
        prop_assert!(s.ci95_half_width().abs() < 1e-8);
    }
}

#[test]
fn verdict_is_antisymmetric_for_separated_means() {
    use deepcat::{compare, summarize};
    use deepcat::{StepGuardrail, StepRecord, StepResilience, TuningReport};
    let mk = |tuner: &str, base: f64| -> TuningReport {
        let step = StepRecord {
            step: 0,
            exec_time_s: base,
            failed: false,
            reward: 0.0,
            recommendation_s: 0.0,
            q_estimate: None,
            twinq_iterations: 0,
            action: vec![0.5],
            resilience: StepResilience::default(),
            guardrail: StepGuardrail::default(),
        };
        TuningReport {
            tuner: tuner.into(),
            workload: "w".into(),
            steps: vec![step],
            best_exec_time_s: base,
            best_action: vec![0.5],
            total_eval_s: base,
            total_rec_s: 0.0,
            default_exec_time_s: 100.0,
        }
    };
    let a = summarize(&[mk("A", 10.0), mk("A", 11.0), mk("A", 9.0)]);
    let b = summarize(&[mk("B", 50.0), mk("B", 51.0), mk("B", 49.0)]);
    assert_eq!(compare(&a, &b), Verdict::ClearlyBetter);
    assert_eq!(compare(&b, &a), Verdict::Worse);
}
