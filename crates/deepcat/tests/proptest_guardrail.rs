//! Property tests of the guardrail layer: no matter what fault schedule
//! is active and no matter what the policy network recommends, an action
//! that has passed `Guardrail::screen` never reaches the simulator as an
//! infeasible configuration.

use deepcat::{Guardrail, GuardrailPolicy, ResiliencePolicy, ResilientEnv, TuningEnv};
use proptest::prelude::*;
use spark_sim::{
    validate_action, Cluster, Fault, FaultEvent, FaultPlan, InputSize, KnobSpace, Workload,
    WorkloadKind,
};

fn tuning_env(seed: u64) -> TuningEnv {
    TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    )
}

/// Decode one (kind, position, parameter) triple into a fault, same
/// shape as the resilience proptests.
fn fault_from(kind: usize, at: u64, p: f64) -> Fault {
    match kind % 5 {
        0 => Fault::Transient {
            progress: 0.05 + 0.9 * p,
        },
        1 => Fault::Straggler {
            node: (at as usize) % 3,
            slowdown: 1.5 + 6.0 * p,
        },
        2 => Fault::ProbeLoss {
            node: (at as usize) % 3,
        },
        3 => Fault::NoiseSpike {
            magnitude: 10.0 * p,
        },
        _ => Fault::NodeCrash {
            node: (at as usize) % 3,
            evals: 1 + (p * 3.0) as u64,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the guardrail's internal state (anchor, envelope,
    /// pending rollback — all driven here by arbitrary observations),
    /// `screen` only ever emits feasible actions.
    #[test]
    fn screened_actions_are_always_feasible(
        actions in proptest::collection::vec(
            proptest::collection::vec(-0.5f64..1.5, 32), 1..8),
        rewards in proptest::collection::vec(-20.0f64..5.0, 8),
        exec_times in proptest::collection::vec(1.0f64..2000.0, 8),
    ) {
        let space = KnobSpace::pipeline();
        let mut guard = Guardrail::new(GuardrailPolicy::on(), 300.0);
        for (i, action) in actions.iter().enumerate() {
            let screened = guard.screen(&space, action);
            prop_assert!(
                validate_action(&space, &screened.action).is_empty(),
                "step {i}: screened action is infeasible"
            );
            let exec = exec_times[i % exec_times.len()];
            let reward = rewards[i % rewards.len()];
            let verdict = guard.judge_canary(exec, false, &screened.action);
            let aborted = matches!(verdict, deepcat::CanaryVerdict::Abort { .. });
            guard.observe_step(reward, false, aborted, &screened.action);
        }
    }

    /// End to end at the environment level: arbitrary fault schedule,
    /// arbitrary (screened) recommendations — the simulator's infeasible
    /// evaluation counter stays at zero. This includes the resilience
    /// layer's own fallback re-evaluations.
    #[test]
    fn guarded_steps_never_evaluate_infeasible_configs(
        schedule in proptest::collection::vec(
            (1u64..10, 0usize..5, 0.0f64..1.0), 0..5),
        actions in proptest::collection::vec(
            proptest::collection::vec(-0.5f64..1.5, 32), 1..5),
        seed in 1u64..500,
    ) {
        let mut env = ResilientEnv::new(tuning_env(seed), ResiliencePolicy::default());
        let events: Vec<FaultEvent> = schedule
            .iter()
            .map(|&(at, kind, p)| FaultEvent {
                at_eval: at,
                fault: fault_from(kind, at, p),
            })
            .collect();
        env.install_plan(FaultPlan::custom(seed, events));
        let space = env.inner().spark().space().clone();
        let mut guard = Guardrail::new(GuardrailPolicy::on(), env.default_exec_time());
        for action in &actions {
            let screened = guard.screen(&space, action);
            let res = env.step(&screened.action);
            let verdict = guard.judge_canary(
                res.outcome.exec_time_s,
                res.outcome.failed,
                &res.evaluated_action,
            );
            let aborted = matches!(verdict, deepcat::CanaryVerdict::Abort { .. });
            guard.observe_step(
                res.outcome.reward,
                res.outcome.failed,
                aborted,
                &res.evaluated_action,
            );
        }
        prop_assert_eq!(
            env.inner().spark().infeasible_eval_count(),
            0,
            "an infeasible configuration reached the simulator"
        );
    }
}
