//! End-to-end tests of the Prometheus exposition plane: byte-identical
//! rendering of equal state, and a real TCP scrape against the
//! [`telemetry::MetricsServer`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use telemetry::{
    render_prometheus, Event, FieldValue, MetricsRegistry, MetricsSnapshot, SessionAggregator,
};

/// Build the same logical state twice through different code paths (two
/// independent registries/aggregators fed identically) — the renders
/// must agree byte for byte.
fn build_snapshot() -> MetricsSnapshot {
    let registry = MetricsRegistry::new();
    registry.counter("online.steps").add(7);
    registry.counter("telemetry.dropped").add(2);
    registry.gauge("budget.spent_s").set(321.5);
    for i in 0..50 {
        registry
            .sketch("online.step_latency_s")
            .insert(0.001 * (1.0 + i as f64));
        registry
            .sketch("online.step_reward")
            .insert(-0.5 + i as f64 * 0.02);
    }
    let mut agg = SessionAggregator::new();
    for (sid, reward) in [(1u64, 0.25), (1, -0.5), (2, 0.125)] {
        agg.observe_event(&Event::new(
            "online.step",
            vec![
                ("reward", FieldValue::F64(reward)),
                ("duration_s", FieldValue::F64(0.004)),
                ("exec_time_s", FieldValue::F64(40.0)),
                ("session_id", FieldValue::U64(sid)),
            ],
        ));
    }
    agg.observe_event(&Event::new("budget.update", vec![]));
    MetricsSnapshot {
        registry: registry.snapshot(),
        sessions: agg.report(),
    }
}

#[test]
fn equal_state_renders_byte_identically() {
    let a = render_prometheus(&build_snapshot());
    let b = render_prometheus(&build_snapshot());
    assert_eq!(a, b, "equal state must render to identical bytes");
    // Spot-check every exposition section is present.
    assert!(a.contains("online_steps_total 7"), "{a}");
    assert!(a.contains("budget_spent_s 321.5"), "{a}");
    assert!(
        a.contains("online_step_latency_s{quantile=\"0.95\"}"),
        "{a}"
    );
    assert!(a.contains("online_step_reward_count 50"), "{a}");
    assert!(
        a.contains("deepcat_session_steps_total{session=\"2\""),
        "{a}"
    );
    assert!(a.contains("deepcat_unattributed_events_total 1"), "{a}");
}

#[test]
fn render_survives_merged_snapshots() {
    // Merging a snapshot into itself doubles counters/sketch counts but
    // must keep the render well-formed and deterministic.
    let mut snap = build_snapshot();
    let other = build_snapshot();
    snap.registry.merge(&other.registry);
    let a = render_prometheus(&snap);
    let b = render_prometheus(&snap);
    assert_eq!(a, b);
    assert!(a.contains("online_steps_total 14"), "{a}");
    assert!(a.contains("online_step_latency_s_count 100"), "{a}");
}

#[test]
fn tcp_scrape_returns_the_current_snapshot() {
    telemetry::counter("telemetry.dropped").add(5);
    let server = telemetry::MetricsServer::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    server.shutdown();

    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "{response}"
    );
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    assert!(body.contains("telemetry_dropped_total"), "{body}");
    assert!(body.contains("deepcat_unattributed_events_total"), "{body}");
}
