//! Histogram bucket/quantile behaviour: boundary semantics, the
//! `quantile(p)` edge cases and interpolation sanity.

use telemetry::{Buckets, Histogram};

#[test]
fn samples_on_a_bound_land_in_that_bucket() {
    let h = Histogram::new(Buckets::explicit(vec![1.0, 2.0, 4.0]));
    h.observe(1.0); // exactly on the first bound → first bucket
    h.observe(1.0000001);
    h.observe(2.0);
    h.observe(4.0);
    h.observe(4.0000001); // above the last bound → overflow
    let s = h.snapshot();
    assert_eq!(s.counts, vec![1, 2, 1]);
    assert_eq!(s.overflow, 1);
    assert_eq!(s.count, 5);
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::new(Buckets::duration_seconds());
    let s = h.snapshot();
    assert!(s.is_empty());
    for p in [-1.0, 0.0, 0.5, 1.0, 2.0] {
        assert_eq!(s.quantile(p), None);
    }
    assert_eq!(s.mean(), None);
}

#[test]
fn single_sample_quantiles_collapse_to_it() {
    let h = Histogram::new(Buckets::explicit(vec![1.0, 10.0, 100.0]));
    h.observe(7.5);
    let s = h.snapshot();
    for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let q = s.quantile(p).unwrap();
        assert!(
            (q - 7.5).abs() < 1e-12,
            "p={p}: estimates are clamped to [min, max] = [7.5, 7.5], got {q}"
        );
    }
}

#[test]
fn p_zero_is_min_and_p_one_is_max() {
    let h = Histogram::new(Buckets::exponential(0.001, 2.0, 20));
    h.observe(0.013);
    h.observe(1.7);
    h.observe(42.0);
    let s = h.snapshot();
    assert_eq!(s.quantile(0.0), Some(0.013));
    assert_eq!(s.quantile(-0.5), Some(0.013));
    assert_eq!(s.quantile(1.0), Some(42.0));
    assert_eq!(s.quantile(7.0), Some(42.0));
}

#[test]
fn quantiles_are_monotone_and_bracket_the_data() {
    let h = Histogram::new(Buckets::linear(10.0, 10.0, 20));
    for i in 0..1000 {
        // Uniform over (0, 200).
        h.observe(0.2 * (i as f64) + 0.1);
    }
    let s = h.snapshot();
    let qs: Vec<f64> = [0.05, 0.25, 0.5, 0.75, 0.95]
        .iter()
        .map(|&p| s.quantile(p).unwrap())
        .collect();
    assert!(
        qs.windows(2).all(|w| w[0] <= w[1]),
        "quantiles must be monotone: {qs:?}"
    );
    let p50 = s.quantile(0.5).unwrap();
    assert!(
        (p50 - 100.0).abs() < 10.0,
        "median of uniform(0,200) ≈ 100, got {p50}"
    );
    for q in qs {
        assert!(q >= s.min && q <= s.max);
    }
}

#[test]
fn quantile_in_overflow_reports_observed_max() {
    let h = Histogram::new(Buckets::explicit(vec![1.0]));
    h.observe(0.5);
    h.observe(50.0);
    h.observe(90.0);
    let s = h.snapshot();
    // 2 of 3 samples are past the last bound; the p95 rank falls in the
    // overflow bucket where only the max is known.
    assert_eq!(s.quantile(0.95), Some(90.0));
}

#[test]
fn nan_samples_are_ignored() {
    let h = Histogram::new(Buckets::unit_interval());
    h.observe(f64::NAN);
    h.observe(0.4);
    let s = h.snapshot();
    assert_eq!(s.count, 1);
    assert_eq!(s.quantile(0.5), Some(0.4));
}

#[test]
fn mean_tracks_the_sum() {
    let h = Histogram::new(Buckets::unit_interval());
    for v in [0.1, 0.2, 0.3, 0.4] {
        h.observe(v);
    }
    let s = h.snapshot();
    assert!((s.mean().unwrap() - 0.25).abs() < 1e-12);
}
