//! Disabled-path overhead guard: with no sink installed every telemetry
//! call must reduce to a single relaxed atomic load. This file holds a
//! single test so nothing else in the process can enable telemetry while
//! the timing loop runs.

use std::time::Instant;

#[test]
fn disabled_instrumentation_is_nearly_free() {
    assert!(!telemetry::enabled(), "no sink installed in this process");

    const N: u64 = 2_000_000;
    let start = Instant::now();
    for i in 0..N {
        telemetry::inc("overhead.counter", 1);
        telemetry::observe("overhead.hist", i as f64);
        telemetry::event!("overhead.event", i = i, wasted = false);
        std::hint::black_box(i);
    }
    let per_op = start.elapsed().as_secs_f64() / (3 * N) as f64;

    // One relaxed load is well under a nanosecond; the bound is ~100×
    // headroom so it never flakes on slow CI or debug builds, while still
    // failing loudly if someone adds a lock or allocation to the off path.
    assert!(
        per_op < 250e-9,
        "disabled telemetry call costs {:.1}ns, expected well under 250ns",
        per_op * 1e9
    );

    // The off path must not even register the metrics.
    let snap = telemetry::registry_snapshot();
    assert_eq!(snap.counter("overhead.counter"), 0);
    assert!(snap.histogram("overhead.hist").is_none());
}
