//! Thread-safety of the metric primitives and the global registry: many
//! threads hammering the same counter/histogram must lose no updates.

use std::sync::Arc;
use telemetry::{Buckets, MetricsRegistry, TestSink};

#[test]
fn concurrent_increments_are_all_counted() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Arc::new(MetricsRegistry::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let registry = Arc::clone(&registry);
            s.spawn(move || {
                let c = registry.counter("stress.counter");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(
        registry.snapshot().counter("stress.counter"),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn concurrent_histogram_observations_are_all_counted() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;
    let registry = Arc::new(MetricsRegistry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            s.spawn(move || {
                let h = registry.histogram("stress.hist", Buckets::unit_interval());
                for i in 0..PER_THREAD {
                    h.observe((t * PER_THREAD + i) as f64 / (THREADS * PER_THREAD) as f64);
                }
            });
        }
    });
    let s = registry.snapshot();
    let h = s.histogram("stress.hist").unwrap();
    assert_eq!(h.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(h.counts.iter().sum::<u64>() + h.overflow, h.count);
}

#[test]
fn global_counters_work_from_many_threads() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2_500;
    telemetry::install(Arc::new(TestSink::new()));
    let before = telemetry::registry_snapshot().counter("stress.global");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    telemetry::inc("stress.global", 1);
                }
            });
        }
    });
    telemetry::shutdown();
    let after = telemetry::registry_snapshot().counter("stress.global");
    assert_eq!(after - before, THREADS * PER_THREAD);
}
