//! JSONL sink round-trip: events written through [`JsonlSink`] must come
//! back intact when the file is parsed line-by-line with `serde_json` —
//! this is the exact path `deepcat-tune report` takes.

use std::path::PathBuf;
use std::sync::Arc;
use telemetry::{Event, FieldValue, JsonlSink, Sink};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("telemetry-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn events_survive_a_write_read_parse_cycle() {
    let path = temp_path("roundtrip");
    {
        let sink = JsonlSink::create(&path).unwrap().without_timestamps();
        sink.record(&Event::new(
            "online.step",
            vec![
                ("step", FieldValue::U64(3)),
                ("reward", FieldValue::F64(-0.125)),
                ("failed", FieldValue::Bool(false)),
                ("tuner", FieldValue::Str("DeepCAT".into())),
                ("delta", FieldValue::I64(-7)),
            ],
        ));
        sink.record(&Event::new(
            "budget.update",
            vec![("spent_s", FieldValue::F64(42.5))],
        ));
        // Dropping the sink flushes the buffered writer.
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);

    let first: serde::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(
        first.get("event").and_then(|v| v.as_str()),
        Some("online.step")
    );
    assert_eq!(first.get("step").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(first.get("reward").and_then(|v| v.as_f64()), Some(-0.125));
    assert_eq!(first.get("failed").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(first.get("tuner").and_then(|v| v.as_str()), Some("DeepCAT"));
    assert_eq!(first.get("delta").and_then(|v| v.as_f64()), Some(-7.0));
    assert!(
        first.get("ts_ms").is_none(),
        "without_timestamps() must omit ts_ms"
    );

    let second: serde::Value = serde_json::from_str(lines[1]).unwrap();
    assert_eq!(
        second.get("event").and_then(|v| v.as_str()),
        Some("budget.update")
    );
    assert_eq!(second.get("spent_s").and_then(|v| v.as_f64()), Some(42.5));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn global_pipeline_writes_parseable_lines_with_timestamps() {
    let path = temp_path("global");
    telemetry::install(Arc::new(JsonlSink::create(&path).unwrap()));
    telemetry::event!("test.ping", n = 1_u64, label = "hello");
    telemetry::shutdown(); // uninstalls and flushes

    let text = std::fs::read_to_string(&path).unwrap();
    let line = text.lines().next().expect("one event line");
    let v: serde::Value = serde_json::from_str(line).unwrap();
    assert_eq!(v.get("event").and_then(|x| x.as_str()), Some("test.ping"));
    assert_eq!(v.get("n").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(v.get("label").and_then(|x| x.as_str()), Some("hello"));
    assert!(
        v.get("ts_ms").and_then(|x| x.as_u64()).is_some(),
        "default sink stamps ts_ms"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn string_fields_with_quotes_and_newlines_are_escaped() {
    let path = temp_path("escape");
    {
        let sink = JsonlSink::create(&path).unwrap().without_timestamps();
        sink.record(&Event::new(
            "test.escape",
            vec![("msg", FieldValue::Str("a \"quoted\"\nline\\end".into()))],
        ));
    }
    let text = std::fs::read_to_string(&path).unwrap();
    // Still exactly one physical line — embedded newline must be escaped.
    assert_eq!(text.lines().count(), 1);
    let v: serde::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
    assert_eq!(
        v.get("msg").and_then(|x| x.as_str()),
        Some("a \"quoted\"\nline\\end")
    );

    let _ = std::fs::remove_file(&path);
}
