//! Concurrent emit-path invariants for the sharded pipeline: no events
//! lost below the shard bound, overflow exactly accounted above it, and
//! the synchronous (deterministic) mode byte-identical across two runs.
//! One test fn: the pipeline mode, sink and id counters are process
//! globals, so phases must run sequentially.

use std::path::PathBuf;
use std::sync::Arc;
use telemetry::{Event, FieldValue, JsonlSink, SessionCtx, Sink, TestSink};

const THREADS: usize = 8;
const PER_THREAD: usize = 500;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sharded-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn sharded_pipeline_accounts_every_event() {
    // ---- (a) N threads below the shard bound: nothing lost ----------
    let sink = Arc::new(TestSink::new());
    telemetry::install_sharded(sink.clone(), 4096);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let ctx = SessionCtx::new(t as u64 + 1, format!("s{t}"));
                let _scope = telemetry::session_scope(&ctx);
                for i in 0..PER_THREAD {
                    telemetry::event!("stress.emit", i = i, thread = t);
                }
            });
        }
    });
    let delivered = telemetry::drain();
    assert_eq!(delivered, (THREADS * PER_THREAD) as u64, "no event lost");
    let events = sink.take_events();
    let stress: Vec<&Event> = events.iter().filter(|e| e.name == "stress.emit").collect();
    assert_eq!(stress.len(), THREADS * PER_THREAD);
    for t in 0..THREADS as u64 {
        let of_session: Vec<u64> = stress
            .iter()
            .filter(|e| e.u64("session_id") == Some(t + 1))
            .map(|e| e.u64("i").expect("i field"))
            .collect();
        // Exactly one thread's events per session id, FIFO within the shard.
        assert_eq!(of_session.len(), PER_THREAD, "session {}", t + 1);
        assert!(
            of_session.windows(2).all(|w| w[0] < w[1]),
            "session {} events out of order",
            t + 1
        );
    }
    // The live aggregator saw every drained event.
    let report = telemetry::session_report();
    assert_eq!(report.sessions.len(), THREADS);
    assert!(report
        .sessions
        .iter()
        .all(|s| s.events == PER_THREAD as u64));
    assert_eq!(
        telemetry::registry_snapshot().counter("telemetry.dropped"),
        0,
        "below the bound nothing may drop"
    );
    telemetry::shutdown();
    // Shutdown recorded the flush summary with exact accounting.
    let tail = sink.take_events();
    let flush = tail
        .iter()
        .find(|e| e.name == "telemetry.flush")
        .expect("shutdown records telemetry.flush");
    assert_eq!(flush.u64("events"), Some((THREADS * PER_THREAD) as u64));
    assert_eq!(flush.u64("dropped"), Some(0));
    assert_eq!(flush.u64("sessions"), Some(THREADS as u64));

    // ---- (b) overflow above the bound is exactly accounted ----------
    const CAPACITY: usize = 64;
    const SENT: usize = 200;
    let sink = Arc::new(TestSink::new());
    telemetry::install_sharded(sink.clone(), CAPACITY);
    for i in 0..SENT {
        telemetry::event!("stress.overflow", i = i);
    }
    assert_eq!(telemetry::drain(), CAPACITY as u64);
    telemetry::shutdown();
    let events = sink.take_events();
    let kept: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "stress.overflow")
        .map(|e| e.u64("i").expect("i field"))
        .collect();
    // The first CAPACITY events survive (drop-newest semantics), in order.
    assert_eq!(kept, (0..CAPACITY as u64).collect::<Vec<u64>>());
    let over = events
        .iter()
        .find(|e| e.name == "telemetry.shard_overflow")
        .expect("overflow event surfaced");
    assert_eq!(over.u64("dropped"), Some((SENT - CAPACITY) as u64));
    assert_eq!(
        telemetry::registry_snapshot().counter("telemetry.dropped"),
        (SENT - CAPACITY) as u64
    );
    let flush = events
        .iter()
        .find(|e| e.name == "telemetry.flush")
        .expect("flush summary");
    assert_eq!(flush.u64("events"), Some(SENT as u64));
    assert_eq!(flush.u64("dropped"), Some((SENT - CAPACITY) as u64));

    // ---- (c) deterministic (sync) mode: two runs byte-identical -----
    telemetry::freeze_clock();
    let run = |tag: &str| -> String {
        let path = temp_path(tag);
        telemetry::reset_session_ids();
        telemetry::trace::reset_ids();
        let sink = JsonlSink::create(&path)
            .expect("temp jsonl")
            .without_timestamps();
        telemetry::install(Arc::new(sink));
        let ctx = SessionCtx::next("det");
        telemetry::with_session(&ctx, || {
            for i in 0..50_u64 {
                let _span = telemetry::span!("det.step", step = i);
                telemetry::event!("det.event", i = i);
            }
        });
        telemetry::shutdown();
        let text = std::fs::read_to_string(&path).expect("log readable");
        let _ = std::fs::remove_file(&path);
        text
    };
    let a = run("a");
    let b = run("b");
    telemetry::unfreeze_clock();
    assert_eq!(a, b, "deterministic mode must be byte-identical");
    assert!(a.contains("\"session_id\":1"), "{a}");
    assert!(a.contains("\"event\":\"telemetry.flush\""), "{a}");

    // ---- (d) sink I/O errors are counted, not swallowed -------------
    if std::path::Path::new("/dev/full").exists() {
        let before = telemetry::registry_snapshot().counter("telemetry.sink_error");
        let sink = JsonlSink::create("/dev/full").expect("open /dev/full");
        sink.record(&Event::new(
            "stress.sinkerr",
            vec![("i", FieldValue::U64(0))],
        ));
        sink.flush();
        let after = telemetry::registry_snapshot().counter("telemetry.sink_error");
        assert!(after > before, "ENOSPC must increment telemetry.sink_error");
    }
}

#[test]
fn bounded_test_sink_counts_drops() {
    let sink = TestSink::bounded(10);
    for i in 0..15_u64 {
        sink.record(&Event::new("bound.check", vec![("i", FieldValue::U64(i))]));
    }
    assert_eq!(sink.len(), 10);
    assert_eq!(sink.dropped(), 5);
    let taken = sink.take_events();
    assert_eq!(taken.len(), 10);
    assert!(sink.is_empty());
}
