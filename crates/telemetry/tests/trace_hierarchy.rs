//! Span hierarchy invariants: parent/child id assignment across nested
//! and interleaved guards, drop-order edge cases, and the disabled fast
//! path. One test fn — the global sink/enable flag is process state, so
//! scenarios run sequentially in a fixed order (disabled first).

use std::sync::Arc;
use telemetry::trace::{reset_ids, stack_depth};
use telemetry::{SpanRecord, TestSink};

fn record_of(sink: &TestSink, span_id: u64) -> SpanRecord {
    sink.events()
        .iter()
        .filter_map(SpanRecord::from_event)
        .find(|r| r.span_id == span_id)
        .unwrap_or_else(|| panic!("no record for span {span_id}"))
}

#[test]
fn span_hierarchy_invariants() {
    // ---- disabled path: guards are inert and never touch the stack ----
    assert!(!telemetry::enabled());
    {
        let outer = telemetry::span!("test.outer");
        let inner = telemetry::span!("test.inner");
        assert_eq!(outer.span_id(), 0);
        assert_eq!(inner.span_id(), 0);
        assert_eq!(inner.parent_span_id(), 0);
        assert_eq!(inner.trace_id(), 0);
        assert_eq!(stack_depth(), 0, "inert guards must not push");
    }
    assert_eq!(stack_depth(), 0);

    // ---- enabled: nested guards chain parent links ----
    let sink = Arc::new(TestSink::new());
    telemetry::install(sink.clone());
    reset_ids();
    {
        let root = telemetry::span!("test.root");
        let child = telemetry::span!("test.child");
        let grand = telemetry::span!("test.grand");
        assert_eq!(root.span_id(), 1);
        assert_eq!(root.parent_span_id(), 0);
        assert_eq!(root.trace_id(), 1);
        assert_eq!(child.span_id(), 2);
        assert_eq!(child.parent_span_id(), root.span_id());
        assert_eq!(child.trace_id(), 1);
        assert_eq!(grand.span_id(), 3);
        assert_eq!(grand.parent_span_id(), child.span_id());
        assert_eq!(grand.trace_id(), 1);
        assert_eq!(stack_depth(), 3);
    }
    assert_eq!(stack_depth(), 0);
    // The emitted events carry the same identity fields.
    assert_eq!(record_of(&sink, 2).parent_id, 1);
    assert_eq!(record_of(&sink, 3).parent_id, 2);
    assert_eq!(record_of(&sink, 3).trace_id, 1);

    // ---- sibling spans share a parent; a second root starts a trace ----
    sink.clear();
    reset_ids();
    {
        let root = telemetry::span!("test.root");
        for _ in 0..2 {
            let sib = telemetry::span!("test.sib");
            assert_eq!(sib.parent_span_id(), root.span_id());
        }
    }
    {
        let root2 = telemetry::span!("test.root");
        assert_eq!(root2.parent_span_id(), 0);
        assert_eq!(root2.trace_id(), root2.span_id());
    }

    // ---- drop-order edge: child guard outlives its parent ----
    sink.clear();
    reset_ids();
    let parent = telemetry::span!("test.parent");
    let child = telemetry::span!("test.child");
    let child_id = child.span_id();
    std::mem::drop(parent); // out-of-order: parent first
    assert_eq!(stack_depth(), 1, "child must survive on the stack");
    // A new span while only the orphaned child is open parents to it —
    // links were fixed at enter time, the reordering must not corrupt
    // the stack.
    {
        let late = telemetry::span!("test.late");
        assert_eq!(late.parent_span_id(), child_id);
    }
    std::mem::drop(child);
    assert_eq!(stack_depth(), 0);
    // Records: child still reports the parent it was started under.
    assert_eq!(record_of(&sink, child_id).parent_id, 1);

    // ---- interleaved guards across scopes ----
    sink.clear();
    reset_ids();
    let a = telemetry::span!("test.a");
    let b = telemetry::span!("test.b");
    let c = telemetry::span!("test.c");
    std::mem::drop(b); // middle of the stack
    {
        let d = telemetry::span!("test.d");
        // Parent is the innermost *live* span.
        assert_eq!(d.parent_span_id(), c.span_id());
    }
    std::mem::drop(c);
    std::mem::drop(a);
    assert_eq!(stack_depth(), 0);

    telemetry::shutdown();
    // Shutdown mid-span: the guard unwinds the stack without emitting.
    let leftover = telemetry::span!("test.leftover");
    assert_eq!(leftover.span_id(), 0);
    drop(leftover);
    assert_eq!(stack_depth(), 0);
}
