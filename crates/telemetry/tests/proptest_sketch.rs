//! Property-based tests of the mergeable quantile sketch — the math the
//! fleet observability plane leans on. Three invariants matter:
//!
//! 1. **Merge is a lattice join on the bucket structure.** Bucket
//!    counts, extrema and totals merge exactly associatively and
//!    commutatively; only the tracked f64 `sum` is allowed to differ by
//!    addition-order rounding, so the tests compare it with a relative
//!    tolerance and compare everything else exactly.
//! 2. **Merging shards equals sequential insertion.** Splitting a
//!    stream across sketches and merging must land on the same buckets
//!    as feeding one sketch — this is what makes per-shard/per-session
//!    folding honest.
//! 3. **Relative error stays within α.** For any finite stream, the
//!    reported quantile is within `α·|x|` of the exact rank statistic
//!    `x` (rank `⌈p·n⌉` over the sorted stream).

use proptest::prelude::*;
use telemetry::{Sketch, SketchSnapshot};

const ALPHA: f64 = 0.01;

/// Decode the generated `(selector, unit)` pairs into a value stream
/// mixing magnitudes (±1e6, ±1, ±1e-4) with exact zeros, so bucket keys
/// far apart, adjacent, and the zero store all get exercised.
fn decode(pairs: &[(u8, f64)]) -> Vec<f64> {
    pairs
        .iter()
        .map(|(sel, x)| match sel % 4 {
            0 => x * 1e6,
            1 => *x,
            2 => x * 1e-4,
            _ => 0.0,
        })
        .collect()
}

fn sketch_of(values: &[f64]) -> Sketch {
    let mut s = Sketch::new(ALPHA);
    for &v in values {
        s.insert(v);
    }
    s
}

/// Snapshot with the addition-order-sensitive `sum` zeroed out, leaving
/// only the exactly-mergeable state (buckets, counts, extrema).
fn buckets_only(s: &Sketch) -> SketchSnapshot {
    let mut snap = s.snapshot();
    snap.sum = 0.0;
    snap
}

fn assert_sums_close(a: f64, b: f64) {
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
        "sums diverged beyond rounding: {a} vs {b}"
    );
}

proptest! {
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 0..100),
        ys in proptest::collection::vec((0u8..4, -1.0f64..1.0), 0..100),
    ) {
        let (xs, ys) = (decode(&xs), decode(&ys));
        let mut ab = sketch_of(&xs);
        ab.merge(&sketch_of(&ys));
        let mut ba = sketch_of(&ys);
        ba.merge(&sketch_of(&xs));
        prop_assert_eq!(buckets_only(&ab), buckets_only(&ba));
        assert_sums_close(ab.snapshot().sum, ba.snapshot().sum);
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 0..80),
        ys in proptest::collection::vec((0u8..4, -1.0f64..1.0), 0..80),
        zs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 0..80),
    ) {
        let (xs, ys, zs) = (decode(&xs), decode(&ys), decode(&zs));
        // (x ∪ y) ∪ z
        let mut left = sketch_of(&xs);
        left.merge(&sketch_of(&ys));
        left.merge(&sketch_of(&zs));
        // x ∪ (y ∪ z)
        let mut yz = sketch_of(&ys);
        yz.merge(&sketch_of(&zs));
        let mut right = sketch_of(&xs);
        right.merge(&yz);
        prop_assert_eq!(buckets_only(&left), buckets_only(&right));
        assert_sums_close(left.snapshot().sum, right.snapshot().sum);
    }

    #[test]
    fn merged_shards_equal_sequential_insertion(
        xs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 1..150),
        shards in 1usize..8,
    ) {
        let xs = decode(&xs);
        // Round-robin the stream over `shards` sketches, as per-thread
        // shards and per-session folds do, then merge in shard order.
        let mut parts: Vec<Sketch> = (0..shards).map(|_| Sketch::new(ALPHA)).collect();
        for (i, &v) in xs.iter().enumerate() {
            if let Some(part) = parts.get_mut(i % shards) {
                part.insert(v);
            }
        }
        let mut merged = Sketch::new(ALPHA);
        for part in &parts {
            merged.merge(part);
        }
        let sequential = sketch_of(&xs);
        prop_assert_eq!(buckets_only(&merged), buckets_only(&sequential));
        assert_sums_close(merged.snapshot().sum, sequential.snapshot().sum);
        // And the quantiles read back identically, not just the buckets.
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(p), sequential.quantile(p));
        }
    }

    #[test]
    fn quantiles_stay_within_alpha_of_exact_rank(
        xs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 1..200),
        p in 0.0f64..=1.0,
    ) {
        let xs = decode(&xs);
        let sketch = sketch_of(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted.get(rank - 1).copied().unwrap_or(0.0);
        let est = sketch.quantile(p).expect("non-empty sketch has quantiles");
        prop_assert!(
            (est - exact).abs() <= ALPHA * exact.abs() + 1e-12,
            "q({p}) = {est} strayed from exact rank statistic {exact}"
        );
    }

    #[test]
    fn collapse_keeps_stores_bounded_and_quantiles_ordered(
        xs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 1..200),
    ) {
        let xs = decode(&xs);
        let mut sketch = Sketch::with_max_buckets(ALPHA, 8);
        for &v in &xs {
            sketch.insert(v);
        }
        let snap = sketch.snapshot();
        prop_assert!(snap.pos.len() <= 8, "pos store grew to {}", snap.pos.len());
        prop_assert!(snap.neg.len() <= 8, "neg store grew to {}", snap.neg.len());
        prop_assert_eq!(snap.count, xs.len() as u64);
        // Even under collapse, quantiles stay monotone and clamped to
        // the exact extrema.
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .filter_map(|&p| sketch.quantile(p))
            .collect();
        prop_assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles not monotone: {qs:?}");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qs.iter().all(|&q| q >= min && q <= max));
    }

    #[test]
    fn snapshot_roundtrip_preserves_quantiles(
        xs in proptest::collection::vec((0u8..4, -1.0f64..1.0), 1..120),
    ) {
        let xs = decode(&xs);
        let sketch = sketch_of(&xs);
        let revived = sketch.snapshot().to_sketch();
        for p in [0.0, 0.1, 0.5, 0.95, 1.0] {
            prop_assert_eq!(sketch.quantile(p), revived.quantile(p));
        }
    }
}
