//! Declarative SLO / alert rules evaluated over live metric snapshots.
//!
//! Rules are written in a small TOML subset (`alerts.toml`):
//!
//! ```toml
//! [[rule]]
//! name = "telemetry-loss"
//! metric = "counter:telemetry.dropped"
//! op = "gt"
//! threshold = 0
//! for_ticks = 1
//! severity = "page"
//! ```
//!
//! A [`MetricSelector`] reads one number out of a [`MetricsSnapshot`]
//! (counter, gauge, sketch quantile, session maximum, or the
//! unattributed-event count); the rule breaches when `value <op>
//! threshold` holds. After `for_ticks` consecutive breaching
//! evaluations the engine raises the alert (one `alert.raised` event);
//! the first non-breaching evaluation of an active alert resolves it
//! (`alert.resolved`). Both `deepcat-tune top` and `report` fold these
//! events, so the same rule file drives the live dashboard and the
//! post-hoc summary.
//!
//! The three online tuning loops call [`alerts_tick`] once per step.
//! The tick is a single relaxed atomic load while no engine is
//! installed; with one installed it snapshots the metrics *before*
//! taking the engine lock and emits transitions *after* releasing it,
//! so no lock is ever held across sink re-entry.

use crate::session::MetricsSnapshot;
use crate::sink::FieldValue;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// How urgent a raised alert is (ordering: info < warn < page).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Page,
}

impl Severity {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "info" => Ok(Self::Info),
            "warn" => Ok(Self::Warn),
            "page" => Ok(Self::Page),
            other => Err(format!("unknown severity '{other}' (info|warn|page)")),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Info => write!(f, "info"),
            Self::Warn => write!(f, "warn"),
            Self::Page => write!(f, "page"),
        }
    }
}

/// Which number a rule watches.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricSelector {
    /// `counter:NAME` — a registry counter (0 while unregistered).
    Counter(String),
    /// `gauge:NAME` — a registry gauge (no value while unregistered).
    Gauge(String),
    /// `quantile:NAME:P` — the `P`-quantile of a registry sketch.
    Quantile(String, f64),
    /// `unattributed` — events seen without a `session_id`.
    Unattributed,
    /// `session_max:FIELD` — the maximum of a per-session statistic
    /// (`consecutive_rollbacks`, `failed_steps`, `latency_p95_s`,
    /// `restarts`).
    SessionMax(SessionField),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionField {
    ConsecutiveRollbacks,
    FailedSteps,
    LatencyP95S,
    Restarts,
}

impl MetricSelector {
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "unattributed" {
            return Ok(Self::Unattributed);
        }
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad metric selector '{spec}'"))?;
        match kind {
            "counter" => Ok(Self::Counter(rest.to_string())),
            "gauge" => Ok(Self::Gauge(rest.to_string())),
            "quantile" => {
                let (name, p) = rest
                    .rsplit_once(':')
                    .ok_or_else(|| format!("quantile selector needs NAME:P, got '{rest}'"))?;
                let p: f64 = p
                    .parse()
                    .map_err(|e| format!("bad quantile '{p}' in '{spec}': {e}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("quantile {p} out of [0, 1] in '{spec}'"));
                }
                Ok(Self::Quantile(name.to_string(), p))
            }
            "session_max" => match rest {
                "consecutive_rollbacks" => Ok(Self::SessionMax(SessionField::ConsecutiveRollbacks)),
                "failed_steps" => Ok(Self::SessionMax(SessionField::FailedSteps)),
                "latency_p95_s" => Ok(Self::SessionMax(SessionField::LatencyP95S)),
                "restarts" => Ok(Self::SessionMax(SessionField::Restarts)),
                other => Err(format!("unknown session_max field '{other}'")),
            },
            other => Err(format!("unknown selector kind '{other}' in '{spec}'")),
        }
    }

    /// Read the selected value out of a snapshot. `None` means "no data
    /// yet", which never breaches (and resolves an active alert).
    pub fn eval(&self, snap: &MetricsSnapshot) -> Option<f64> {
        match self {
            Self::Counter(name) => Some(snap.registry.counter(name) as f64),
            Self::Gauge(name) => snap.registry.gauge(name),
            Self::Quantile(name, p) => snap.registry.sketch(name)?.quantile(*p),
            Self::Unattributed => Some(snap.sessions.unattributed_events as f64),
            Self::SessionMax(field) => snap
                .sessions
                .sessions
                .iter()
                .filter_map(|s| match field {
                    SessionField::ConsecutiveRollbacks => Some(s.consecutive_rollbacks as f64),
                    SessionField::FailedSteps => Some(s.failed_steps as f64),
                    SessionField::LatencyP95S => s.latency_quantile_s(0.95),
                    SessionField::Restarts => Some(s.restarts as f64),
                })
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                }),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl CmpOp {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gt" | ">" => Ok(Self::Gt),
            "ge" | ">=" => Ok(Self::Ge),
            "lt" | "<" => Ok(Self::Lt),
            "le" | "<=" => Ok(Self::Le),
            other => Err(format!("unknown op '{other}' (gt|ge|lt|le)")),
        }
    }

    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Self::Gt => value > threshold,
            Self::Ge => value >= threshold,
            Self::Lt => value < threshold,
            Self::Le => value <= threshold,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Gt => write!(f, ">"),
            Self::Ge => write!(f, ">="),
            Self::Lt => write!(f, "<"),
            Self::Le => write!(f, "<="),
        }
    }
}

/// One declarative SLO rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    pub name: String,
    pub metric: MetricSelector,
    pub op: CmpOp,
    pub threshold: f64,
    /// Consecutive breaching ticks before the alert raises (≥ 1).
    pub for_ticks: u64,
    pub severity: Severity,
}

/// One raise/resolve edge produced by [`AlertEngine::evaluate`].
#[derive(Clone, Debug, PartialEq)]
pub struct AlertTransition {
    pub rule: String,
    pub severity: Severity,
    /// `true` for `alert.raised`, `false` for `alert.resolved`.
    pub raised: bool,
    /// The observed value at the transition tick.
    pub value: f64,
    pub threshold: f64,
}

#[derive(Clone, Debug, Default)]
struct RuleState {
    breach_ticks: u64,
    active: bool,
}

/// Evaluates a fixed rule set against successive snapshots, tracking
/// per-rule breach streaks and active state.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    state: Vec<RuleState>,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let state = vec![RuleState::default(); rules.len()];
        Self { rules, state }
    }

    /// Parse an `alerts.toml` rule file (see module docs for the
    /// accepted subset).
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        Ok(Self::new(parse_rules(text)?))
    }

    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Names of the currently active (raised, unresolved) alerts.
    pub fn active(&self) -> Vec<String> {
        self.rules
            .iter()
            .zip(&self.state)
            .filter(|(_, s)| s.active)
            .map(|(r, _)| r.name.clone())
            .collect()
    }

    /// Evaluate every rule against `snap`; returns the raise/resolve
    /// edges this tick (steady states produce nothing).
    pub fn evaluate(&mut self, snap: &MetricsSnapshot) -> Vec<AlertTransition> {
        let mut transitions = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.state.iter_mut()) {
            let value = rule.metric.eval(snap);
            let breaching = value.is_some_and(|v| rule.op.holds(v, rule.threshold));
            if breaching {
                state.breach_ticks += 1;
                if !state.active && state.breach_ticks >= rule.for_ticks {
                    state.active = true;
                    transitions.push(AlertTransition {
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        raised: true,
                        value: value.unwrap_or(f64::NAN),
                        threshold: rule.threshold,
                    });
                }
            } else {
                state.breach_ticks = 0;
                if state.active {
                    state.active = false;
                    transitions.push(AlertTransition {
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        raised: false,
                        value: value.unwrap_or(f64::NAN),
                        threshold: rule.threshold,
                    });
                }
            }
        }
        transitions
    }
}

/// Parse the `[[rule]]` TOML subset: table-array headers, `key = value`
/// lines with quoted strings or bare numbers, `#` comments.
fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    struct Partial {
        name: Option<String>,
        metric: Option<MetricSelector>,
        op: Option<CmpOp>,
        threshold: Option<f64>,
        for_ticks: u64,
        severity: Severity,
    }
    impl Partial {
        fn new() -> Self {
            Self {
                name: None,
                metric: None,
                op: None,
                threshold: None,
                for_ticks: 1,
                severity: Severity::Warn,
            }
        }
        fn finish(self, lineno: usize) -> Result<AlertRule, String> {
            let name = self
                .name
                .ok_or(format!("rule before line {lineno}: missing 'name'"))?;
            Ok(AlertRule {
                metric: self
                    .metric
                    .ok_or(format!("rule '{name}': missing 'metric'"))?,
                op: self.op.ok_or(format!("rule '{name}': missing 'op'"))?,
                threshold: self
                    .threshold
                    .ok_or(format!("rule '{name}': missing 'threshold'"))?,
                for_ticks: self.for_ticks.max(1),
                severity: self.severity,
                name,
            })
        }
    }

    let mut rules = Vec::new();
    let mut current: Option<Partial> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[rule]]" {
            if let Some(partial) = current.take() {
                rules.push(partial.finish(lineno)?);
            }
            current = Some(Partial::new());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("alerts.toml:{lineno}: expected 'key = value'"));
        };
        let Some(partial) = current.as_mut() else {
            return Err(format!(
                "alerts.toml:{lineno}: key outside a [[rule]] table"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let unquote = |v: &str| -> Result<String, String> {
            let stripped = v
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or(format!(
                    "alerts.toml:{lineno}: '{key}' wants a quoted string"
                ))?;
            Ok(stripped.to_string())
        };
        match key {
            "name" => partial.name = Some(unquote(value)?),
            "metric" => partial.metric = Some(MetricSelector::parse(&unquote(value)?)?),
            "op" => partial.op = Some(CmpOp::parse(&unquote(value)?)?),
            "threshold" => {
                partial.threshold = Some(
                    value
                        .parse()
                        .map_err(|e| format!("alerts.toml:{lineno}: threshold: {e}"))?,
                )
            }
            "for_ticks" => {
                partial.for_ticks = value
                    .parse()
                    .map_err(|e| format!("alerts.toml:{lineno}: for_ticks: {e}"))?
            }
            "severity" => partial.severity = Severity::parse(&unquote(value)?)?,
            other => return Err(format!("alerts.toml:{lineno}: unknown key '{other}'")),
        }
    }
    if let Some(partial) = current.take() {
        rules.push(partial.finish(text.lines().count())?);
    }
    Ok(rules)
}

// ---- global engine ----------------------------------------------------

/// Fast-path flag: [`alerts_tick`] is one relaxed load while false.
static ALERTS_ON: AtomicBool = AtomicBool::new(false);

fn global_engine() -> &'static Mutex<Option<AlertEngine>> {
    static ENGINE: OnceLock<Mutex<Option<AlertEngine>>> = OnceLock::new();
    ENGINE.get_or_init(|| Mutex::new(None))
}

/// Install an alert engine; subsequent [`alerts_tick`] calls evaluate
/// it. Replaces any previous engine (state resets).
pub fn install_alerts(engine: AlertEngine) {
    *global_engine().lock() = Some(engine);
    ALERTS_ON.store(true, Ordering::Release);
}

/// Remove the installed engine; ticks go back to a single atomic load.
pub fn clear_alerts() {
    ALERTS_ON.store(false, Ordering::Release);
    *global_engine().lock() = None;
}

/// Names of the currently active alerts (empty without an engine).
pub fn active_alerts() -> Vec<String> {
    if !ALERTS_ON.load(Ordering::Acquire) {
        return Vec::new();
    }
    global_engine()
        .lock()
        .as_ref()
        .map_or_else(Vec::new, |e| e.active())
}

/// Evaluate the installed rules against the current metrics and emit
/// `alert.raised` / `alert.resolved` events for any edges. Called by
/// the online loops at step boundaries; near-free while no engine is
/// installed or telemetry is off.
pub fn alerts_tick() {
    if !ALERTS_ON.load(Ordering::Relaxed) || !crate::enabled() {
        return;
    }
    // Snapshot before taking the engine lock: metrics_snapshot() drains
    // the sharded pipeline and locks the registry/aggregator, none of
    // which may nest under the engine lock.
    let snap = crate::metrics_snapshot();
    let transitions = {
        let mut guard = global_engine().lock();
        match guard.as_mut() {
            // LOCK-ORDER: evaluate() is pure rule arithmetic over the
            // GUARD-EMIT: pre-taken snapshot — no locks, no emission.
            Some(engine) => engine.evaluate(&snap),
            None => return,
        }
    };
    // Engine lock released: emitting may re-enter sinks freely.
    for t in transitions {
        let name = if t.raised {
            "alert.raised"
        } else {
            "alert.resolved"
        };
        crate::emit(
            name,
            vec![
                ("rule", FieldValue::Str(t.rule)),
                ("severity", FieldValue::Str(t.severity.to_string())),
                ("value", FieldValue::F64(t.value)),
                ("threshold", FieldValue::F64(t.threshold)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionAggregator;
    use crate::MetricsRegistry;

    fn snap_with(counter: &'static str, n: u64) -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        if n > 0 {
            registry.counter(counter).add(n);
        }
        MetricsSnapshot {
            registry: registry.snapshot(),
            sessions: SessionAggregator::new().report(),
        }
    }

    const RULES: &str = r#"
# loss of telemetry is always page-worthy
[[rule]]
name = "telemetry-loss"
metric = "counter:telemetry.dropped"
op = "gt"
threshold = 0
for_ticks = 2
severity = "page"

[[rule]]
name = "latency-p95"
metric = "quantile:online.step_latency_s:0.95"
op = "gt"
threshold = 0.5
severity = "warn"
"#;

    #[test]
    fn parses_rules_with_defaults() {
        let engine = AlertEngine::from_toml_str(RULES).unwrap();
        assert_eq!(engine.rules().len(), 2);
        assert_eq!(engine.rules()[0].for_ticks, 2);
        assert_eq!(engine.rules()[0].severity, Severity::Page);
        assert_eq!(engine.rules()[1].for_ticks, 1, "for_ticks defaults to 1");
        assert_eq!(engine.rules()[1].severity, Severity::Warn);
        assert_eq!(
            engine.rules()[1].metric,
            MetricSelector::Quantile("online.step_latency_s".to_string(), 0.95)
        );
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(AlertEngine::from_toml_str("name = \"orphan\"").is_err());
        assert!(AlertEngine::from_toml_str("[[rule]]\nname = \"x\"").is_err());
        assert!(AlertEngine::from_toml_str(
            "[[rule]]\nname = \"x\"\nmetric = \"bogus:y\"\nop = \"gt\"\nthreshold = 1"
        )
        .is_err());
    }

    #[test]
    fn for_ticks_gates_raise_and_resolve_is_immediate() {
        let mut engine = AlertEngine::from_toml_str(RULES).unwrap();
        let quiet = snap_with("telemetry.dropped", 0);
        let noisy = snap_with("telemetry.dropped", 5);
        assert!(engine.evaluate(&quiet).is_empty());
        // First breaching tick: streak 1 < for_ticks 2 — no raise yet.
        assert!(engine.evaluate(&noisy).is_empty());
        let raised = engine.evaluate(&noisy);
        assert_eq!(raised.len(), 1);
        assert!(raised[0].raised);
        assert_eq!(raised[0].rule, "telemetry-loss");
        assert_eq!(engine.active(), vec!["telemetry-loss".to_string()]);
        // Steady breach: no new edges.
        assert!(engine.evaluate(&noisy).is_empty());
        let resolved = engine.evaluate(&quiet);
        assert_eq!(resolved.len(), 1);
        assert!(!resolved[0].raised);
        assert!(engine.active().is_empty());
    }

    #[test]
    fn quantile_selector_reads_sketches() {
        let registry = MetricsRegistry::new();
        for i in 0..100 {
            registry
                .sketch("online.step_latency_s")
                .insert(0.6 + i as f64 * 1e-3);
        }
        let snap = MetricsSnapshot {
            registry: registry.snapshot(),
            sessions: SessionAggregator::new().report(),
        };
        let mut engine = AlertEngine::from_toml_str(RULES).unwrap();
        let edges = engine.evaluate(&snap);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].rule, "latency-p95");
        assert!(edges[0].value > 0.5);
    }

    #[test]
    fn session_max_selector() {
        let sel = MetricSelector::parse("session_max:consecutive_rollbacks").unwrap();
        let snap = snap_with("x.y", 0);
        assert_eq!(sel.eval(&snap), None, "no sessions -> no data");
        assert_eq!(
            MetricSelector::parse("session_max:restarts").unwrap(),
            MetricSelector::SessionMax(SessionField::Restarts)
        );
        assert_eq!(
            MetricSelector::parse("session_max:restarts")
                .unwrap()
                .eval(&snap),
            None
        );
    }
}
