//! The workspace's single sanctioned wall-clock access point.
//!
//! Core crates (`rl`, `spark-sim`, `surrogate`, `tensor-nn`, `deepcat`)
//! are forbidden by `deepcat-lint` from calling `Instant::now()` or
//! `SystemTime::now()` directly: wall-clock readings leak into step
//! records, reports and event logs, making same-seed runs diverge. They
//! time code through a [`Stopwatch`] instead, which honors the global
//! *frozen clock* mode: while frozen every stopwatch reads `0.0`, so a
//! seeded run produces a byte-identical event stream every time
//! (`deepcat-repro --deterministic` and the CI determinism smoke check
//! rely on this).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static FROZEN: AtomicBool = AtomicBool::new(false);

/// Lazily-pinned process epoch: the first call wins, and every later
/// [`now_s`] reading is relative to it. Used as the time base for trace
/// exports (Chrome Trace Event Format wants a shared monotonic origin).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since the process trace epoch; `0.0` while the clock is
/// frozen, so `--deterministic` trace exports carry stable timestamps.
pub fn now_s() -> f64 {
    if clock_frozen() {
        0.0
    } else {
        epoch().elapsed().as_secs_f64()
    }
}

/// Freeze the telemetry clock: every subsequently started [`Stopwatch`]
/// (including span timers) reports an elapsed time of `0.0` seconds.
pub fn freeze_clock() {
    FROZEN.store(true, Ordering::Release);
}

/// Restore real wall-clock timing (tests only).
pub fn unfreeze_clock() {
    FROZEN.store(false, Ordering::Release);
}

/// Whether the clock is currently frozen.
pub fn clock_frozen() -> bool {
    FROZEN.load(Ordering::Acquire)
}

/// A monotonic timer that respects [`freeze_clock`]. The only way core
/// crates are allowed to measure elapsed wall time.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    /// `None` while the clock is frozen — the stopwatch is inert.
    start: Option<Instant>,
}

impl Stopwatch {
    /// Start timing now (inert when the clock is frozen).
    pub fn start() -> Self {
        Self {
            start: (!clock_frozen()).then(Instant::now),
        }
    }

    /// Seconds since [`Stopwatch::start`]; `0.0` when frozen.
    pub fn elapsed_s(&self) -> f64 {
        self.start.map_or(0.0, |t| t.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_stopwatch_reads_zero() {
        freeze_clock();
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(sw.elapsed_s(), 0.0);
        unfreeze_clock();
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_s() > 0.0);
    }
}
